#!/usr/bin/env bash
# The full CI gate: formatting, lints, build, every test, and the paper's
# correctness experiment. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests"
cargo build --release
cargo test -q --workspace

echo "== exp verify (invariants + cross-engine agreement, eco-sim & friends)"
cargo run --release -q -p spine-bench --bin exp -- verify

echo "CI green."
