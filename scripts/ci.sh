#!/usr/bin/env bash
# The full CI gate: formatting, lints, build, every test, and the paper's
# correctness experiment. Run from anywhere inside the repository.
#
#   --bench-check   additionally re-run the serving benchmark and fail on a
#                   >20 % regression against the committed BENCH_serve.json
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_CHECK=0
for arg in "$@"; do
  case "$arg" in
    --bench-check) BENCH_CHECK=1 ;;
    *) echo "unknown argument: $arg (supported: --bench-check)"; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests"
cargo build --release
cargo test -q --workspace

echo "== exp verify (invariants + cross-engine agreement, eco-sim & friends)"
cargo run --release -q -p spine-bench --bin exp -- verify

echo "== exp faults --quick (crashpoint sweep + retry layer vs oracle)"
cargo run --release -q -p spine-bench --bin exp -- faults --quick

echo "== fault-tolerance integration tests"
cargo test -q --test fault_tolerance
cargo test -q -p pagestore --test faults

echo "== exp serve --metrics --quick (ledger invariant + stage histograms)"
metrics_json=$(cargo run --release -q -p spine-bench --bin exp -- serve --metrics --quick)
echo "$metrics_json" | grep -q '"ledger_consistent":true' \
  || { echo "metrics smoke: ledger inconsistent"; exit 1; }
echo "$metrics_json" | grep -q '"stages_bounded":true' \
  || { echo "metrics smoke: stage timings exceed workers × wall"; exit 1; }
echo "$metrics_json" | grep -q '"stage.index_scan":{"count":[1-9]' \
  || { echo "metrics smoke: empty index-scan histogram"; exit 1; }

echo "== exp explain --quick (Figure 3 trace vs hand-derived path + oracle replay)"
cargo run --release -q -p spine-bench --bin exp -- explain --quick >/dev/null

echo "== exp serve --metrics --prom (Prometheus exposition self-check)"
prom_text=$(cargo run --release -q -p spine-bench --bin exp -- serve --metrics --quick --prom)
echo "$prom_text" | grep -q '^spine_engine_query_latency_count ' \
  || { echo "prom smoke: missing engine.query_latency samples"; exit 1; }

if [ "$BENCH_CHECK" = 1 ]; then
  echo "== bench regression gate (vs committed BENCH_serve.json)"
  tmp_snap=$(mktemp)
  cargo run --release -q -p spine-bench --bin exp -- bench-snapshot --quick \
    --out "$tmp_snap" --check BENCH_serve.json >/dev/null
  rm -f "$tmp_snap"
fi

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "CI green."
