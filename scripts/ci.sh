#!/usr/bin/env bash
# The full CI gate: formatting, lints, build, every test, and the paper's
# correctness experiment. Run from anywhere inside the repository.
#
#   --bench-check   additionally re-run the serving benchmark and the full
#                   load-harness sweep, failing on regressions against the
#                   committed BENCH_serve.json / BENCH_build.json /
#                   BENCH_scale.json baselines
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_CHECK=0
for arg in "$@"; do
  case "$arg" in
    --bench-check) BENCH_CHECK=1 ;;
    *) echo "unknown argument: $arg (supported: --bench-check)"; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests"
cargo build --release
cargo test -q --workspace

echo "== exp verify (invariants + cross-engine agreement, eco-sim & friends)"
cargo run --release -q -p spine-bench --bin exp -- verify

echo "== exp faults --quick (crashpoint sweep + retry layer vs oracle)"
cargo run --release -q -p spine-bench --bin exp -- faults --quick

echo "== fault-tolerance integration tests"
cargo test -q --test fault_tolerance
cargo test -q -p pagestore --test faults

echo "== segment store: manifest codec, lifecycle, differential oracle, engine stress"
cargo test -q -p spine --lib manifest
cargo test -q -p spine --lib segments
cargo test -q --test segments
cargo test -q --test differential segmented_store

echo "== flight recorder: journal codec, merge observer, timeline ring, postmortem dumps"
cargo test -q -p spine --lib journal
cargo test -q -p spine --lib observe
cargo test -q -p strindex --lib telemetry
cargo test -q -p spine-bench --lib flight
cargo test -q -p spine-bench --lib http

echo "== hot-page tier: pool pinning/prefetch, heatmap attribution, differential oracle"
cargo test -q -p pagestore --lib pool
cargo test -q -p pagestore --test pinning
cargo test -q -p spine --lib trace
cargo test -q -p spine --lib hot
cargo test -q --test explain
cargo test -q --test differential hot_tier
cargo test -q --test segments segments_pin_hot

echo "== layout v2: codec round-trips, sealed engine, packed-vs-scalar"
cargo test -q -p pagestore varint
cargo test -q -p pagestore slotted
cargo test -q -p spine disk::
cargo test -q --test layout_v2
cargo test -q --test differential packed_scan

echo "== exp scale --quick --check (load harness: curve coverage vs committed BENCH_scale.json)"
tmp_scale=$(mktemp)
cargo run --release -q -p spine-bench --bin exp -- scale --quick \
  --out "$tmp_scale" --check BENCH_scale.json 2>&1 | tail -2
rm -f "$tmp_scale"

echo "== load-harness tests (determinism properties + coordinated-omission stall probe)"
cargo test -q -p spine-bench --lib load
cargo test -q -p spine-bench --test load
cargo test -q -p spine-bench --lib rng
cargo test -q -p spine-bench --lib snapshot

echo "== exp serve --metrics --quick (ledger invariant + stage histograms)"
metrics_json=$(cargo run --release -q -p spine-bench --bin exp -- serve --metrics --quick)
echo "$metrics_json" | grep -q '"ledger_consistent":true' \
  || { echo "metrics smoke: ledger inconsistent"; exit 1; }
echo "$metrics_json" | grep -q '"stages_bounded":true' \
  || { echo "metrics smoke: stage timings exceed workers × wall"; exit 1; }
echo "$metrics_json" | grep -q '"stage.index_scan":{"count":[1-9]' \
  || { echo "metrics smoke: empty index-scan histogram"; exit 1; }

echo "== exp explain --quick (Figure 3 trace vs hand-derived path + oracle replay)"
cargo run --release -q -p spine-bench --bin exp -- explain --quick >/dev/null

echo "== exp serve --metrics --prom (Prometheus exposition self-check)"
prom_text=$(cargo run --release -q -p spine-bench --bin exp -- serve --metrics --quick --prom)
echo "$prom_text" | grep -q '^spine_engine_query_latency_count ' \
  || { echo "prom smoke: missing engine.query_latency samples"; exit 1; }

echo "== exp serve --http (monitor endpoint smoke: /metrics /health /explain /quit)"
http_log=$(mktemp)
cargo run --release -q -p spine-bench --bin exp -- serve --http 0 --quick \
  >"$http_log" 2>/dev/null &
http_pid=$!
addr=""
for _ in $(seq 1 120); do
  addr=$(grep -m1 -o '127\.0\.0\.1:[0-9]*' "$http_log" || true)
  [ -n "$addr" ] && break
  sleep 0.5
done
[ -n "$addr" ] || { echo "http smoke: server never printed its address"; kill "$http_pid" 2>/dev/null; exit 1; }
# The in-tree std-TcpStream client (exp http-get) keeps CI curl-free;
# --prom re-validates the body as Prometheus text exposition.
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/metrics" --prom 2>/dev/null \
  | grep -q '^spine_engine_window_count ' \
  || { echo "http smoke: /metrics misses the sliding-window gauges"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/metrics" 2>/dev/null \
  | grep -q '^spine_build_insertions{engine="memory"} ' \
  || { echo "http smoke: /metrics misses the build gauges"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/health" 2>/dev/null \
  | grep -q '"slo_healthy":true' \
  || { echo "http smoke: /health not healthy on a clean run"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/health" 2>/dev/null \
  | grep -q '"segments_clean":true' \
  || { echo "http smoke: clean recovery should report segments_clean"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/explain?q=ACA" 2>/dev/null \
  | grep -q '"ends":\[' \
  || { echo "http smoke: /explain returned no trace"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/metrics" 2>/dev/null \
  | grep -q '^spine_segments_pages{segment="0"} ' \
  || { echo "http smoke: /metrics misses the per-segment page gauges"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/timeline?metric=segments.epoch" 2>/dev/null \
  | grep -q '"samples":\[{' \
  || { echo "http smoke: /timeline returned no samples"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/journal" 2>/dev/null \
  | grep -q '"kind":"recover"' \
  || { echo "http smoke: /journal misses the recovery event"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/quit" >/dev/null 2>&1
wait "$http_pid" || { echo "http smoke: server exited non-zero"; exit 1; }
grep -q "shut down cleanly" "$http_log" \
  || { echo "http smoke: server did not shut down cleanly"; exit 1; }
rm -f "$http_log"

echo "== exp serve --http --orphan (uncommitted orphan segment degrades /health to 503)"
orphan_log=$(mktemp)
cargo run --release -q -p spine-bench --bin exp -- serve --http 0 --quick --orphan \
  >"$orphan_log" 2>/dev/null &
orphan_pid=$!
addr=""
for _ in $(seq 1 120); do
  addr=$(grep -m1 -o '127\.0\.0\.1:[0-9]*' "$orphan_log" || true)
  [ -n "$addr" ] && break
  sleep 0.5
done
[ -n "$addr" ] || { echo "orphan smoke: server never printed its address"; kill "$orphan_pid" 2>/dev/null; exit 1; }
# http-get exits 1 on HTTP >= 400 — exactly what a degraded /health must do.
if cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/health" >/dev/null 2>&1; then
  echo "orphan smoke: /health should be 503 with an orphan segment"; exit 1
fi
orphan_body=$(cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/health" 2>/dev/null || true)
echo "$orphan_body" | grep -q '"segments_clean":false' \
  || { echo "orphan smoke: /health body should name the orphan"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/metrics" 2>/dev/null \
  | grep -q '^spine_segments_orphans 1' \
  || { echo "orphan smoke: /metrics should gauge the orphan"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/quit" >/dev/null 2>&1
wait "$orphan_pid" || { echo "orphan smoke: server exited non-zero"; exit 1; }
grep -q "OK: postmortem .* validates" "$orphan_log" \
  || { echo "orphan smoke: forced 503 should have captured a postmortem dump"; exit 1; }
rm -f "$orphan_log"

echo "== exp serve --http --flaky (flight recorder: forced 503 captures a postmortem dump)"
flaky_log=$(mktemp)
cargo run --release -q -p spine-bench --bin exp -- serve --http 0 --quick --flaky \
  >"$flaky_log" 2>/dev/null &
flaky_pid=$!
addr=""
for _ in $(seq 1 120); do
  addr=$(grep -m1 -o '127\.0\.0\.1:[0-9]*' "$flaky_log" || true)
  [ -n "$addr" ] && break
  sleep 0.5
done
[ -n "$addr" ] || { echo "flaky smoke: server never printed its address"; kill "$flaky_pid" 2>/dev/null; exit 1; }
# Force the 503: the flaky probe device burns the SLO error budget on the
# first /health scrape, and the healthy→unhealthy edge triggers the dump.
forced=0
for _ in $(seq 1 20); do
  if ! cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/health" >/dev/null 2>&1; then
    forced=1; break
  fi
  sleep 0.3
done
[ "$forced" = 1 ] || { echo "flaky smoke: /health never degraded to 503"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/timeline" 2>/dev/null \
  | grep -q '"samples":\[{' \
  || { echo "flaky smoke: /timeline returned no samples"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/journal" 2>/dev/null \
  | grep -q '"kind":"seal"' \
  || { echo "flaky smoke: /journal misses the seal event"; exit 1; }
cargo run --release -q -p spine-bench --bin exp -- http-get "$addr/quit" >/dev/null 2>&1
# The server itself asserts a dump exists and schema-validates it on
# shutdown (a flaky run that captured nothing exits non-zero).
wait "$flaky_pid" || { echo "flaky smoke: server exited non-zero"; exit 1; }
dump=$(grep -oE 'OK: postmortem [^ ]+ validates' "$flaky_log" | awk '{print $3}')
[ -n "$dump" ] && [ -f "$dump" ] \
  || { echo "flaky smoke: postmortem dump file missing"; exit 1; }
head -c 11 "$dump" | grep -q '{"reason":"' \
  || { echo "flaky smoke: postmortem dump does not parse"; exit 1; }
rm -f "$flaky_log"

if [ "$BENCH_CHECK" = 1 ]; then
  echo "== bench regression gate (vs committed BENCH_serve.json + BENCH_build.json)"
  tmp_snap=$(mktemp); tmp_build=$(mktemp)
  cargo run --release -q -p spine-bench --bin exp -- bench-snapshot --quick \
    --out "$tmp_snap" --check BENCH_serve.json \
    --out-build "$tmp_build" --check-build BENCH_build.json >/dev/null
  rm -f "$tmp_snap" "$tmp_build"
  echo "== load-harness regression gate (full sweep vs committed BENCH_scale.json)"
  tmp_scale=$(mktemp)
  cargo run --release -q -p spine-bench --bin exp -- scale \
    --out "$tmp_scale" --check BENCH_scale.json 2>&1 | tail -2
  rm -f "$tmp_scale"
fi

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "CI green."
