//! Multi-string indexing: one SPINE index over a collection of sequences
//! (the Generalized-Suffix-Tree-style capability from §1.1 of the paper).
//!
//! Builds a single index over several protein sequences and answers
//! "which documents contain this motif?" queries.
//!
//! ```sh
//! cargo run --example multi_string
//! ```

use genseq::{preset, rng, MarkovModel};
use spine::GeneralizedSpine;
use strindex::Alphabet;

fn main() -> strindex::Result<()> {
    let alphabet = Alphabet::protein();
    let mut index = GeneralizedSpine::new(alphabet.clone());

    // A small protein "database": a few generated sequences, two of which
    // share an implanted motif.
    let motif = b"WDYKDDDKGH"; // FLAG-like tag
    let model = MarkovModel::random(&alphabet, 1, 0.3, &mut rng(2));
    let mut names = Vec::new();
    for i in 0..6 {
        let mut seq = alphabet.decode_all(&model.sample(400, &mut rng(100 + i)));
        if i % 3 == 0 {
            // Implant the motif at a known position.
            let at = 37 + 11 * i as usize;
            seq[at..at + motif.len()].copy_from_slice(motif);
        }
        names.push(format!("protein-{i}"));
        index.add_document_bytes(&seq)?;
    }
    // Also index the yeast-proteome stand-in's first fragment.
    let yeast = preset("yst-sim").unwrap().generate(0.001);
    index.add_document(&yeast[..800.min(yeast.len())])?;
    names.push("yst-sim[..800]".into());

    println!(
        "one index over {} documents, {} residues total",
        index.doc_count(),
        index.as_spine().len()
    );

    // Which documents carry the motif?
    let pattern = alphabet.encode(motif)?;
    let docs = index.docs_containing(&pattern);
    println!("\nmotif {:?} found in:", String::from_utf8_lossy(motif));
    for m in index.find_all(&pattern) {
        println!("  {} at offset {}", names[m.doc], m.offset);
    }
    assert_eq!(docs, vec![0, 3]);

    // Shorter motifs hit more documents; cross-document false matches are
    // impossible (the document separator blocks them).
    for probe in [&b"KDD"[..], b"GH", b"W"] {
        let p = alphabet.encode(probe)?;
        println!(
            "{:>4} appears in {} of {} documents",
            String::from_utf8_lossy(probe),
            index.docs_containing(&p).len(),
            index.doc_count()
        );
    }
    Ok(())
}
