//! Genome alignment anchors: the paper's motivating workload.
//!
//! Generates a synthetic "genome", derives a mutated relative (as a stand-in
//! for a second, related genome), and finds all maximal matching substrings
//! above a threshold — the anchor-finding step of whole-genome aligners like
//! MUMmer. Both SPINE and the suffix-tree baseline run the workload and are
//! cross-checked.
//!
//! ```sh
//! cargo run --release --example genome_alignment [length] [threshold]
//! ```

use genseq::{mutate, preset, rng, MutationProfile};
use spine::Spine;
use strindex::MatchingIndex;
use suffix_tree::SuffixTree;

fn main() -> strindex::Result<()> {
    let mut args = std::env::args().skip(1);
    let length: usize = args.next().map_or(200_000, |s| s.parse().expect("length"));
    let threshold: usize = args.next().map_or(25, |s| s.parse().expect("threshold"));

    // Data genome: the E.coli stand-in scaled to the requested length.
    let p = preset("eco-sim").unwrap();
    let alphabet = p.alphabet();
    let genome = p.generate(length as f64 / p.full_len as f64);
    // Query genome: an evolved relative (SNPs, indels, rearrangements).
    let relative = mutate(&genome, alphabet.size(), &MutationProfile::default(), &mut rng(42));
    println!(
        "data genome: {} bp, query genome: {} bp, threshold {}",
        genome.len(),
        relative.len(),
        threshold
    );

    let t0 = std::time::Instant::now();
    let spine = Spine::build(alphabet.clone(), &genome)?;
    println!("SPINE built in {:.3}s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    spine.counters().reset();
    let anchors = spine.maximal_matches(&relative, threshold);
    println!(
        "SPINE: {} anchors in {:.3}s ({} nodes checked)",
        anchors.len(),
        t0.elapsed().as_secs_f64(),
        spine.counters().nodes_checked()
    );

    // The suffix-tree baseline must agree (and typically checks many more
    // nodes — Table 6 of the paper).
    let st = SuffixTree::build(alphabet.clone(), &genome)?;
    st.counters().reset();
    let st_anchors = st.maximal_matches(&relative, threshold);
    assert_eq!(anchors, st_anchors, "engines disagree");
    println!(
        "suffix tree agrees ({} nodes checked — {:.1}x SPINE's)",
        st.counters().nodes_checked(),
        st.counters().nodes_checked() as f64 / spine.counters().nodes_checked().max(1) as f64
    );

    // Report the longest anchors like an aligner's seed table.
    let mut by_len = anchors.clone();
    by_len.sort_by_key(|m| std::cmp::Reverse(m.len));
    println!("\ntop anchors (query_start, data_start, len):");
    for m in by_len.iter().take(10) {
        println!("  q@{:<9} d@{:<9} len {}", m.query_start, m.data_start, m.len);
        debug_assert_eq!(
            &genome[m.data_start..m.data_start + m.len],
            &relative[m.query_start..m.query_start + m.len]
        );
    }

    // Coverage summary: how much of the query is covered by anchors.
    let mut covered = vec![false; relative.len()];
    for m in &anchors {
        covered[m.query_start..m.query_start + m.len].iter_mut().for_each(|b| *b = true);
    }
    let pct = 100.0 * covered.iter().filter(|&&b| b).count() as f64 / covered.len() as f64;
    println!("\nanchors cover {pct:.1}% of the query genome");
    Ok(())
}
