//! Concurrent query serving: one immutable SPINE index, a pool of worker
//! threads, and an admission queue that coalesces patterns into shared
//! backbone scans — the deployment shape behind the paper's "integration
//! with database engines" pitch (§6).
//!
//! ```sh
//! cargo run --release --example concurrent_server
//! ```

use std::sync::Arc;

use genseq::preset;
use spine::engine::{EngineConfig, QueryEngine, ShardedEngine};
use spine::telemetry::{MetricsRegistry, Stage};
use spine::Spine;
use strindex::Code;

fn main() {
    // A shared index over a simulated E. coli genome (~35 kbp here).
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.01);
    let index = Arc::new(Spine::build(p.alphabet(), &text).unwrap());
    println!("indexed {} bp; starting 4 workers", text.len());

    // Observability: attach a metrics registry so the engine records
    // per-stage latency histograms and per-query tracing spans as it works.
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = EngineConfig { workers: 4, batch_max: 32, ..Default::default() };
    let engine = QueryEngine::with_telemetry(Arc::clone(&index), cfg, Arc::clone(&registry));

    // Simulate request traffic: several client threads submit interleaved
    // pattern lookups against the one engine.
    let patterns: Vec<Vec<Code>> =
        (0..200).map(|i| text[(i * 379) % (text.len() - 16)..][..8 + i % 9].to_vec()).collect();
    std::thread::scope(|s| {
        for client in 0..4 {
            let engine = &engine;
            let patterns = &patterns;
            s.spawn(move || {
                for i in 0..patterns.len() / 4 {
                    engine
                        .submit(patterns[(client + 4 * i) % patterns.len()].clone())
                        .expect("default shed policy blocks rather than rejecting");
                }
            });
        }
    });

    // Collect every answer. Results carry their pattern and all occurrence
    // positions (identical to a serial scan, in ascending order).
    let results = engine.drain();
    let hits: usize = results.iter().map(|r| r.expect_ends().len()).sum();
    println!("{} queries answered, {} total occurrences", results.len(), hits);

    let m = engine.metrics();
    println!(
        "coalescing: {} backbone scans for {} queries (mean batch {:.1}, peak queue {})",
        m.batches(),
        m.completed,
        m.mean_batch(),
        m.peak_queue_depth
    );
    println!(
        "index work: {} nodes checked, {} links followed",
        m.index.nodes_checked, m.index.links_followed
    );

    // What the registry saw: per-stage latency quantiles (microseconds) and
    // the tail of the span trace.
    let snap = registry.snapshot();
    println!("\ntelemetry ({} spans recorded):", snap.spans_recorded);
    for stage in Stage::ALL {
        if let Some(h) = snap.stage(stage) {
            if !h.is_empty() {
                println!(
                    "  {:<22} n={:<4} p50={:>6}us p95={:>6}us max={:>6}us",
                    stage.metric_name(),
                    h.count,
                    h.p50() / 1_000,
                    h.p95() / 1_000,
                    h.max / 1_000
                );
            }
        }
    }
    if let Some(h) = snap.histogram("engine.query_latency") {
        println!(
            "  {:<22} n={:<4} p50={:>6}us p95={:>6}us max={:>6}us",
            "engine.query_latency",
            h.count,
            h.p50() / 1_000,
            h.p95() / 1_000,
            h.max / 1_000
        );
    }
    println!("last spans:");
    for s in snap.spans.iter().rev().take(4).rev() {
        println!("  [{:>8}us +{:>6}us] {}", s.start_us, s.duration_us, s.name);
    }

    // Sharded mode: documents partitioned across generalized indexes,
    // patterns broadcast, answers merged into global document coordinates.
    let docs: Vec<Vec<Code>> = text.chunks(4_096).map(|c| c.to_vec()).collect();
    let shard_cfg = EngineConfig { workers: 2, batch_max: 32, ..Default::default() };
    let sharded = ShardedEngine::build(p.alphabet(), &docs, 3, shard_cfg).unwrap();
    println!("\nsharded: {} documents across {} shards", docs.len(), sharded.shard_count());
    for pat in &patterns[..3] {
        sharded.submit(pat.clone()).unwrap();
    }
    for r in sharded.drain() {
        println!(
            "pattern of length {:>2}: {:>3} occurrences in {} documents",
            r.pattern.len(),
            r.expect_matches().len(),
            {
                let mut d: Vec<usize> = r.expect_matches().iter().map(|m| m.doc).collect();
                d.dedup();
                d.len()
            }
        );
    }
}
