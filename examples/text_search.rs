//! SPINE beyond genomics: indexing plain ASCII text.
//!
//! The paper presents SPINE with DNA/protein alphabets, but nothing in the
//! structure is genome-specific — this example indexes English text,
//! answers phrase queries, finds the longest repeated phrase, and shows the
//! k-mismatch search tolerating a typo.
//!
//! ```sh
//! cargo run --example text_search
//! ```

use spine::Spine;
use strindex::{Alphabet, StringIndex};

const TEXT: &str = "\
the index grows at the tail and only at the tail. every node on the \
backbone stands for one character of the text, and every path from the \
root follows the first occurrence of the string it spells. the index \
grows at the tail and never rewrites what it has already built, which is \
why the index for a prefix of the text is simply a prefix of the index. \
links point upstream, ribs point downstream, and the thresholds decide \
which paths are real.";

fn main() -> strindex::Result<()> {
    let alphabet = Alphabet::ascii();
    let text = alphabet.encode(TEXT.as_bytes())?;
    let index = Spine::build(alphabet.clone(), &text)?;
    println!("indexed {} characters of English text\n", index.len());

    // Phrase queries.
    for phrase in ["the tail", "the index", "upstream", "downstream", "vertebra"] {
        let p = alphabet.encode(phrase.as_bytes())?;
        let hits = index.find_all(&p);
        println!("{phrase:?}: {} occurrence(s) at {:?}", hits.len(), hits);
    }

    // The longest phrase that appears twice.
    let m = index.longest_repeated_substring().expect("prose repeats itself");
    println!("\nlongest repeated phrase ({} chars): {:?}", m.len, &TEXT[m.start..m.start + m.len]);
    assert!(TEXT.matches(&TEXT[m.start..m.start + m.len]).count() >= 2);

    // Typo-tolerant search: "indes" is one substitution from "index".
    let typo = alphabet.encode(b"indes")?;
    assert!(index.find_all(&typo).is_empty());
    let fuzzy = index.find_all_hamming(&typo, 1);
    println!("\n\"indes\" (typo) within 1 mismatch: {} hit(s)", fuzzy.len());
    for h in &fuzzy {
        println!("  at {} → {:?}", h.start, &TEXT[h.start..h.start + 5]);
    }
    assert!(!fuzzy.is_empty());

    Ok(())
}
