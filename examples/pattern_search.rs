//! Batched pattern search over a FASTA file (or a generated sequence).
//!
//! Demonstrates the paper's deferred-occurrence technique: the first
//! occurrence of every pattern is located through the index, then a single
//! sequential backbone scan resolves all repetitions of all patterns at
//! once.
//!
//! ```sh
//! cargo run --release --example pattern_search [file.fasta] [pattern ...]
//! ```
//!
//! Without arguments, a synthetic sequence is generated and probed with a
//! set of sampled patterns.

use genseq::fasta::read_encoded;
use genseq::preset;
use spine::occurrences::{find_all_ends_batch, Target};
use spine::Spine;
use strindex::{Alphabet, Code, StringIndex};

fn main() -> strindex::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let alphabet = Alphabet::dna();

    // Load or generate the data sequence.
    let (seq, source): (Vec<Code>, String) = match args.first() {
        Some(path) if path.ends_with(".fasta") || path.ends_with(".fa") => {
            let reader = std::io::BufReader::new(std::fs::File::open(path)?);
            let (codes, skipped) = read_encoded(reader, &alphabet)?;
            println!("loaded {path}: {} bases ({skipped} non-ACGT skipped)", codes.len());
            (codes, path.clone())
        }
        _ => {
            let p = preset("eco-sim").unwrap();
            let codes = p.generate(0.05);
            (codes, "eco-sim @ 5%".into())
        }
    };

    // Patterns: from the command line, or sampled windows of the data.
    let pattern_args: Vec<&String> =
        args.iter().skip(if source.ends_with("%") { 0 } else { 1 }).collect();
    let patterns: Vec<Vec<Code>> = if pattern_args.is_empty() {
        (0..24).map(|i| seq[(i * 7919) % (seq.len() - 16)..][..16].to_vec()).collect()
    } else {
        pattern_args
            .iter()
            .map(|p| alphabet.encode(p.as_bytes()))
            .collect::<strindex::Result<_>>()?
    };

    let index = Spine::build(alphabet.clone(), &seq)?;
    println!("indexed {} bases from {source}; {} patterns", seq.len(), patterns.len());

    // Phase 1: locate first occurrences only (cheap valid-path walks).
    let mut targets = Vec::new();
    let mut missing = 0usize;
    for p in &patterns {
        match index.locate(p) {
            Some(first_end) => targets.push(Target { first_end, len: p.len() as u32 }),
            None => missing += 1,
        }
    }
    println!("{} patterns present, {missing} absent", targets.len());

    // Phase 2: one backbone scan resolves every occurrence of every pattern.
    let t0 = std::time::Instant::now();
    let occurrences = find_all_ends_batch(&index, &targets);
    let total: usize = occurrences.values().map(Vec::len).sum();
    println!("batched scan found {total} occurrences in {:.3}s", t0.elapsed().as_secs_f64());

    // Show a summary per pattern (and spot-check against find_all).
    for (p, t) in patterns.iter().zip(&targets).take(8) {
        let ends = &occurrences[t];
        let starts: Vec<usize> = ends.iter().map(|&e| e as usize - p.len()).collect();
        assert_eq!(starts, index.find_all(p));
        println!(
            "  {} → {} occurrence(s), first at {}",
            String::from_utf8_lossy(&alphabet.decode_all(p)),
            starts.len(),
            starts[0]
        );
    }
    Ok(())
}
