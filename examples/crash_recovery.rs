//! Crash-safe mutable serving: the LSM-of-SPINEs segment store.
//!
//! Walks the full lifecycle — add documents, seal them into immutable
//! layout-v2 segments, retire one (a manifest tombstone), compact with a
//! merge — then simulates a crash *mid-commit* with an injected I/O fault
//! and shows recovery landing on the last committed epoch, with the
//! orphaned half-written files detected and cleaned.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use spine::{IoGate, SegmentConfig, SegmentedSpine};
use strindex::Alphabet;

fn main() -> strindex::Result<()> {
    let a = Alphabet::dna();
    let dir = std::env::temp_dir().join(format!("spine-example-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SegmentConfig { pool_pages: 4, merge_min_segments: 2, ..Default::default() };

    // -- Normal life: add, seal, retire, merge -----------------------------
    let store = SegmentedSpine::create(a.clone(), &dir, cfg.clone())?;
    for text in [&b"ACGTACGTAC"[..], b"GGGGTTTT", b"CACACACA"] {
        let id = store.add_document(&a.encode(text)?)?;
        println!("added doc {id}: {}", String::from_utf8_lossy(text));
    }
    store.force_seal()?;
    let id = store.add_document(&a.encode(b"TTACGTTA")?)?;
    println!("added doc {id}: TTACGTTA");
    store.force_seal()?;
    println!("sealed twice -> epoch {}, {} segments", store.epoch(), store.stats().segments);

    store.retire_document(1)?;
    println!("retired doc 1 -> epoch {} (tombstone committed)", store.epoch());
    store.merge_once()?;
    let s = store.stats();
    println!(
        "merged -> epoch {}, {} segment(s), {} tombstones, {} live docs",
        s.epoch, s.segments, s.tombstones, s.live_docs
    );
    let pat = a.encode(b"ACGT")?;
    let hits: Vec<(usize, usize)> =
        store.try_find_all(&pat)?.into_iter().map(|m| (m.doc, m.offset)).collect();
    println!("ACGT -> {hits:?}");
    let committed_epoch = store.epoch();
    let committed_live = store.live_doc_ids();
    drop(store);

    // -- Crash mid-commit --------------------------------------------------
    // Reopen with a gate that hard-fails every I/O operation from index N
    // on — as if the machine lost power there — and try to seal one more
    // document. The seal writes segment pages, the sidecar, and then the
    // manifest; the gate kills it partway through.
    let gate = IoGate::armed(6);
    let crashed =
        SegmentedSpine::open(a.clone(), &dir, SegmentConfig { gate: Some(gate), ..cfg.clone() })?;
    crashed.add_document(&a.encode(b"AAAACCCC")?)?;
    let err = crashed.force_seal().unwrap_err();
    println!("\ncrash injected mid-seal: {err}");
    drop(crashed);

    // -- Recovery ----------------------------------------------------------
    let recovered = SegmentedSpine::open(a.clone(), &dir, cfg)?;
    println!(
        "recovered -> epoch {} (last committed was {}), live docs {:?}",
        recovered.epoch(),
        committed_epoch,
        recovered.live_doc_ids()
    );
    assert_eq!(recovered.epoch(), committed_epoch);
    assert_eq!(recovered.live_doc_ids(), committed_live);
    let hits2: Vec<(usize, usize)> =
        recovered.try_find_all(&pat)?.into_iter().map(|m| (m.doc, m.offset)).collect();
    assert_eq!(hits2, hits);
    println!("ACGT -> {hits2:?} (identical to pre-crash committed answers)");
    println!(
        "orphans from the torn seal: {} -> cleaned {}",
        recovered.orphan_count(),
        recovered.cleanup_orphans()?
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
