//! Disk-resident indexing: build a SPINE index on a real file device and
//! query it through a small buffer pool, comparing eviction policies —
//! including the paper's "keep the top of the Link Table resident" strategy.
//!
//! ```sh
//! cargo run --release --example disk_resident [length]
//! ```

use genseq::{iid_sequence, preset, rng};
use pagestore::{Clock, EvictionPolicy, Fifo, FileDevice, Lru, MemDevice, PrefixPriority};

/// A named eviction-policy factory.
type PolicyMaker = (&'static str, Box<dyn Fn() -> Box<dyn EvictionPolicy>>);
use spine::DiskSpine;
use strindex::{MatchingIndex, StringIndex};

fn main() -> strindex::Result<()> {
    let length: usize = std::env::args().nth(1).map_or(150_000, |s| s.parse().expect("length"));
    let p = preset("cel-sim").unwrap();
    let alphabet = p.alphabet();
    let genome = p.generate(length as f64 / p.full_len as f64);
    println!("data: {} bp", genome.len());

    // --- Build on a real file, with a tight pool -------------------------
    let dir = std::env::temp_dir().join("spine-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("index-{}.pages", std::process::id()));
    let device = FileDevice::create(&path, false)?;
    let pool_pages = 64;

    let t0 = std::time::Instant::now();
    let index = DiskSpine::build(
        alphabet.clone(),
        &genome,
        Box::new(device),
        pool_pages,
        Box::<Lru>::default(),
    )?;
    index.flush()?;
    let (reads, writes) = index.io_counts();
    println!(
        "built on file in {:.2}s — {} page reads, {} page writes, build hit rate {:.1}%",
        t0.elapsed().as_secs_f64(),
        reads,
        writes,
        100.0 * index.hit_rate()
    );

    // Queries work straight off the pool.
    let probe = genome[1000..1024].to_vec();
    println!("probe pattern occurs {} times", index.find_all(&probe).len());

    // --- Policy comparison under pressure ---------------------------------
    // A hostile query (unrelated to the data) maximizes link chasing into
    // the upstream region, where Figure 8 says the links concentrate.
    let query = iid_sequence(&alphabet, genome.len() / 2, &mut rng(9));
    let small_pool = 16;
    println!("\npolicy comparison (pool = {small_pool} pages, matching statistics):");
    let policies: Vec<PolicyMaker> = vec![
        ("lru", Box::new(|| Box::<Lru>::default())),
        ("fifo", Box::new(|| Box::<Fifo>::default())),
        ("clock", Box::new(|| Box::<Clock>::default())),
        ("prefix-priority", Box::new(|| Box::<PrefixPriority>::default())),
    ];
    for (name, make) in policies {
        let idx = DiskSpine::build(
            alphabet.clone(),
            &genome,
            Box::new(MemDevice::new()),
            small_pool,
            make(),
        )?;
        let (r0, _) = idx.io_counts();
        let t0 = std::time::Instant::now();
        let ms = idx.matching_statistics(&query);
        let (r1, _) = idx.io_counts();
        println!(
            "  {name:<16} {:.3}s  {:>7} search reads  (best match len {})",
            t0.elapsed().as_secs_f64(),
            r1 - r0,
            ms.lengths.iter().max().unwrap()
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
