//! Beyond exact search: k-mismatch queries and maximal *unique* matches.
//!
//! * Hamming search backtracks over SPINE's valid paths, spending mismatch
//!   budget on edges whose labels differ from the pattern — the approximate
//!   matching the paper lists among its future avenues.
//! * MUMs (maximal unique matches) are the anchors MUMmer is named after;
//!   here they come from the generic [`strindex::maximal_unique_matches`]
//!   running over SPINE.
//!
//! ```sh
//! cargo run --release --example approximate_and_unique
//! ```

use genseq::{mutate, preset, rng, MutationProfile};
use spine::Spine;
use strindex::{longest_common_substring, maximal_unique_matches, StringIndex};

fn main() -> strindex::Result<()> {
    let p = preset("eco-sim").unwrap();
    let alphabet = p.alphabet();
    let genome = p.generate(0.02); // 70 000 bp
    let index = Spine::build(alphabet.clone(), &genome)?;

    // --- k-mismatch search -------------------------------------------------
    // Take a real window and corrupt two positions; exact search misses it,
    // Hamming search recovers it.
    let mut probe = genome[12_345..12_345 + 24].to_vec();
    probe[5] = (probe[5] + 1) % 4;
    probe[17] = (probe[17] + 2) % 4;
    assert!(index.find_all(&probe).is_empty(), "corrupted probe is not exact");
    for k in 0..=3u32 {
        let hits = index.find_all_hamming(&probe, k);
        println!("k={k}: {} hit(s)", hits.len());
        if let Some(h) = hits.iter().find(|h| h.start == 12_345) {
            println!("   recovered the source window with {} mismatches", h.mismatches);
        }
    }
    assert!(index
        .find_all_hamming(&probe, 2)
        .iter()
        .any(|h| h.start == 12_345 && h.mismatches == 2));

    // --- MUM anchors --------------------------------------------------------
    let relative = mutate(&genome, alphabet.size(), &MutationProfile::default(), &mut rng(7));
    let rel_index = Spine::build(alphabet.clone(), &relative)?;
    let mums = maximal_unique_matches(&index, &rel_index, &relative, 30);
    println!("\n{} MUMs of length ≥ 30 between genome and relative", mums.len());
    for m in mums.iter().take(5) {
        println!("  q@{:<8} d@{:<8} len {}", m.query_start, m.data_start, m.len);
        assert_eq!(
            &genome[m.data_start..m.data_start + m.len],
            &relative[m.query_start..m.query_start + m.len]
        );
        // Unique on both sides, by definition.
        assert_eq!(index.find_all(&relative[m.query_start..m.query_start + m.len]).len(), 1);
    }

    // --- Longest common substring -------------------------------------------
    let lcs = longest_common_substring(&index, &relative).expect("relatives share material");
    println!("\nlongest shared substring: {} bp (query offset {})", lcs.len, lcs.query_start);
    Ok(())
}
