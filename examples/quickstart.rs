//! Quickstart: build a SPINE index, search it, and exercise the properties
//! the paper highlights (no false positives, first-occurrence addressing,
//! text recovery, prefix partitioning).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spine::Spine;
use strindex::{Alphabet, StringIndex};

fn main() -> strindex::Result<()> {
    // The paper's running example string.
    let alphabet = Alphabet::dna();
    let text = b"AACCACAACA";
    let index = Spine::build_from_bytes(alphabet.clone(), text)?;
    println!(
        "indexed {:?}: {} nodes (always length+1)",
        String::from_utf8_lossy(text),
        index.nodes().len()
    );

    // Exact search: every occurrence of "CA".
    let pattern = alphabet.encode(b"CA")?;
    let hits = index.find_all(&pattern);
    println!("\"CA\" occurs at offsets {hits:?}");
    assert_eq!(hits, vec![3, 5, 8]);

    // The pathlength thresholds eliminate the false positives that naive
    // path-merging would create: ACCAA has an apparent path but is not a
    // substring (the example from §2.1 of the paper).
    let bogus = alphabet.encode(b"ACCAA")?;
    println!("\"ACCAA\" present? {}", index.contains(&bogus));
    assert!(!index.contains(&bogus));

    // A located pattern ends at the end position of its FIRST occurrence —
    // node ids double as text positions.
    let ca_end = index.locate(&pattern).unwrap();
    println!("first \"CA\" ends at 1-based position {ca_end}");
    assert_eq!(ca_end, 5);

    // The index fully encodes the text: vertebra labels spell it back.
    let recovered = index.recover_text();
    assert_eq!(alphabet.decode_all(&recovered), text);
    println!("recovered the text from the index alone");

    // Prefix partitioning: the index of a prefix is an initial fragment.
    let prefix = index.prefix(5); // "AACCA"
    println!("in the first 5 characters, \"CA\" occurs at {:?}", prefix.find_all(&pattern));
    assert_eq!(prefix.find_all(&pattern), vec![3]);

    Ok(())
}
