//! End-to-end checks against the worked examples in the paper itself.

use spine::{Spine, ROOT};
use strindex::{Alphabet, MatchingIndex, StringIndex};
use suffix_tree::SuffixTree;
use suffix_trie::{NaiveIndex, SuffixTrie};

const PAPER_STRING: &[u8] = b"AACCACAACA";

/// §1.1: the SPINE index for `aaccacaaca` has 11 nodes and 26 edges, while
/// the suffix tree has 13 nodes (plus terminator artifacts) and the trie is
/// far larger.
#[test]
fn figure_1_2_3_node_counts() {
    let a = Alphabet::dna();
    let text = a.encode(PAPER_STRING).unwrap();

    let spine = Spine::build(a.clone(), &text).unwrap();
    assert_eq!(spine.nodes().len(), 11);
    let ribs: usize = spine.nodes().iter().map(|n| n.ribs.len()).sum();
    let extribs: usize = spine.nodes().iter().map(|n| n.extribs.len()).sum();
    assert_eq!(10 + 10 + ribs + extribs, 26, "vertebras + links + ribs + extribs");

    let trie = SuffixTrie::build(a.clone(), &text);
    assert!(trie.node_count() > 40, "the raw trie is much larger");

    let st = SuffixTree::build(a.clone(), &text).unwrap();
    // Figure 2 draws 13 nodes without a terminator; our explicit-terminator
    // build adds the leaves the terminator makes explicit, but stays well
    // under the trie and above SPINE's n+1.
    assert!(st.node_count() > spine.nodes().len());
    assert!(st.node_count() < trie.node_count());
}

/// §2.1 + §4: `accaa` looks like a path but is invalid (PT violation);
/// searching "ac" fills the target buffer with nodes 3, 6, 9.
#[test]
fn section_4_search_walkthrough() {
    let a = Alphabet::dna();
    let spine = Spine::build_from_bytes(a.clone(), PAPER_STRING).unwrap();

    assert!(!spine.contains(&a.encode(b"ACCAA").unwrap()));
    assert!(spine.contains(&a.encode(b"ACCA").unwrap()));

    let ends = spine::occurrences::find_all_ends(&spine, &a.encode(b"AC").unwrap());
    assert_eq!(ends, vec![3, 6, 9]);
}

/// §2.4: node 5's link facts from the paper's notation example — for node 5
/// (prefix `aacca`), the LET-suffix is `a`, ending first at node 1.
#[test]
fn section_2_notation_example() {
    let a = Alphabet::dna();
    let spine = Spine::build_from_bytes(a, PAPER_STRING).unwrap();
    let n5 = &spine.nodes()[5];
    assert_eq!((n5.link, n5.lel), (1, 1));
    // Root has no link; its fields are unused.
    assert_eq!(spine.nodes()[ROOT as usize].ribs.len(), 1); // rib for 'c'
}

/// §4's alignment example: the S1/S2 pair with threshold 6. All engines
/// must agree, and the long shared region around `gattacgaga` must be found.
#[test]
fn section_4_alignment_example() {
    let a = Alphabet::dna();
    let s1 = a.encode(b"ACACCGACGATACGAGATTACGAGACGAGAATACAACAG").unwrap();
    let s2 = a.encode(b"CATAGAGAGACGATTACGAGAAAACGGGAAAGACGATCC").unwrap();

    let spine = Spine::build(a.clone(), &s1).unwrap();
    let st = SuffixTree::build(a.clone(), &s1).unwrap();
    let oracle = NaiveIndex::new(a.clone(), &s1);

    let m_spine = spine.maximal_matches(&s2, 6);
    let m_st = st.maximal_matches(&s2, 6);
    let m_naive = oracle.maximal_matches(&s2, 6);
    assert_eq!(m_spine, m_naive);
    assert_eq!(m_st, m_naive);
    assert!(!m_spine.is_empty(), "threshold-6 matches exist in the paper's pair");

    // The shared region `GATTACGAGA` (length 10) must be among the matches.
    let best = m_spine.iter().map(|m| m.len).max().unwrap();
    assert!(best >= 10, "longest match {best} < 10");
    let witness = m_spine.iter().find(|m| m.len == best).unwrap();
    assert_eq!(
        &s1[witness.data_start..witness.data_start + best],
        &s2[witness.query_start..witness.query_start + best]
    );
}

/// §1.1: the data string is recoverable from SPINE — and prefix
/// partitioning yields the prefix's index.
#[test]
fn online_properties() {
    let a = Alphabet::dna();
    let text = a.encode(PAPER_STRING).unwrap();
    let spine = Spine::build(a.clone(), &text).unwrap();
    assert_eq!(spine.recover_text(), text);

    let prefix = spine.prefix(5);
    assert_eq!(prefix.find_all(&a.encode(b"CA").unwrap()), vec![3]);
}
