//! EXPLAIN-trace correctness, enforced differentially.
//!
//! A [`QueryTrace`] is only useful if it is *true*: the event sequence must
//! describe the traversal the engine actually performed, and that traversal
//! must visit the same character positions a naive automaton would. This
//! suite replays traces against the text with
//! [`QueryTrace::verify_against_text`] (which re-derives every PT admission,
//! every first-occurrence prefix end, and the final occurrence set from
//! first principles) over random DNA / protein / raw-byte texts, and checks
//! that the structural trace is identical across the in-memory, compact,
//! and page-resident engines.

use genseq::rng;
use pagestore::{Lru, MemDevice};
use proptest::prelude::*;
use rand::Rng;
use spine::engine::{EngineConfig, QueryEngine};
use spine::{CompactSpine, DiskSpine, Heatmap, HotSet, QueryTrace, Spine, TraceEvent};
use std::sync::Arc;
use strindex::{Alphabet, Code};

fn random_text(a: &Alphabet, len: usize, seed: u64) -> Vec<Code> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(0..a.size()) as Code).collect()
}

/// Patterns exercising every trace shape: substrings (hits with occurrence
/// scans), random strings (mostly mismatch terminations), the empty pattern,
/// and a pattern longer than the text.
fn patterns_for(a: &Alphabet, text: &[Code], seed: u64) -> Vec<Vec<Code>> {
    let mut r = rng(seed ^ 0x5EED);
    let mut pats: Vec<Vec<Code>> = vec![Vec::new(), random_text(a, text.len() + 3, seed ^ 1)];
    for _ in 0..8 {
        if !text.is_empty() {
            let len = r.gen_range(1..=text.len().min(10));
            let at = r.gen_range(0..=text.len() - len);
            pats.push(text[at..at + len].to_vec());
        }
        let len = r.gen_range(1..=6usize);
        pats.push((0..len).map(|_| r.gen_range(0..a.size()) as Code).collect());
    }
    pats
}

/// 1-based end positions of every occurrence, by straight-line scan — the
/// naive automaton the trace must agree with. The empty pattern ends at
/// every node (0..=n), matching the engines' backbone-scan semantics.
fn scan_ends(text: &[Code], pattern: &[Code]) -> Vec<u32> {
    if pattern.is_empty() {
        return (0..=text.len() as u32).collect();
    }
    if pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .map(|i| (i + pattern.len()) as u32)
        .collect()
}

fn check_trace(tag: &str, trace: &QueryTrace, text: &[Code], pattern: &[Code]) {
    trace
        .verify_against_text(text)
        .unwrap_or_else(|e| panic!("{tag}: trace fails oracle replay for {pattern:?}: {e}"));
    assert_eq!(trace.ends, scan_ends(text, pattern), "{tag}: wrong ends for {pattern:?}");
    assert_eq!(trace.dropped, 0, "{tag}: trace overflowed on a small input");
}

fn exercise(a: &Alphabet, text: &[Code], seed: u64) {
    let spine = Spine::build(a.clone(), text).unwrap();
    let compact = (a.code_space() < 0xFE).then(|| CompactSpine::build(a.clone(), text).unwrap());
    let disk =
        DiskSpine::build(a.clone(), text, Box::new(MemDevice::new()), 4, Box::<Lru>::default())
            .unwrap();
    // The sealed layout-v2 engine. Traced walks always take the scalar
    // path (the packed word compare has no per-step story to tell), so its
    // structural trace must be event-identical to every other engine's.
    let sealed = DiskSpine::build_sealed(
        a.clone(),
        text,
        Box::new(MemDevice::new()),
        4,
        Box::<Lru>::default(),
    )
    .unwrap();
    for pattern in patterns_for(a, text, seed) {
        let t = spine.explain(&pattern);
        check_trace("spine", &t, text, &pattern);
        if let Some(c) = &compact {
            let tc = c.explain(&pattern);
            check_trace("compact", &tc, text, &pattern);
            assert_eq!(
                tc.structural_events(),
                t.structural_events(),
                "compact trace diverges for {pattern:?}"
            );
        }
        let td = disk.explain(&pattern);
        check_trace("disk", &td, text, &pattern);
        assert_eq!(
            td.structural_events(),
            t.structural_events(),
            "disk trace diverges for {pattern:?}"
        );
        let (h, m) = td.page_fetches();
        assert!(h + m > 0, "disk trace for {pattern:?} reports no page fetches");
        let ts = sealed.explain(&pattern);
        check_trace("disk-v2", &ts, text, &pattern);
        assert_eq!(
            ts.structural_events(),
            t.structural_events(),
            "sealed v2 trace diverges for {pattern:?}"
        );
        let (h, m) = ts.page_fetches();
        assert!(h + m > 0, "sealed v2 trace for {pattern:?} reports no page fetches");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DNA texts: every trace replays against the naive oracle and
    /// agrees across engines.
    #[test]
    fn dna_traces_replay_against_oracle(len in 1usize..200, seed in 0u64..1 << 48) {
        let a = Alphabet::dna();
        let text = random_text(&a, len, seed);
        exercise(&a, &text, seed);
    }

    /// Random protein texts (20-symbol alphabet).
    #[test]
    fn protein_traces_replay_against_oracle(len in 1usize..120, seed in 0u64..1 << 48) {
        let a = Alphabet::protein();
        let text = random_text(&a, len, seed);
        exercise(&a, &text, seed);
    }

    /// Random raw-byte texts (256 symbols; the compact layout sits out).
    #[test]
    fn byte_traces_replay_against_oracle(len in 1usize..100, seed in 0u64..1 << 48) {
        let a = Alphabet::bytes();
        let text = random_text(&a, len, seed);
        exercise(&a, &text, seed);
    }
}

/// The two edge patterns the proptest always includes, pinned explicitly:
/// the empty pattern ends at every node; a pattern longer than the text
/// terminates with a mismatch event and no occurrence scan.
#[test]
fn empty_and_overlong_pattern_edges() {
    let a = Alphabet::dna();
    let text = a.encode(b"AACCACAACA").unwrap();
    let s = Spine::build(a.clone(), &text).unwrap();

    let empty = s.explain(&[]);
    empty.verify_against_text(&text).unwrap();
    assert_eq!(empty.first_end, Some(0));
    assert_eq!(empty.ends, (0..=10).collect::<Vec<_>>());

    let overlong = s.explain(&a.encode(b"AACCACAACAA").unwrap());
    overlong.verify_against_text(&text).unwrap();
    assert_eq!(overlong.first_end, None);
    assert!(overlong.ends.is_empty());
    assert!(
        overlong
            .structural_events()
            .iter()
            .any(|e| matches!(e, TraceEvent::NoEdge { .. } | TraceEvent::ChainExhausted { .. })),
        "overlong pattern must terminate with a mismatch event"
    );
    assert!(
        !overlong.structural_events().iter().any(|e| matches!(e, TraceEvent::ScanStart { .. })),
        "a miss must not start an occurrence scan"
    );
}

/// The paper's running example, end to end: the trace of "ACA" over
/// AACCACAACA is exactly the hand-derived Figure 3 valid path.
#[test]
fn figure3_trace_matches_hand_derivation() {
    let a = Alphabet::dna();
    let text = a.encode(b"AACCACAACA").unwrap();
    let s = Spine::build(a.clone(), &text).unwrap();
    let t = s.explain(&a.encode(b"ACA").unwrap());
    let ev = t.structural_events();
    assert_eq!(ev[0], TraceEvent::Vertebra { node: 0, pl: 0, ch: 0 });
    assert_eq!(ev[1], TraceEvent::Rib { node: 1, ch: 1, dest: 3, pt: 1, pl: 1, admitted: true });
    assert_eq!(ev[2], TraceEvent::Rib { node: 3, ch: 0, dest: 5, pt: 1, pl: 2, admitted: false });
    assert_eq!(ev[3], TraceEvent::Extrib { at: 5, prt: 1, dest: 7, pt: 2, pl: 2, taken: true });
    assert_eq!(ev[4], TraceEvent::ScanStart { from: 8, to: 10, len: 3 });
    assert_eq!(t.ends, vec![7, 10]);
    let text_report = t.to_text(&a);
    assert!(text_report.contains("vertebra 0 -> 1"), "{text_report}");
    assert!(text_report.contains("ADMIT"), "{text_report}");
    assert!(text_report.contains("REJECT"), "{text_report}");
}

/// `QueryEngine::submit_traced` returns the same answers as the queued path
/// and its trace replays against the oracle.
#[test]
fn engine_submit_traced_matches_queued_answers() {
    let a = Alphabet::dna();
    let text = random_text(&a, 400, 0xE7617E);
    let index = Arc::new(Spine::build(a.clone(), &text).unwrap());
    let engine = QueryEngine::new(Arc::clone(&index), EngineConfig::default());
    for pattern in patterns_for(&a, &text, 7) {
        let (result, trace) = engine.submit_traced(pattern.clone());
        trace.verify_against_text(&text).unwrap();
        assert_eq!(result.expect_ends(), trace.ends.as_slice());
        assert_eq!(trace.ends, scan_ends(&text, &pattern));
    }
    let m = engine.metrics();
    assert!(m.is_consistent(), "ledger invariant violated: {m:?}");
}

/// Heatmaps conserve visits: bucketing and page folding never lose or
/// invent counts, and every trace touches the root exactly once.
#[test]
fn heatmap_conserves_visit_counts() {
    let a = Alphabet::dna();
    let text = random_text(&a, 300, 0x4EA7);
    let s = Spine::build(a.clone(), &text).unwrap();
    let mut heat = Heatmap::new(text.len());
    let pats = patterns_for(&a, &text, 11);
    for p in &pats {
        heat.add(&s.explain(p));
    }
    assert_eq!(heat.traces(), pats.len() as u64);
    let total: u64 = heat.node_visits().iter().sum();
    let bucket_total: u64 = heat.bucketed(7).iter().map(|&(_, _, v)| v).sum();
    let page_total: u64 = heat.page_visits(64).iter().sum();
    assert_eq!(total, bucket_total);
    assert_eq!(total, page_total);
    assert!(heat.node_visits()[0] >= pats.len() as u64, "every trace visits the root");
}

/// Sealed layout v2 packs a *variable* number of records per slotted page,
/// so heat must be attributed through the real node→page mapping, not a
/// fixed `records_per_page` guess: the mapped fold conserves every visit
/// and lands each one on a page the file actually contains.
#[test]
fn heatmap_page_attribution_follows_sealed_layout() {
    let a = Alphabet::dna();
    let text = random_text(&a, 3000, 0xD15C);
    let sealed = DiskSpine::build_sealed(
        a.clone(),
        &text,
        Box::new(MemDevice::new()),
        8,
        Box::<Lru>::default(),
    )
    .unwrap();
    let mut heat = Heatmap::new(text.len());
    for p in patterns_for(&a, &text, 23) {
        heat.add(&sealed.explain(&p));
    }
    assert_eq!(heat.dropped_touches(), 0);
    let map = sealed.page_map();
    let by_page = heat.page_visits_mapped(&map);
    let total: u64 = heat.node_visits().iter().sum();
    assert_eq!(by_page.values().sum::<u64>(), total, "mapped fold must conserve visits");
    let file_pages = sealed.file_pages().unwrap();
    for &page in by_page.keys() {
        assert!((page as u64) < file_pages, "page {page} is beyond the {file_pages}-page file");
    }
    // Cross-check against the per-node fold: each node's heat sits on
    // exactly the page the engine would read it from.
    for (node, &v) in heat.node_visits().iter().enumerate() {
        if v > 0 {
            let page = map.page_of(node as u32);
            assert!(by_page[&page] >= v, "node {node}'s heat missing from page {page}");
        }
    }
    // After a clustered re-seal the hottest nodes' heat moves with them to
    // the appended hot tier.
    let mutable =
        DiskSpine::build(a.clone(), &text, Box::new(MemDevice::new()), 32, Box::<Lru>::default())
            .unwrap();
    let hot = HotSet::from_heatmap(&heat, 64);
    let clustered = mutable
        .seal_to_clustered(Box::new(MemDevice::new()), 8, Box::<Lru>::default(), &hot)
        .unwrap();
    assert!(clustered.hot_tier_pages() > 0);
    let cmap = clustered.page_map();
    let cby = heat.page_visits_mapped(&cmap);
    assert_eq!(cby.values().sum::<u64>(), total, "clustered fold must conserve visits");
    let tier_start = clustered.file_pages().unwrap() - clustered.hot_tier_pages() as u64;
    let hottest = hot.nodes().next().unwrap();
    assert!(
        cmap.page_of(hottest) as u64 >= tier_start,
        "hottest node's heat must be attributed to the hot tier"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// §4 invariant: a vertebra out of node `i` arrives at `i + 1`, so no
    /// traced walk ever names a vertebra past `text_len - 1` — the arrival
    /// touch `node + 1` stays inside the heatmap's `text_len + 1` slots and
    /// nothing is dropped.
    #[test]
    fn vertebra_arrivals_stay_in_range(len in 1usize..160, seed in 0u64..1 << 48) {
        let a = Alphabet::dna();
        let text = random_text(&a, len, seed);
        let s = Spine::build(a.clone(), &text).unwrap();
        let mut heat = Heatmap::new(text.len());
        for pattern in patterns_for(&a, &text, seed ^ 0xF1E1D) {
            let t = s.explain(&pattern);
            for e in t.structural_events() {
                if let TraceEvent::Vertebra { node, .. } = e {
                    prop_assert!(
                        (node as usize) < t.text_len,
                        "vertebra out of node {node} on a {}-char backbone",
                        t.text_len
                    );
                }
            }
            heat.add(&t);
        }
        prop_assert_eq!(heat.dropped_touches(), 0);
    }
}
