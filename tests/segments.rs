//! Integration suite for the crash-safe segment store
//! ([`spine::SegmentedSpine`]): snapshot stability under concurrent
//! merges, engine-level serving with the ledger invariant intact while a
//! background merger compacts, and recovery landing on committed state.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use spine::engine::{EngineConfig, QueryEngine};
use spine::{spawn_merger, QueryOutcome, SegmentConfig, SegmentedSpine};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use strindex::{Alphabet, Code};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spine-it-segments-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn enc(a: &Alphabet, s: &[u8]) -> Vec<Code> {
    a.encode(s).unwrap()
}

/// Naive per-document scan, the oracle every store answer is checked
/// against.
fn oracle(docs: &BTreeMap<u64, Vec<Code>>, pattern: &[Code]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (&id, d) in docs {
        if pattern.is_empty() {
            out.extend((0..=d.len()).map(|off| (id as usize, off)));
        } else if pattern.len() <= d.len() {
            out.extend(
                (0..=d.len() - pattern.len())
                    .filter(|&i| &d[i..i + pattern.len()] == pattern)
                    .map(|off| (id as usize, off)),
            );
        }
    }
    out
}

fn matches_of(store: &SegmentedSpine, pattern: &[Code]) -> Vec<(usize, usize)> {
    store.try_find_all(pattern).unwrap().into_iter().map(|m| (m.doc, m.offset)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot reads are stable while a concurrent merge commits: a reader
    /// hammering the store must see oracle-exact answers on every single
    /// query, before, during, and after the merge replaces every segment
    /// file. (Old snapshots keep answering because open descriptors outlive
    /// the unlinked segment files.)
    #[test]
    fn reads_are_stable_across_a_concurrent_merge(seed in 0u64..1 << 32) {
        let a = Alphabet::dna();
        let dir = tmpdir(&format!("stable-{seed}"));
        let cfg = SegmentConfig {
            memtable_max_symbols: usize::MAX,
            pool_pages: 4,
            merge_min_segments: 2,
            ..Default::default()
        };
        let store = Arc::new(SegmentedSpine::create(a.clone(), &dir, cfg).unwrap());

        // A few sealed segments plus one tombstone, so the merge has real
        // work: reconstructing, rewriting, and deleting files.
        let mut docs = BTreeMap::new();
        let texts: [&[u8]; 6] =
            [b"ACGTACGT", b"GGGG", b"", b"A", b"TTACGTTA", b"CACACACA"];
        for (i, t) in texts.iter().enumerate() {
            let id = store.add_document(&enc(&a, t)).unwrap();
            docs.insert(id, enc(&a, t));
            if i % 2 == 1 {
                store.force_seal().unwrap();
            }
        }
        store.force_seal().unwrap();
        let victim = 1 + (seed % 4); // one of the sealed docs
        store.retire_document(victim).unwrap();
        docs.remove(&victim);
        prop_assert!(store.stats().segments >= 2);

        let probes: Vec<Vec<Code>> = vec![
            enc(&a, b"ACGT"),
            enc(&a, b"CA"),
            enc(&a, b"GGGG"),
            enc(&a, b"A"),
            Vec::new(),
        ];
        let expected: Vec<Vec<(usize, usize)>> =
            probes.iter().map(|p| oracle(&docs, p)).collect();

        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let store = Arc::clone(&store);
            let probes = probes.clone();
            let expected = expected.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) || reads == 0 {
                    for (p, want) in probes.iter().zip(&expected) {
                        let got = matches_of(&store, p);
                        if &got != want {
                            return Err(format!("pattern {p:?}: got {got:?}, want {want:?}"));
                        }
                        reads += 1;
                    }
                }
                Ok(reads)
            })
        };

        let epoch_before = store.epoch();
        prop_assert!(store.merge_once().unwrap(), "merge had work to do");
        stop.store(true, Ordering::Relaxed);
        let reads = reader.join().unwrap().map_err(TestCaseError::fail)?;
        prop_assert!(reads > 0);

        // The merge committed: one segment, no tombstones, same answers.
        prop_assert!(store.epoch() > epoch_before);
        let s = store.stats();
        prop_assert_eq!(s.segments, 1);
        prop_assert_eq!(s.tombstones, 0);
        for (p, want) in probes.iter().zip(&expected) {
            prop_assert_eq!(&matches_of(&store, p), want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Concurrent add/retire/query through the full [`QueryEngine`] surface
/// while a background merger compacts: every answer matches some consistent
/// snapshot, and the engine's ledger invariant
/// (`completed + shed + timed_out + failed == submitted`) holds throughout.
#[test]
fn engine_ledger_holds_under_mutation_and_background_merge() {
    let a = Alphabet::dna();
    let dir = tmpdir("engine");
    let cfg = SegmentConfig {
        memtable_max_symbols: 64,
        pool_pages: 4,
        merge_min_segments: 2,
        ..Default::default()
    };
    let store = Arc::new(SegmentedSpine::create(a.clone(), &dir, cfg).unwrap());
    for t in [&b"ACGTACGTAC"[..], b"GGGGTTTT", b"CACACACA"] {
        store.add_document(&enc(&a, t)).unwrap();
    }
    store.force_seal().unwrap();

    let merger = spawn_merger(Arc::clone(&store), Duration::from_millis(1));
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        EngineConfig { workers: 3, batch_max: 8, ..Default::default() },
    ));

    // Writer: a stream of adds and retires racing the query traffic.
    let writer = {
        let store = Arc::clone(&store);
        let a = a.clone();
        std::thread::spawn(move || {
            let mut ids = Vec::new();
            for i in 0..60u64 {
                let t: &[u8] = [&b"ACGT"[..], b"TTTT", b"", b"CAGTCAGT"][i as usize % 4];
                ids.push(store.add_document(&enc(&a, t)).unwrap());
                if i % 3 == 0 {
                    let victim = ids[ids.len() / 2];
                    store.retire_document(victim).unwrap();
                }
                if i % 10 == 9 {
                    store.force_seal().unwrap();
                }
            }
        })
    };

    let probes: [&[u8]; 4] = [b"ACGT", b"CA", b"GGGG", b"TT"];
    let mut submitted = 0u64;
    for round in 0..40 {
        let p = enc(&a, probes[round % probes.len()]);
        engine.submit(p).unwrap();
        submitted += 1;
    }
    writer.join().unwrap();
    let results = engine.drain();
    assert_eq!(results.len() as u64, submitted);
    for r in &results {
        match &r.outcome {
            QueryOutcome::DoneDocs(ms) => {
                // Matches are (doc, offset)-sorted and tombstone-filtered;
                // exact content depends on which snapshot the worker took.
                let mut sorted = ms.clone();
                sorted.sort();
                assert_eq!(&sorted, ms, "matches arrive sorted");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let m = engine.metrics();
    assert!(m.is_consistent(), "ledger broken: {m:?}");
    assert_eq!(m.completed, submitted);

    merger.stop();
    // Everything the writer left behind is still queryable after recovery.
    store.force_seal().unwrap();
    let live = store.live_doc_ids();
    drop(engine);
    let store2 = SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()).unwrap();
    assert_eq!(store2.live_doc_ids(), live);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Orphan hygiene end to end: a crash-simulating stray file is detected at
/// recovery, reported through stats, and removable via `cleanup_orphans`.
#[test]
fn recovery_reports_and_cleans_orphans() {
    let a = Alphabet::dna();
    let dir = tmpdir("orphan");
    {
        let store = SegmentedSpine::create(a.clone(), &dir, SegmentConfig::default()).unwrap();
        store.add_document(&enc(&a, b"ACGT")).unwrap();
        store.force_seal().unwrap();
    }
    std::fs::write(dir.join("seg-7.pages"), b"torn seal, never committed").unwrap();
    std::fs::write(dir.join("MANIFEST.tmp"), b"torn commit").unwrap();

    let store = SegmentedSpine::open(a.clone(), &dir, SegmentConfig::default()).unwrap();
    assert_eq!(store.orphan_count(), 2);
    assert_eq!(matches_of(&store, &enc(&a, b"ACGT")), vec![(0, 0)]);
    assert_eq!(store.cleanup_orphans().unwrap(), 2);
    assert_eq!(store.orphan_count(), 0);
    assert!(!dir.join("seg-7.pages").exists());
    assert!(!dir.join("MANIFEST.tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sealed segments pin their hottest backbone-prefix pages at build *and*
/// at recovery, and report them through the `segments.hot_pinned` gauge.
/// With pinning disabled the gauge stays at zero.
#[test]
fn segments_pin_hot_pages_and_report_the_gauge() {
    use spine::telemetry::MetricsRegistry;

    let a = Alphabet::dna();
    let dir = tmpdir("hotpin");
    let cfg = SegmentConfig {
        memtable_max_symbols: 64,
        pool_pages: 8,
        merge_min_segments: 8, // keep both segments alive
        hot_pin_pages: 2,
        ..Default::default()
    };
    let store = SegmentedSpine::create(a.clone(), &dir, cfg.clone()).unwrap();
    let registry = MetricsRegistry::new();
    store.attach_telemetry(&registry);
    let doc = enc(&a, &b"AACCACAACAGGTTACGACGACCA".repeat(8));
    store.add_document(&doc).unwrap();
    store.force_seal().unwrap();
    store.add_document(&doc).unwrap();
    store.force_seal().unwrap();

    let pinned = registry.snapshot().gauge("segments.hot_pinned").unwrap();
    assert!(pinned >= 2, "two sealed segments must pin pages, gauge says {pinned}");
    assert!(
        pinned <= 2 * cfg.hot_pin_pages as u64,
        "pinning must respect the per-segment budget, gauge says {pinned}"
    );
    // Pinning is invisible to answers.
    assert_eq!(matches_of(&store, &enc(&a, b"GGTTACG")).len(), 16);
    drop(store);

    // Recovery re-pins from the manifest alone.
    let store = SegmentedSpine::open(a.clone(), &dir, cfg.clone()).unwrap();
    let registry = MetricsRegistry::new();
    store.attach_telemetry(&registry);
    store.force_seal().unwrap(); // refresh stats via a no-op seal
    let repinned = registry.snapshot().gauge("segments.hot_pinned").unwrap();
    assert!(repinned >= 2, "recovered segments must re-pin, gauge says {repinned}");
    drop(store);

    // With the knob off, nothing pins.
    let dir2 = tmpdir("hotpin-off");
    let store = SegmentedSpine::create(
        a.clone(),
        &dir2,
        SegmentConfig { hot_pin_pages: 0, memtable_max_symbols: 64, ..Default::default() },
    )
    .unwrap();
    let registry = MetricsRegistry::new();
    store.attach_telemetry(&registry);
    store.add_document(&doc).unwrap();
    store.force_seal().unwrap();
    assert_eq!(registry.snapshot().gauge("segments.hot_pinned"), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
