//! BuildStats ↔ structure reconciliation, property-tested.
//!
//! The build observer's counters are only trustworthy if they agree with
//! the finished index — every rib the observer saw created must be present
//! (SPINE never deletes ribs), every link event must correspond to a node,
//! and the CASE 1–4 dispositions must partition the insertions. This suite
//! pins those invariants over random DNA / protein / raw-byte texts
//! (including the empty and single-character edge cases) and checks that
//! the representation-independent counts are identical between the
//! reference and compact engines.

use genseq::rng;
use proptest::prelude::*;
use rand::Rng;
use spine::{BuildStats, CompactSpine, Spine};
use strindex::{Alphabet, Code};

fn random_text(a: &Alphabet, len: usize, seed: u64) -> Vec<Code> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(0..a.size()) as Code).collect()
}

/// Build `text` with the observer attached and check every reconciliation
/// invariant against the reference engine's explicit structure.
fn reconcile(a: &Alphabet, text: &[Code]) -> (Spine, BuildStats) {
    let (s, st) = Spine::build_with_stats(a.clone(), text).unwrap();

    // Dispositions partition the insertions; links fire once each.
    assert_eq!(st.insertions as usize, text.len(), "one insertion per character");
    assert_eq!(st.dispositions(), st.insertions, "CASE counts must sum to insertions");
    assert_eq!(st.links_set, st.insertions, "exactly one link per insertion");
    assert_eq!(st.first_char, u64::from(!text.is_empty()), "FirstChar fires for text[0] only");

    // Structural counts: ribs are never deleted, extribs only appended.
    let nodes = s.nodes();
    let ribs_present: u64 = nodes.iter().map(|n| n.ribs.len() as u64).sum();
    let extribs_present: u64 = nodes.iter().map(|n| n.extribs.len() as u64).sum();
    assert_eq!(st.ribs_absorbed, 0, "APPEND cannot absorb ribs");
    assert_eq!(st.ribs_created - st.ribs_absorbed, ribs_present, "ribs created vs present");
    assert_eq!(st.extribs_created, extribs_present, "extribs created vs present");
    assert_eq!(st.extrib_spills, 0, "the in-memory layout never spills");

    // Link labels: positive-LEL links and the maximum agree with the nodes.
    let positive_lel = nodes.iter().filter(|n| n.lel > 0).count() as u64;
    let max_lel = nodes.iter().map(|n| n.lel).max().unwrap_or(0);
    assert_eq!(st.links_with_positive_lel, positive_lel, "links with LEL > 0");
    assert_eq!(st.max_lel, max_lel, "maximum LEL");

    // CASE 3 creates ribs; CASE 4 creates extribs, one each per disposition.
    assert_eq!(st.case4_extrib, st.extribs_created, "one extrib per CASE 4 creation");
    assert!(st.ribs_created >= st.case3_root, "CASE 3 walks create at least one rib each");

    // Memory accounting covers every node (Code is one byte per vertebra).
    assert_eq!(st.mem.vertebrae as usize, text.len() + 1, "one vertebra byte per node");
    assert_eq!(
        st.mem.total(),
        st.mem.vertebrae + st.mem.links + st.mem.ribs + st.mem.extribs,
        "breakdown sums to its total"
    );

    (s, st)
}

/// The compact layout must observe the identical event stream. (Raw-byte
/// alphabets sit out: the compact layout's slot markers cap its code space
/// at 253 symbols.)
fn cross_engine(a: &Alphabet, text: &[Code], reference: &BuildStats) {
    if a.code_space() >= 254 {
        return;
    }
    let (c, ct) = CompactSpine::build_with_stats(a.clone(), text).unwrap();
    assert_eq!(
        ct.counts(),
        reference.counts(),
        "compact engine's event counts diverge from the reference engine"
    );
    assert_eq!(ct.extrib_spills, 0);
    assert_eq!(c.len(), text.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random DNA texts, length 0 upward (0 and 1 are the edge cases the
    /// pinned tests below also cover explicitly).
    #[test]
    fn dna_builds_reconcile(len in 0usize..400, seed in 0u64..1 << 48) {
        let a = Alphabet::dna();
        let text = random_text(&a, len, seed);
        let (_, st) = reconcile(&a, &text);
        cross_engine(&a, &text, &st);
    }

    /// Random protein texts (20-symbol alphabet).
    #[test]
    fn protein_builds_reconcile(len in 0usize..250, seed in 0u64..1 << 48) {
        let a = Alphabet::protein();
        let text = random_text(&a, len, seed);
        let (_, st) = reconcile(&a, &text);
        cross_engine(&a, &text, &st);
    }

    /// Random raw-byte texts (256 symbols).
    #[test]
    fn byte_builds_reconcile(len in 0usize..150, seed in 0u64..1 << 48) {
        let a = Alphabet::bytes();
        let text = random_text(&a, len, seed);
        let (_, st) = reconcile(&a, &text);
        cross_engine(&a, &text, &st);
    }
}

/// The degenerate texts, pinned explicitly rather than left to chance.
#[test]
fn empty_and_single_character_texts_reconcile() {
    for a in [Alphabet::dna(), Alphabet::protein(), Alphabet::bytes()] {
        let (_, st) = reconcile(&a, &[]);
        assert_eq!(st.insertions, 0);
        assert_eq!(st.counts(), BuildStats::default().counts(), "empty build counts nothing");
        cross_engine(&a, &[], &st);

        let (_, st) = reconcile(&a, &[0]);
        assert_eq!(st.insertions, 1);
        assert_eq!(st.first_char, 1);
        assert_eq!(st.ribs_created, 0, "a single character creates no ribs");
        assert_eq!(st.max_lel, 0);
        cross_engine(&a, &[0], &st);
    }
}

/// The paper's running example, reconciled through the public test API the
/// same way random texts are (the exact expected counts live in the spine
/// crate's unit tests).
#[test]
fn paper_example_reconciles_across_engines() {
    let a = Alphabet::dna();
    let text = a.encode(b"AACCACAACA").unwrap();
    let (s, st) = reconcile(&a, &text);
    cross_engine(&a, &text, &st);
    assert_eq!(st.insertions, 10);
    assert_eq!(st.ribs_created, 4);
    assert_eq!(st.extribs_created, 2);
    assert_eq!(st.max_lel, 3);
    assert_eq!(s.len(), 10);
}
