//! Telemetry invariants, machine-checked across the stack:
//!
//! * histogram bucket containment and ≤25 % width on randomized values;
//! * quantile monotonicity and the `quantile ≤ max` cap;
//! * span-ring wraparound keeping exactly the newest `capacity` spans;
//! * the differential stage-timing check — a real single-worker engine's
//!   busy-stage time never exceeds the run's wall time.

use std::sync::Arc;
use std::time::Instant;

use proptest::prelude::*;
use spine::engine::{EngineConfig, QueryEngine};
use spine::telemetry::{Histogram, MetricsRegistry, Stage, DEFAULT_SPAN_CAPACITY};
use spine::Spine;
use strindex::{Alphabet, Code};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket that contains it, and that bucket is
    /// never wider than 25 % of its lower bound (plus one for the integer
    /// floor) — the error bound all quantile estimates inherit.
    #[test]
    fn bucket_contains_value_within_width_bound(v in 0u64..=u64::MAX) {
        let i = Histogram::bucket_index(v);
        let (lo, hi) = Histogram::bucket_range(i);
        prop_assert!(lo <= v && v <= hi, "value {} outside bucket {} [{}, {}]", v, i, lo, hi);
        prop_assert!(
            hi as f64 <= lo as f64 * 1.25 + 1.0,
            "bucket {} too wide: [{}, {}]", i, lo, hi
        );
    }

    /// Quantiles are monotone in `q`, bracketed by the recorded extremes,
    /// and capped by the exact max.
    #[test]
    fn quantiles_monotone_and_capped(values in prop::collection::vec(0u64..1 << 40, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record_value(v);
        }
        let s = h.snapshot();
        let mut values = values;
        values.sort_unstable();
        let max = *values.last().unwrap();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max, max);
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        for &q in &qs {
            prop_assert!(q <= max, "quantile {} exceeds max {}", q, max);
        }
        // The median is within the bucket error bound of the true median.
        let true_med = values[values.len() / 2];
        prop_assert!(
            s.quantile(0.5) as f64 <= true_med as f64 * 1.25 + 1.0
                || s.quantile(0.5) <= true_med,
            "p50 {} far above true median {}", s.quantile(0.5), true_med
        );
    }
}

#[test]
fn span_ring_wraps_keeping_newest() {
    let cap = 8;
    let reg = MetricsRegistry::with_span_capacity(cap);
    let epoch = reg.epoch();
    for i in 0..3 * cap {
        reg.record_span(format!("span{i}"), epoch, std::time::Duration::from_micros(i as u64));
    }
    let snap = reg.snapshot();
    assert_eq!(snap.spans_recorded, (3 * cap) as u64);
    assert_eq!(snap.span_capacity, cap);
    assert_eq!(snap.spans.len(), cap);
    // Oldest-first, and exactly the last `cap` spans survive.
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    let expect: Vec<String> = (2 * cap..3 * cap).map(|i| format!("span{i}")).collect();
    assert_eq!(names, expect.iter().map(String::as_str).collect::<Vec<_>>());

    let default = MetricsRegistry::new();
    default.record_span("only", default.epoch(), std::time::Duration::from_micros(1));
    assert_eq!(default.snapshot().span_capacity, DEFAULT_SPAN_CAPACITY);
}

/// The differential check behind `exp serve --metrics`: with ONE worker, the
/// busy stages (batch formation, index scan, result merge) are strictly
/// sequential segments of that worker's life, so their recorded sum must be
/// bounded by the whole run's wall time.
#[test]
fn single_worker_busy_stages_bounded_by_wall_time() {
    let a = Alphabet::dna();
    let text: Vec<Code> = (0..20_000u64).map(|i| ((i * i / 7 + i / 11) % 4) as Code).collect();
    let index = Arc::new(Spine::build(a, &text).unwrap());
    let patterns: Vec<Vec<Code>> =
        (0..300).map(|i| text[i * 61 % (text.len() - 16)..][..8 + i % 8].to_vec()).collect();

    let registry = Arc::new(MetricsRegistry::new());
    let cfg = EngineConfig { workers: 1, batch_max: 16, ..Default::default() };
    let engine = QueryEngine::with_telemetry(index, cfg, Arc::clone(&registry));

    let start = Instant::now();
    for r in engine.submit_batch(patterns.iter().cloned()) {
        r.unwrap();
    }
    let results = engine.drain();
    let wall = start.elapsed().as_secs_f64();

    assert_eq!(results.len(), patterns.len());
    let m = engine.metrics();
    assert!(m.is_consistent(), "ledger invariant violated: {m:?}");

    let snap = registry.snapshot();
    let busy = snap.busy_stage_seconds();
    assert!(busy > 0.0, "no stage time recorded");
    // 1 worker × wall, with a little slack for timer-read skew at the edges.
    assert!(
        busy <= wall * 1.05 + 0.001,
        "busy stages {busy:.6}s exceed single-worker wall {wall:.6}s"
    );
    // Each busy stage individually recorded work.
    for stage in [Stage::BatchFormation, Stage::IndexScan, Stage::ResultMerge] {
        assert!(
            !snap.stage(stage).expect("stage registered").is_empty(),
            "no samples for {}",
            stage.metric_name()
        );
    }
}

// ---------------------------------------------------------------------------
// Exporter schemas. A minimal JSON value parser (strings with escapes,
// numbers, objects, arrays, literals) keeps the assertions structural: the
// Chrome trace must PARSE, not merely look plausible, and adversarial span
// names must survive the round trip.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut at = 0;
    let v = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing garbage at byte {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *at += 1;
            let mut fields = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, at);
                let Json::Str(key) = parse_value(b, at)? else {
                    return Err(format!("non-string object key at byte {at}"));
                };
                skip_ws(b, at);
                if b.get(*at) != Some(&b':') {
                    return Err(format!("expected ':' at byte {at}"));
                }
                *at += 1;
                fields.push((key, parse_value(b, at)?));
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {at}")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {at}")),
                }
            }
        }
        Some(b'"') => {
            *at += 1;
            let mut s = String::new();
            loop {
                match b.get(*at) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *at += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *at += 1;
                        match b.get(*at) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b.get(*at + 1..*at + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                                *at += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *at += 1;
                    }
                    Some(&c) if c < 0x20 => {
                        return Err(format!("raw control byte {c:#x} in string"))
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid).
                        let rest = std::str::from_utf8(&b[*at..]).map_err(|e| e.to_string())?;
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        *at += ch.len_utf8();
                    }
                }
            }
        }
        Some(_) => {
            let start = *at;
            while *at < b.len()
                && !matches!(b[*at], b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r')
            {
                *at += 1;
            }
            let tok = std::str::from_utf8(&b[start..*at]).map_err(|e| e.to_string())?;
            match tok {
                "null" => Ok(Json::Null),
                "true" => Ok(Json::Bool(true)),
                "false" => Ok(Json::Bool(false)),
                _ => tok
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad literal {tok:?} at byte {start}")),
            }
        }
    }
}

/// The Chrome `trace_event` export parses as JSON and matches the format's
/// schema: a `traceEvents` array whose complete events (`ph:"X"`) carry
/// name/cat/ts/dur/pid/tid, with engine span names intact.
#[test]
fn chrome_trace_export_matches_schema() {
    let reg = MetricsRegistry::new();
    let epoch = reg.epoch();
    reg.record_span("q1", epoch, std::time::Duration::from_micros(40));
    reg.record_span("w2.batch", epoch, std::time::Duration::from_micros(75));
    reg.record_span("flush", epoch, std::time::Duration::from_micros(5));
    let doc = parse_json(&reg.snapshot().to_chrome_trace()).expect("chrome trace must parse");

    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    // Metadata event first, then the three spans.
    assert_eq!(events.len(), 4);
    assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
    let mut names = Vec::new();
    for e in &events[1..] {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "span events are complete");
        assert_eq!(e.get("cat").and_then(Json::as_str), Some("span"));
        for field in ["ts", "dur", "pid", "tid"] {
            let v = e.get(field).and_then(Json::as_num);
            assert!(v.is_some_and(|n| n >= 0.0), "missing numeric {field}: {e:?}");
        }
        names.push(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(names, ["q1", "w2.batch", "flush"]);
    // Query and worker spans land on different tracks.
    assert_ne!(events[1].get("tid"), events[2].get("tid"));
}

/// Adversarial span names — quotes, backslashes, newlines, control bytes —
/// survive both JSON exporters: the documents still parse and the decoded
/// names are byte-identical to the originals.
#[test]
fn adversarial_span_names_round_trip_through_exporters() {
    let evil = ["q\"uote", "back\\slash", "new\nline", "ctl\u{1}\u{1f}", "tab\tbell\u{7}"];
    let reg = MetricsRegistry::new();
    let epoch = reg.epoch();
    for (i, name) in evil.iter().enumerate() {
        reg.record_span(*name, epoch, std::time::Duration::from_micros(i as u64 + 1));
    }
    let snap = reg.snapshot();

    for (tag, text) in [("registry", snap.to_json()), ("chrome", snap.to_chrome_trace())] {
        let doc = parse_json(&text).unwrap_or_else(|e| panic!("{tag} export must parse: {e}"));
        let events = match tag {
            "registry" => doc.get("spans").and_then(|s| s.get("events")),
            _ => doc.get("traceEvents"),
        };
        let Some(Json::Arr(events)) = events else {
            panic!("{tag}: span event array missing");
        };
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .map(|e| e.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(names, evil, "{tag}: span names mangled");
    }
}
