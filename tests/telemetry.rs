//! Telemetry invariants, machine-checked across the stack:
//!
//! * histogram bucket containment and ≤25 % width on randomized values;
//! * quantile monotonicity and the `quantile ≤ max` cap;
//! * span-ring wraparound keeping exactly the newest `capacity` spans;
//! * the differential stage-timing check — a real single-worker engine's
//!   busy-stage time never exceeds the run's wall time.

use std::sync::Arc;
use std::time::Instant;

use proptest::prelude::*;
use spine::engine::{EngineConfig, QueryEngine};
use spine::telemetry::{Histogram, MetricsRegistry, Stage, DEFAULT_SPAN_CAPACITY};
use spine::Spine;
use strindex::{Alphabet, Code};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket that contains it, and that bucket is
    /// never wider than 25 % of its lower bound (plus one for the integer
    /// floor) — the error bound all quantile estimates inherit.
    #[test]
    fn bucket_contains_value_within_width_bound(v in 0u64..=u64::MAX) {
        let i = Histogram::bucket_index(v);
        let (lo, hi) = Histogram::bucket_range(i);
        prop_assert!(lo <= v && v <= hi, "value {} outside bucket {} [{}, {}]", v, i, lo, hi);
        prop_assert!(
            hi as f64 <= lo as f64 * 1.25 + 1.0,
            "bucket {} too wide: [{}, {}]", i, lo, hi
        );
    }

    /// Quantiles are monotone in `q`, bracketed by the recorded extremes,
    /// and capped by the exact max.
    #[test]
    fn quantiles_monotone_and_capped(values in prop::collection::vec(0u64..1 << 40, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record_value(v);
        }
        let s = h.snapshot();
        let mut values = values;
        values.sort_unstable();
        let max = *values.last().unwrap();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max, max);
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        for &q in &qs {
            prop_assert!(q <= max, "quantile {} exceeds max {}", q, max);
        }
        // The median is within the bucket error bound of the true median.
        let true_med = values[values.len() / 2];
        prop_assert!(
            s.quantile(0.5) as f64 <= true_med as f64 * 1.25 + 1.0
                || s.quantile(0.5) <= true_med,
            "p50 {} far above true median {}", s.quantile(0.5), true_med
        );
    }
}

#[test]
fn span_ring_wraps_keeping_newest() {
    let cap = 8;
    let reg = MetricsRegistry::with_span_capacity(cap);
    let epoch = reg.epoch();
    for i in 0..3 * cap {
        reg.record_span(format!("span{i}"), epoch, std::time::Duration::from_micros(i as u64));
    }
    let snap = reg.snapshot();
    assert_eq!(snap.spans_recorded, (3 * cap) as u64);
    assert_eq!(snap.span_capacity, cap);
    assert_eq!(snap.spans.len(), cap);
    // Oldest-first, and exactly the last `cap` spans survive.
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    let expect: Vec<String> = (2 * cap..3 * cap).map(|i| format!("span{i}")).collect();
    assert_eq!(names, expect.iter().map(String::as_str).collect::<Vec<_>>());

    let default = MetricsRegistry::new();
    default.record_span("only", default.epoch(), std::time::Duration::from_micros(1));
    assert_eq!(default.snapshot().span_capacity, DEFAULT_SPAN_CAPACITY);
}

/// The differential check behind `exp serve --metrics`: with ONE worker, the
/// busy stages (batch formation, index scan, result merge) are strictly
/// sequential segments of that worker's life, so their recorded sum must be
/// bounded by the whole run's wall time.
#[test]
fn single_worker_busy_stages_bounded_by_wall_time() {
    let a = Alphabet::dna();
    let text: Vec<Code> = (0..20_000u64).map(|i| ((i * i / 7 + i / 11) % 4) as Code).collect();
    let index = Arc::new(Spine::build(a, &text).unwrap());
    let patterns: Vec<Vec<Code>> =
        (0..300).map(|i| text[i * 61 % (text.len() - 16)..][..8 + i % 8].to_vec()).collect();

    let registry = Arc::new(MetricsRegistry::new());
    let cfg = EngineConfig { workers: 1, batch_max: 16, ..Default::default() };
    let engine = QueryEngine::with_telemetry(index, cfg, Arc::clone(&registry));

    let start = Instant::now();
    for r in engine.submit_batch(patterns.iter().cloned()) {
        r.unwrap();
    }
    let results = engine.drain();
    let wall = start.elapsed().as_secs_f64();

    assert_eq!(results.len(), patterns.len());
    let m = engine.metrics();
    assert!(m.is_consistent(), "ledger invariant violated: {m:?}");

    let snap = registry.snapshot();
    let busy = snap.busy_stage_seconds();
    assert!(busy > 0.0, "no stage time recorded");
    // 1 worker × wall, with a little slack for timer-read skew at the edges.
    assert!(
        busy <= wall * 1.05 + 0.001,
        "busy stages {busy:.6}s exceed single-worker wall {wall:.6}s"
    );
    // Each busy stage individually recorded work.
    for stage in [Stage::BatchFormation, Stage::IndexScan, Stage::ResultMerge] {
        assert!(
            !snap.stage(stage).expect("stage registered").is_empty(),
            "no samples for {}",
            stage.metric_name()
        );
    }
}
