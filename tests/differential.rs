//! Cross-engine differential tests.
//!
//! Every index engine in the workspace implements the same
//! [`StringIndex`] / [`MatchingIndex`] contracts, so for any text and any
//! pattern they must produce *identical* answers. This suite generates
//! random texts and patterns over the DNA, protein, and raw-byte alphabets
//! (including empty and length-1 texts) and checks
//!
//! * `contains` / `find_first` / `find_all`, and
//! * `matching_statistics` / `maximal_matches`
//!
//! across the reference SPINE, the §5 compact layout, the page-resident
//! disk engine, the suffix tree, the suffix array, and the naive-scan
//! oracle — plus the generalized (multi-document) SPINE against a per-
//! document scan.

use genseq::rng;
use pagestore::{Lru, MemDevice};
use rand::Rng;
use spine::{CompactSpine, DiskSpine, GeneralizedSpine, Spine};
use strindex::{Alphabet, Code, MatchingIndex, StringIndex};
use suffix_array::SaIndex;
use suffix_tree::SuffixTree;
use suffix_trie::NaiveIndex;

/// Every single-string engine in the workspace, built over one text. The
/// compact layout caps alphabets at 253 symbols (slot kinds 0xFE/0xFF are
/// markers), so it sits out for the raw-bytes alphabet.
fn engines(a: &Alphabet, text: &[Code]) -> Vec<(&'static str, Box<dyn MatchingIndex>)> {
    let mut built: Vec<(&'static str, Box<dyn MatchingIndex>)> =
        vec![("spine", Box::new(Spine::build(a.clone(), text).unwrap()))];
    if a.code_space() < 0xFE {
        built.push(("compact-spine", Box::new(CompactSpine::build(a.clone(), text).unwrap())));
    }
    built.push((
        "disk-spine",
        Box::new(
            DiskSpine::build(
                a.clone(),
                text,
                Box::new(MemDevice::new()),
                32,
                Box::<Lru>::default(),
            )
            .unwrap(),
        ),
    ));
    // The sealed layout-v2 engine (varint records, packed backbone where the
    // alphabet allows), served under a deliberately tiny pool so every
    // answer crosses real page boundaries.
    built.push((
        "disk-spine-v2",
        Box::new(
            DiskSpine::build_sealed(
                a.clone(),
                text,
                Box::new(MemDevice::new()),
                4,
                Box::<Lru>::default(),
            )
            .unwrap(),
        ),
    ));
    built.push(("suffix-tree", Box::new(SuffixTree::build(a.clone(), text).unwrap())));
    built.push(("suffix-array", Box::new(SaIndex::build(a.clone(), text))));
    built.push(("naive-oracle", Box::new(NaiveIndex::new(a.clone(), text))));
    built
}

/// Straight-line scan, independent of every engine under test.
fn scan_find_all(text: &[Code], pattern: &[Code]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len()).filter(|&i| &text[i..i + pattern.len()] == pattern).collect()
}

fn random_text(a: &Alphabet, len: usize, seed: u64) -> Vec<Code> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(0..a.size()) as Code).collect()
}

/// Mix of present and absent patterns for a text: substrings at random
/// positions, random strings, single symbols, and the whole text.
fn patterns_for(a: &Alphabet, text: &[Code], seed: u64) -> Vec<Vec<Code>> {
    let mut r = rng(seed ^ 0x9e37_79b9);
    let mut pats: Vec<Vec<Code>> = Vec::new();
    for _ in 0..12 {
        if !text.is_empty() {
            let len = r.gen_range(1..=text.len().min(12));
            let at = r.gen_range(0..=text.len() - len);
            pats.push(text[at..at + len].to_vec());
        }
        let len = r.gen_range(1..=8usize);
        pats.push((0..len).map(|_| r.gen_range(0..a.size()) as Code).collect());
    }
    pats.push(vec![0]);
    pats.push(vec![(a.size() - 1) as Code]);
    if !text.is_empty() {
        pats.push(text.to_vec());
    }
    pats
}

fn check_text(a: &Alphabet, text: &[Code], seed: u64) {
    let built = engines(a, text);
    for pattern in patterns_for(a, text, seed) {
        let expected = scan_find_all(text, &pattern);
        for (name, e) in &built {
            assert_eq!(
                e.find_all(&pattern),
                expected,
                "{name}: find_all, text len {}, pattern {pattern:?}",
                text.len()
            );
            assert_eq!(
                e.find_first(&pattern),
                expected.first().copied(),
                "{name}: find_first, pattern {pattern:?}"
            );
            assert_eq!(
                e.contains(&pattern),
                !expected.is_empty(),
                "{name}: contains, pattern {pattern:?}"
            );
        }
    }
}

#[test]
fn dna_random_texts() {
    let a = Alphabet::dna();
    for (i, len) in [0, 1, 2, 7, 64, 500, 1500].into_iter().enumerate() {
        check_text(&a, &random_text(&a, len, 100 + i as u64), 200 + i as u64);
    }
}

#[test]
fn protein_random_texts() {
    let a = Alphabet::protein();
    for (i, len) in [0, 1, 3, 50, 700].into_iter().enumerate() {
        check_text(&a, &random_text(&a, len, 300 + i as u64), 400 + i as u64);
    }
}

#[test]
fn byte_random_texts() {
    let a = Alphabet::bytes();
    for (i, len) in [0, 1, 16, 400].into_iter().enumerate() {
        check_text(&a, &random_text(&a, len, 500 + i as u64), 600 + i as u64);
    }
}

#[test]
fn repetitive_texts_stress_occurrence_scan() {
    // Highly repetitive inputs maximize link fan-in and occurrence counts —
    // the regime where SPINE's backbone scan does the most work.
    let a = Alphabet::dna();
    let mut r = rng(7);
    for period in [1usize, 2, 3, 5] {
        let motif: Vec<Code> = (0..period).map(|_| r.gen_range(0..a.size()) as Code).collect();
        let text: Vec<Code> = motif.iter().copied().cycle().take(600).collect();
        check_text(&a, &text, 700 + period as u64);
    }
}

#[test]
fn matching_statistics_agree() {
    let a = Alphabet::dna();
    for (i, (tlen, qlen)) in
        [(300usize, 80usize), (1000, 200), (1, 5), (40, 1)].into_iter().enumerate()
    {
        let text = random_text(&a, tlen, 800 + i as u64);
        // Half-mutated copy of a text slice: long matches and breaks.
        let mut r = rng(900 + i as u64);
        let mut query: Vec<Code> = (0..qlen)
            .map(|j| {
                if j < text.len() && r.gen_bool(0.7) {
                    text[j % text.len()]
                } else {
                    r.gen_range(0..a.size()) as Code
                }
            })
            .collect();
        if qlen > 2 {
            query[qlen / 2] = (query[qlen / 2] + 1) % a.size() as Code;
        }

        let built = engines(&a, &text);
        let (ref_name, reference) = &built[0];
        let expect_ms = reference.matching_statistics(&query);
        let expect_mm = reference.maximal_matches(&query, 4);
        for (name, e) in &built[1..] {
            assert_eq!(
                e.matching_statistics(&query),
                expect_ms,
                "{name} vs {ref_name}: matching_statistics, case {i}"
            );
            let mut mm = e.maximal_matches(&query, 4);
            let mut expect = expect_mm.clone();
            mm.sort_unstable();
            expect.sort_unstable();
            assert_eq!(mm, expect, "{name} vs {ref_name}: maximal_matches, case {i}");
        }
    }
}

#[test]
fn generalized_matches_per_document_scan() {
    let a = Alphabet::protein();
    let mut r = rng(42);
    let docs: Vec<Vec<Code>> = (0..9)
        .map(|i| {
            let len = [0, 1, 5, 30, 80][i % 5];
            (0..len).map(|_| r.gen_range(0..a.size()) as Code).collect()
        })
        .collect();
    let mut g = GeneralizedSpine::new(a.clone());
    for d in &docs {
        g.add_document(d).unwrap();
    }

    let mut pats: Vec<Vec<Code>> = Vec::new();
    for d in docs.iter().filter(|d| !d.is_empty()) {
        pats.push(d[..d.len().min(3)].to_vec());
        pats.push(d.clone());
    }
    for _ in 0..10 {
        let len = r.gen_range(1..=4usize);
        pats.push((0..len).map(|_| r.gen_range(0..a.size()) as Code).collect());
    }

    for p in &pats {
        let mut expected = Vec::new();
        for (di, d) in docs.iter().enumerate() {
            for off in scan_find_all(d, p) {
                expected.push((di, off));
            }
        }
        let got: Vec<(usize, usize)> =
            g.find_all(p).into_iter().map(|m| (m.doc, m.offset)).collect();
        assert_eq!(got, expected, "generalized find_all, pattern {p:?}");
        let docs_with: Vec<usize> = {
            let mut v: Vec<usize> = expected.iter().map(|&(d, _)| d).collect();
            v.dedup();
            v
        };
        assert_eq!(g.docs_containing(p), docs_with, "docs_containing, pattern {p:?}");
    }
}

#[test]
fn symbol_at_recovers_text_everywhere() {
    let a = Alphabet::dna();
    let text = random_text(&a, 257, 31);
    for (name, e) in engines(&a, &text) {
        assert_eq!(e.text_len(), text.len(), "{name}: text_len");
        for (i, &c) in text.iter().enumerate() {
            assert_eq!(e.symbol_at(i), c, "{name}: symbol_at({i})");
        }
    }
}

/// The hot-page tier is pure mechanism: clustering hot records onto
/// appended pages, pinning them, and prefetching ahead of scans may only
/// move I/O around — never change an answer. Every configuration (plain
/// sealed, clustered, clustered + pinned + prefetched, and a reopened
/// clustered file) must agree with the in-memory reference on every
/// pattern, under a pool small enough that eviction actually happens.
#[test]
fn hot_tier_machinery_changes_no_answers() {
    use spine::{Heatmap, HotSet};

    let a = Alphabet::dna();
    for (i, len) in [60usize, 500, 2000].into_iter().enumerate() {
        let seed = 0x407_71E8 + i as u64;
        let text = random_text(&a, len, seed);
        let reference = Spine::build(a.clone(), &text).unwrap();
        let pats = patterns_for(&a, &text, seed ^ 0xBEEF);

        let mutable = DiskSpine::build(
            a.clone(),
            &text,
            Box::new(MemDevice::new()),
            32,
            Box::<Lru>::default(),
        )
        .unwrap();
        let plain = mutable.seal_to(Box::new(MemDevice::new()), 4, Box::<Lru>::default()).unwrap();

        // Derive a hot set from a real workload over the plain engine.
        let mut heat = Heatmap::new(text.len());
        for p in &pats {
            heat.add(&plain.explain(p));
        }
        let hot = HotSet::from_heatmap(&heat, 48);
        let clustered = mutable
            .seal_to_clustered(Box::new(MemDevice::new()), 4, Box::<Lru>::default(), &hot)
            .unwrap();

        // Persist + reopen the clustered file: the hot index must survive.
        let dir =
            std::env::temp_dir().join(format!("spine-differential-hot-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dev = pagestore::FileDevice::create(dir.join("seg.pages"), false).unwrap();
        let ondisk =
            mutable.seal_to_clustered(Box::new(dev), 4, Box::<Lru>::default(), &hot).unwrap();
        let mut meta = Vec::new();
        ondisk.write_meta(&mut meta).unwrap();
        ondisk.flush().unwrap();
        std::fs::write(dir.join("seg.meta"), &meta).unwrap();
        drop(ondisk);
        let reopened = DiskSpine::reopen(
            &mut std::fs::File::open(dir.join("seg.meta")).unwrap(),
            Box::new(pagestore::FileDevice::open(dir.join("seg.pages"), false).unwrap()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(reopened.hot_tier_pages(), clustered.hot_tier_pages());

        // Pin the hottest pages and warm the pool mid-stream: still pure I/O.
        clustered.pin_hot(&hot, 2).unwrap();
        clustered.prefetch_nodes(&hot.nodes().collect::<Vec<_>>()).unwrap();

        for p in &pats {
            let expected = reference.find_all(p);
            assert_eq!(plain.find_all(p), expected, "plain sealed, len {len}, pattern {p:?}");
            assert_eq!(clustered.find_all(p), expected, "clustered, len {len}, pattern {p:?}");
            assert_eq!(reopened.find_all(p), expected, "reopened, len {len}, pattern {p:?}");
        }
        clustered.unpin_all();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Random add / retire / query interleavings against a naive per-document
/// oracle, driving the crash-safe segment store through its full lifecycle:
/// memtable inserts, threshold seals, explicit seals, tombstones, merges,
/// and one full drop-and-recover at the end. Covers DNA, protein, and raw
/// bytes, including empty and length-1 documents.
#[test]
fn segmented_store_matches_per_document_oracle() {
    use spine::{SegmentConfig, SegmentedSpine};
    use std::collections::BTreeMap;

    fn seg_oracle(docs: &BTreeMap<u64, Vec<Code>>, pattern: &[Code]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (&id, d) in docs {
            if pattern.is_empty() {
                out.extend((0..=d.len()).map(|off| (id as usize, off)));
            } else {
                out.extend(scan_find_all(d, pattern).into_iter().map(|off| (id as usize, off)));
            }
        }
        out
    }

    fn check_all(store: &SegmentedSpine, docs: &BTreeMap<u64, Vec<Code>>, pats: &[Vec<Code>]) {
        let live: Vec<u64> = docs.keys().copied().collect();
        assert_eq!(store.live_doc_ids(), live, "live_doc_ids diverged from oracle");
        for p in pats {
            let got: Vec<(usize, usize)> =
                store.try_find_all(p).unwrap().into_iter().map(|m| (m.doc, m.offset)).collect();
            assert_eq!(got, seg_oracle(docs, p), "segmented find_all, pattern {p:?}");
        }
    }

    for (ai, a) in [Alphabet::dna(), Alphabet::protein(), Alphabet::bytes()].iter().enumerate() {
        let dir = std::env::temp_dir()
            .join(format!("spine-differential-segments-{}-{ai}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A small memtable so threshold seals fire mid-script, and a low
        // merge bar so merges have work.
        let cfg = SegmentConfig {
            memtable_max_symbols: 48,
            pool_pages: 4,
            merge_min_segments: 2,
            ..Default::default()
        };
        let store = SegmentedSpine::create(a.clone(), &dir, cfg.clone()).unwrap();
        let mut oracle: BTreeMap<u64, Vec<Code>> = BTreeMap::new();
        let mut r = rng(0xD1F + ai as u64);

        // Edge documents first: empty and length-1.
        for doc in [vec![], vec![0 as Code]] {
            let id = store.add_document(&doc).unwrap();
            oracle.insert(id, doc);
        }

        for step in 0..120 {
            match r.gen_range(0..10usize) {
                0..=4 => {
                    let len = [0usize, 1, 2, 3, 8, 20][r.gen_range(0..6)];
                    let doc = random_text(a, len, 0xADD + ai as u64 * 1000 + step);
                    let id = store.add_document(&doc).unwrap();
                    oracle.insert(id, doc);
                }
                5 | 6 => {
                    if let Some(&id) = {
                        let keys: Vec<u64> = oracle.keys().copied().collect();
                        keys.get(r.gen_range(0..keys.len().max(1))).copied()
                    }
                    .as_ref()
                    {
                        assert!(store.retire_document(id).unwrap(), "retire of live doc {id}");
                        oracle.remove(&id);
                        // Retiring twice is an idempotent no-op, not an error.
                        assert!(!store.retire_document(id).unwrap());
                    }
                    // Unknown (never-assigned) ids are a typed error.
                    assert!(matches!(
                        store.retire_document(u64::MAX),
                        Err(strindex::Error::UnknownDocument { .. })
                    ));
                }
                7 => {
                    store.force_seal().unwrap();
                }
                8 => {
                    store.merge_once().unwrap();
                }
                _ => {
                    let mut pats: Vec<Vec<Code>> = vec![Vec::new()];
                    for _ in 0..3 {
                        let len = r.gen_range(1..=5usize);
                        pats.push((0..len).map(|_| r.gen_range(0..a.size()) as Code).collect());
                    }
                    // A substring of a live document, when one is long enough.
                    if let Some(d) = oracle.values().find(|d| d.len() >= 2) {
                        let at = r.gen_range(0..d.len() - 1);
                        pats.push(d[at..at + 2].to_vec());
                    }
                    check_all(&store, &oracle, &pats);
                }
            }
        }

        // Seal everything, drop the handle, and recover: the reopened store
        // must answer exactly like the oracle (nothing volatile remains).
        store.force_seal().unwrap();
        drop(store);
        let store = SegmentedSpine::open(a.clone(), &dir, cfg).unwrap();
        let pats: Vec<Vec<Code>> = std::iter::once(Vec::new())
            .chain((0..8).map(|i| random_text(a, 1 + i % 4, 0xF1A + i as u64)))
            .collect();
        check_all(&store, &oracle, &pats);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine-level packed-vs-scalar equivalence. The sealed layout-v2
    /// engine answers through the word-packed backbone scanner (2-bit DNA,
    /// 5-bit protein); the in-memory reference answers symbol by symbol.
    /// Every pattern cut at a word-boundary start offset (and ±1) with
    /// lengths 0..=2·word_len — plus a near-miss with the final symbol
    /// flipped — must agree exactly.
    #[test]
    fn packed_scan_matches_scalar_at_word_boundaries(
        seed in 0u64..1 << 48,
        alpha in 0usize..2,
    ) {
        let (a, bits) = if alpha == 0 {
            (Alphabet::dna(), 2u32)
        } else {
            (Alphabet::protein(), 5u32)
        };
        let per_word = 64 / bits as usize;
        let text = random_text(&a, per_word * 4 + 7, seed);
        let reference = Spine::build(a.clone(), &text).unwrap();
        let sealed = DiskSpine::build_sealed(
            a.clone(),
            &text,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        prop_assert_eq!(
            spine::SpineOps::backbone_packing(&sealed),
            Some(bits),
            "sealed engine must take the packed path"
        );

        for word in 0..4usize {
            for delta in [0usize, 1] {
                let start = match (word * per_word).checked_sub(delta) {
                    Some(s) if s < text.len() => s,
                    _ => continue,
                };
                for len in 0..=2 * per_word {
                    let end = (start + len).min(text.len());
                    let mut pattern = text[start..end].to_vec();
                    prop_assert_eq!(
                        sealed.find_all(&pattern),
                        reference.find_all(&pattern),
                        "present pattern, start {} len {}", start, len
                    );
                    if let Some(last) = pattern.last_mut() {
                        *last = (*last + 1) % a.size() as Code;
                        prop_assert_eq!(
                            sealed.find_all(&pattern),
                            reference.find_all(&pattern),
                            "near-miss pattern, start {} len {}", start, len
                        );
                    }
                }
            }
        }
    }
}
