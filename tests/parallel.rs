//! Concurrent queries over one shared index.
//!
//! The in-memory engines are immutable after construction (counters are
//! relaxed atomics), so they are `Sync`: many threads can search the same
//! index at once. This is the read-mostly usage a database engine would
//! want from the paper's "more amenable for integration with database
//! engines" pitch.

use crossbeam::thread;
use genseq::preset;
use spine::{CompactSpine, Spine};
use strindex::{Code, MatchingIndex, StringIndex};
use suffix_tree::SuffixTree;

fn is_sync<T: Sync>() {}

#[test]
fn engines_are_sync() {
    is_sync::<Spine>();
    is_sync::<CompactSpine>();
    is_sync::<SuffixTree>();
}

#[test]
fn parallel_queries_agree_with_serial() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.002); // 7 000 bp
    let index = Spine::build(p.alphabet(), &text).unwrap();

    let patterns: Vec<Vec<Code>> = (0..64)
        .map(|i| text[(i * 101) % (text.len() - 12)..][..12].to_vec())
        .collect();
    let serial: Vec<Vec<usize>> = patterns.iter().map(|p| index.find_all(p)).collect();

    let results = thread::scope(|s| {
        let handles: Vec<_> = patterns
            .chunks(16)
            .map(|chunk| {
                let index = &index;
                s.spawn(move |_| chunk.iter().map(|p| index.find_all(p)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();

    assert_eq!(results, serial);
}

#[test]
fn parallel_matching_statistics() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.002);
    let index = Spine::build(p.alphabet(), &text).unwrap();
    let queries: Vec<Vec<Code>> =
        (0..8).map(|i| text[i * 500..i * 500 + 400].to_vec()).collect();

    let serial: Vec<_> = queries.iter().map(|q| index.matching_statistics(q)).collect();
    let parallel = thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let index = &index;
                s.spawn(move |_| index.matching_statistics(q))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    })
    .unwrap();
    assert_eq!(parallel, serial);

    // Counters aggregated across threads: at least one check per query
    // symbol in total.
    assert!(index.counters().nodes_checked() > 0);
}
