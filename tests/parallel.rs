//! Concurrent queries over one shared index.
//!
//! The in-memory engines are immutable after construction (counters are
//! relaxed atomics), so they are `Sync`: many threads can search the same
//! index at once. This is the read-mostly usage a database engine would
//! want from the paper's "more amenable for integration with database
//! engines" pitch.

use std::sync::Arc;

use crossbeam::thread;
use genseq::preset;
use spine::engine::{EngineConfig, QueryEngine};
use spine::occurrences::find_all_ends;
use spine::ops::SpineOps;
use spine::{CompactSpine, Spine};
use strindex::{Code, MatchingIndex, StringIndex};
use suffix_tree::SuffixTree;

fn is_sync<T: Sync>() {}

#[test]
fn engines_are_sync() {
    is_sync::<Spine>();
    is_sync::<CompactSpine>();
    is_sync::<SuffixTree>();
}

#[test]
fn parallel_queries_agree_with_serial() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.002); // 7 000 bp
    let index = Spine::build(p.alphabet(), &text).unwrap();

    let patterns: Vec<Vec<Code>> =
        (0..64).map(|i| text[(i * 101) % (text.len() - 12)..][..12].to_vec()).collect();
    let serial: Vec<Vec<usize>> = patterns.iter().map(|p| index.find_all(p)).collect();

    let results = thread::scope(|s| {
        let handles: Vec<_> = patterns
            .chunks(16)
            .map(|chunk| {
                let index = &index;
                s.spawn(move |_| chunk.iter().map(|p| index.find_all(p)).collect::<Vec<_>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<_>>()
    })
    .unwrap();

    assert_eq!(results, serial);
}

#[test]
fn parallel_matching_statistics() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.002);
    let index = Spine::build(p.alphabet(), &text).unwrap();
    let queries: Vec<Vec<Code>> = (0..8).map(|i| text[i * 500..i * 500 + 400].to_vec()).collect();

    let serial: Vec<_> = queries.iter().map(|q| index.matching_statistics(q)).collect();
    let parallel = thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let index = &index;
                s.spawn(move |_| index.matching_statistics(q))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    })
    .unwrap();
    assert_eq!(parallel, serial);

    // Counters aggregated across threads: at least one check per query
    // symbol in total.
    assert!(index.counters().nodes_checked() > 0);
}

/// Hammer one shared [`QueryEngine`] from many submitter threads at once.
///
/// Every drained result must equal the serial backbone scan for its
/// pattern, regardless of which worker answered it, how requests were
/// coalesced into batches, or in what order threads reached the queue.
#[test]
fn query_engine_stress_many_submitters() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.002); // ~7 000 bp
    let index = Arc::new(Spine::build(p.alphabet(), &text).unwrap());

    let patterns: Vec<Vec<Code>> =
        (0..48).map(|i| text[(i * 131) % (text.len() - 10)..][..3 + i % 8].to_vec()).collect();
    let serial: Vec<Vec<u32>> = patterns.iter().map(|p| find_all_ends(index.as_ref(), p)).collect();

    let cfg = EngineConfig { workers: 4, batch_max: 8, ..Default::default() };
    let engine = QueryEngine::new(Arc::clone(&index), cfg);
    let submitters = 6;
    thread::scope(|s| {
        for t in 0..submitters {
            let engine = &engine;
            let patterns = &patterns;
            s.spawn(move |_| {
                // Each thread submits every pattern, at a thread-specific
                // rotation so the queue interleaves differently.
                for i in 0..patterns.len() {
                    engine
                        .submit(patterns[(i + t * 7) % patterns.len()].clone())
                        .expect("default shed policy blocks rather than rejecting");
                }
            });
        }
    })
    .unwrap();

    let results = engine.drain();
    assert_eq!(results.len(), submitters * patterns.len());
    for r in &results {
        let i = patterns.iter().position(|p| *p == r.pattern).unwrap();
        assert_eq!(r.expect_ends(), serial[i], "pattern {:?}", r.pattern);
    }
    // Order-normalized equivalence: each distinct pattern was answered once
    // per submission, i.e. `submitters` × its multiplicity in the list.
    for p in &patterns {
        let answered = results.iter().filter(|r| r.pattern == *p).count();
        let submitted = submitters * patterns.iter().filter(|q| *q == p).count();
        assert_eq!(answered, submitted, "pattern {p:?}");
    }

    let m = engine.metrics();
    assert_eq!(m.completed, (submitters * patterns.len()) as u64);
    assert!(m.batches() <= m.completed, "coalescing can only reduce scans");
    assert!(m.index.nodes_checked > 0);
}

/// Drain from one thread while another is still submitting: drain must not
/// return until the queue is empty and nothing is in flight.
#[test]
fn query_engine_drain_races_with_submit() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.001);
    let index = Arc::new(Spine::build(p.alphabet(), &text).unwrap());
    let cfg = EngineConfig { workers: 2, batch_max: 4, ..Default::default() };
    let engine = QueryEngine::new(index, cfg);

    let total = 200usize;
    let drained = thread::scope(|s| {
        let e = &engine;
        s.spawn(move |_| {
            for i in 0..total {
                e.submit(text[(i * 37) % (text.len() - 6)..][..5].to_vec()).unwrap();
            }
        });
        // Drain concurrently; whatever this drain misses, a final drain
        // catches. Between the two, every id must appear exactly once.
        let first = e.drain();
        first.len()
    })
    .unwrap();

    let rest = engine.drain();
    assert_eq!(drained + rest.len(), total);
    let mut ids: Vec<u64> = rest.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), rest.len(), "no id delivered twice");
}

/// §2.7 prefix partitioning under concurrency: while reader threads query a
/// shared full index, each also checks that the zero-copy prefix view is
/// *structurally identical* (same nodes, links, LELs, ribs, extribs) to an
/// index freshly built on that prefix — SPINE's append-only growth makes
/// the live view safe to read at any cut.
#[test]
fn prefix_views_structurally_identical_under_concurrent_readers() {
    let p = preset("eco-sim").unwrap();
    let text = p.generate(0.0005); // ~1 750 bp
    let full = Spine::build(p.alphabet(), &text).unwrap();

    thread::scope(|s| {
        for t in 0..6 {
            let full = &full;
            let text = &text;
            let alphabet = p.alphabet();
            s.spawn(move |_| {
                let k = (t + 1) * text.len() / 7;
                let fresh = Spine::build(alphabet, &text[..k]).unwrap();
                let view = full.prefix(k);
                assert_eq!(view.len(), fresh.len());
                for n in 0..=k as u32 {
                    let fnode = &fresh.nodes()[n as usize];
                    if n > 0 {
                        assert_eq!((fnode.link, fnode.lel), full.link_of(n));
                    }
                    let view_ribs: Vec<_> = view.ribs(n).cloned().collect();
                    assert_eq!(view_ribs, fnode.ribs, "ribs of node {n} at cut {k}");
                    let view_ex: Vec<_> = view.extribs(n).cloned().collect();
                    assert_eq!(view_ex, fnode.extribs, "extribs of node {n} at cut {k}");
                }
                // And behaviorally: the view answers like the fresh build.
                for w in [1usize, 4, 9] {
                    if k >= w {
                        let pat = &text[k - w..k];
                        assert_eq!(view.find_all(pat), fresh.find_all(pat), "cut {k} w {w}");
                    }
                }
            });
        }
    })
    .unwrap();
}
