//! Layout-v2 honesty battery: the sealed varint/delta page format and the
//! word-packed backbone must be *provably* equivalent to the reference
//! engines, across alphabets, page boundaries, file round-trips, and
//! format-version mismatches.
//!
//! Complements the unit-level codec proptests in `spine::disk`: here
//! everything goes through the public API — `build_sealed` / `seal_to` /
//! `write_meta` / `reopen` — over real `FileDevice` files where durability
//! is the claim under test.

use genseq::rng;
use pagestore::{FileDevice, Lru, MemDevice, PAGE_SIZE};
use proptest::prelude::*;
use rand::Rng;
use spine::{DiskSpine, Spine, SpineOps, DISK_FORMAT_VERSION};
use strindex::{Alphabet, Code, Error, StringIndex};

fn random_text(a: &Alphabet, len: usize, seed: u64) -> Vec<Code> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(0..a.size()) as Code).collect()
}

fn scan_find_all(text: &[Code], pattern: &[Code]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len()).filter(|&i| &text[i..i + pattern.len()] == pattern).collect()
}

fn seal(a: &Alphabet, text: &[Code], pool: usize) -> DiskSpine {
    DiskSpine::build_sealed(
        a.clone(),
        text,
        Box::new(MemDevice::new()),
        pool,
        Box::<Lru>::default(),
    )
    .unwrap()
}

/// A scratch directory for the `FileDevice` round-trip tests.
fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("spine-layout-v2-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// The sealed census must reconcile exactly with the construction
/// observer's counts, for every alphabet: structural compression cannot
/// invent or drop edges.
#[test]
fn census_reconciles_with_build_stats_across_alphabets() {
    for (a, len) in
        [(Alphabet::dna(), 900usize), (Alphabet::protein(), 500), (Alphabet::bytes(), 300)]
    {
        let text = random_text(&a, len, 0xCE1505 + len as u64);
        let (mutable, st) = DiskSpine::build_with_stats(
            a.clone(),
            &text,
            Box::new(MemDevice::new()),
            16,
            Box::<Lru>::default(),
        )
        .unwrap();
        let sealed = mutable.seal_to(Box::new(MemDevice::new()), 8, Box::<Lru>::default()).unwrap();
        let census = sealed.sealed_census().unwrap();
        assert_eq!(census.nodes, len as u64 + 1, "one record per backbone node plus the root");
        assert_eq!(census.ribs, st.ribs_created, "rib records vs observer");
        assert_eq!(census.extribs, st.extribs_created, "extrib records vs observer");
        assert_eq!(census.overflow_records, 0, "natural texts never overflow a page");
    }
}

/// Texts large enough that the packed labels straddle label pages and the
/// node records straddle many slotted pages — every answer must cross page
/// boundaries and still match the straight-line scan.
#[test]
fn page_straddling_texts_answer_exactly() {
    let a = Alphabet::dna();
    // > 511 words × 32 symbols/word forces a second label page.
    let text = random_text(&a, 17_000, 0x57D0);
    let sealed = seal(&a, &text, 6);
    let pages = sealed.file_pages().unwrap();
    assert!(pages > 4, "17k nodes must spread over several pages, got {pages}");

    let mut r = rng(0x57D1);
    for _ in 0..60 {
        let len = r.gen_range(1..=40usize);
        let at = r.gen_range(0..=text.len() - len);
        let pattern = &text[at..at + len];
        assert_eq!(sealed.find_all(pattern), scan_find_all(&text, pattern), "hit at {at}");
        let mut miss = pattern.to_vec();
        let flip = r.gen_range(0..miss.len());
        miss[flip] = (miss[flip] + 1) % a.size() as Code;
        assert_eq!(sealed.find_all(&miss), scan_find_all(&text, &miss), "perturbed at {at}");
    }
}

/// The durable round-trip: seal onto a real file, flush, write the sidecar,
/// drop everything, reopen from disk — same answers, same packing, same
/// census.
#[test]
fn file_device_seal_reopen_round_trip() {
    let a = Alphabet::dna();
    let text = random_text(&a, 1200, 0xF11E);
    let dev_path = tmp("roundtrip.pages");
    let meta_path = tmp("roundtrip.meta");

    let sealed = DiskSpine::build_sealed(
        a.clone(),
        &text,
        Box::new(FileDevice::create(&dev_path, false).unwrap()),
        8,
        Box::<Lru>::default(),
    )
    .unwrap();
    let census = sealed.sealed_census().unwrap();
    let mut meta = Vec::new();
    sealed.write_meta(&mut meta).unwrap();
    sealed.flush().unwrap();
    std::fs::write(&meta_path, &meta).unwrap();
    drop(sealed);

    let reopened = DiskSpine::reopen(
        &mut std::fs::File::open(&meta_path).unwrap(),
        Box::new(FileDevice::open(&dev_path, false).unwrap()),
        4,
        Box::<Lru>::default(),
    )
    .unwrap();
    assert!(reopened.is_sealed());
    assert_eq!(reopened.backbone_packing(), Some(2), "packing survives the reopen");
    assert_eq!(reopened.sealed_census().unwrap(), census);

    let reference = Spine::build(a.clone(), &text).unwrap();
    let mut r = rng(0xF12E);
    for _ in 0..40 {
        let len = r.gen_range(1..=16usize);
        let at = r.gen_range(0..=text.len() - len);
        let pattern = &text[at..at + len];
        assert_eq!(reopened.find_all(pattern), reference.find_all(pattern));
    }

    std::fs::remove_file(&dev_path).ok();
    std::fs::remove_file(&meta_path).ok();
}

/// Format versioning: a v1 (mutable-layout) sidecar must be rejected with
/// the *typed* rebuild-required error — not a parse error, not a panic —
/// and rebuilding through `build_sealed` must recover the exact answers.
#[test]
fn v1_artifact_reports_rebuild_required_then_rebuild_recovers() {
    let a = Alphabet::protein();
    let text = random_text(&a, 400, 0x0BE1);
    let v1_path = tmp("v1-engine.pages");

    let v1 = DiskSpine::build(
        a.clone(),
        &text,
        Box::new(FileDevice::create(&v1_path, false).unwrap()),
        8,
        Box::<Lru>::default(),
    )
    .unwrap();
    let mut v1_meta = Vec::new();
    v1.write_meta(&mut v1_meta).unwrap();
    v1.flush().unwrap();
    drop(v1);

    let err = DiskSpine::reopen(
        &mut &v1_meta[..],
        Box::new(FileDevice::open(&v1_path, false).unwrap()),
        8,
        Box::<Lru>::default(),
    )
    .err()
    .expect("a v1 artifact must not reopen under the v2 engine");
    assert!(
        matches!(err, Error::FormatVersion { found: 1, expected: DISK_FORMAT_VERSION }),
        "want the typed version mismatch, got {err:?}"
    );
    assert!(err.to_string().contains("rebuild required"), "operator-facing hint: {err}");

    // The prescribed recovery: rebuild into a sealed v2 file and reopen it.
    let v2_path = tmp("v2-rebuilt.pages");
    let rebuilt = DiskSpine::build_sealed(
        a.clone(),
        &text,
        Box::new(FileDevice::create(&v2_path, false).unwrap()),
        8,
        Box::<Lru>::default(),
    )
    .unwrap();
    let mut v2_meta = Vec::new();
    rebuilt.write_meta(&mut v2_meta).unwrap();
    rebuilt.flush().unwrap();
    drop(rebuilt);

    let reopened = DiskSpine::reopen(
        &mut &v2_meta[..],
        Box::new(FileDevice::open(&v2_path, false).unwrap()),
        8,
        Box::<Lru>::default(),
    )
    .unwrap();
    let reference = Spine::build(a.clone(), &text).unwrap();
    let mut r = rng(0x0BE2);
    for _ in 0..30 {
        let len = r.gen_range(1..=10usize);
        let at = r.gen_range(0..=text.len() - len);
        let pattern = &text[at..at + len];
        assert_eq!(reopened.find_all(pattern), reference.find_all(pattern));
    }

    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
}

/// Degenerate inputs: the empty text and the single-symbol text seal,
/// round-trip through the sidecar, and answer correctly.
#[test]
fn empty_and_len1_texts_seal_and_reopen() {
    for (a, text) in [
        (Alphabet::dna(), vec![]),
        (Alphabet::dna(), vec![3 as Code]),
        (Alphabet::bytes(), vec![]),
        (Alphabet::bytes(), vec![200 as Code]),
    ] {
        let sealed = seal(&a, &text, 2);
        assert_eq!(sealed.sealed_census().unwrap().nodes, text.len() as u64 + 1);
        let want_pages = if text.is_empty() { 2 } else { 3 }; // header [+ labels] + nodes
        assert_eq!(sealed.file_pages().unwrap(), want_pages);

        let mut meta = Vec::new();
        sealed.write_meta(&mut meta).unwrap();
        // MemDevice round-trip: reopen over the *same* flushed device image
        // is exercised by the FileDevice test; here the sidecar must at
        // least parse and reject nothing for the degenerate shapes.
        sealed.flush().unwrap();
        assert_eq!(sealed.find_all(&[0]), scan_find_all(&text, &[0]));
        if !text.is_empty() {
            assert_eq!(sealed.find_first(&text), Some(0));
        }
        assert!(!sealed.contains(&[0, 0, 0]) || text.len() >= 3);
    }
}

/// The sealed pages really are smaller: the v2 file footprint must be a
/// multiple smaller than the v1 fixed-record footprint on the same text.
#[test]
fn v2_footprint_is_materially_smaller_than_v1() {
    let a = Alphabet::dna();
    let text = random_text(&a, 4000, 0x5123);
    let mutable =
        DiskSpine::build(a.clone(), &text, Box::new(MemDevice::new()), 16, Box::<Lru>::default())
            .unwrap();
    let (v1_reads, v1_writes) = mutable.io_counts();
    assert!(v1_reads + v1_writes > 0);
    // The mutable layout burns one 80-byte record per node.
    let v1_pages = (text.len() as u64 + 1).div_ceil(PAGE_SIZE as u64 / 80);
    let sealed = mutable.seal_to(Box::new(MemDevice::new()), 8, Box::<Lru>::default()).unwrap();
    let v2_pages = sealed.file_pages().unwrap();
    assert!(
        v2_pages * 3 < v1_pages,
        "layout v2 must cut pages at least 3x: v1 {v1_pages} vs v2 {v2_pages}"
    );
    let bytes_per_node = (v2_pages * PAGE_SIZE as u64) as f64 / (text.len() as f64 + 1.0);
    assert!(bytes_per_node < 14.0, "on-disk bytes/node {bytes_per_node:.2} out of budget");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random texts over random alphabets: the sealed engine, squeezed
    /// through a tiny pool, a sidecar round-trip, and a re-seal, always
    /// matches the straight-line scan.
    #[test]
    fn sealed_engine_matches_scan(
        len in 0usize..300,
        seed in 0u64..1 << 48,
        alpha in 0usize..3,
    ) {
        let a = match alpha {
            0 => Alphabet::dna(),
            1 => Alphabet::protein(),
            _ => Alphabet::bytes(),
        };
        let text = random_text(&a, len, seed);
        let sealed = seal(&a, &text, 2);
        prop_assert_eq!(sealed.sealed_census().unwrap().nodes, len as u64 + 1);

        // Re-sealing a sealed index is lossless.
        let resealed = sealed
            .seal_to(Box::new(MemDevice::new()), 2, Box::<Lru>::default())
            .unwrap();
        prop_assert_eq!(
            resealed.sealed_census().unwrap(),
            sealed.sealed_census().unwrap()
        );

        let mut r = rng(seed ^ 0xACE);
        for _ in 0..10 {
            let plen = r.gen_range(0..=12usize);
            let pattern: Vec<Code> = if !text.is_empty() && plen <= text.len() && r.gen_bool(0.6) {
                let at = r.gen_range(0..=text.len() - plen);
                text[at..at + plen].to_vec()
            } else {
                (0..plen).map(|_| r.gen_range(0..a.size()) as Code).collect()
            };
            let want = scan_find_all(&text, &pattern);
            prop_assert_eq!(sealed.find_all(&pattern), want.clone(), "sealed");
            prop_assert_eq!(resealed.find_all(&pattern), want, "resealed");
        }
    }
}
