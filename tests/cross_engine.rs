//! Cross-engine equivalence on realistic workloads.
//!
//! Every engine (SPINE reference/compact/disk v1/sealed disk v2, suffix
//! tree memory/disk, suffix array) answers identical queries over the same
//! preset-generated sequences, and all answers are held to the scan-based
//! oracle.

use genseq::preset;
use pagestore::{Lru, MemDevice, PrefixPriority};
use spine::{CompactSpine, DiskSpine, Spine};
use strindex::{Alphabet, Code, MatchingIndex, StringIndex};
use suffix_array::SaIndex;
use suffix_tree::{DiskSuffixTree, SuffixTree};
use suffix_trie::NaiveIndex;

struct Engines {
    alphabet: Alphabet,
    text: Vec<Code>,
    oracle: NaiveIndex,
    spine: Spine,
    compact: CompactSpine,
    disk: DiskSpine,
    disk_v2: DiskSpine,
    st: SuffixTree,
    st_disk: DiskSuffixTree,
    sa: SaIndex,
}

fn engines(name: &str, scale: f64) -> Engines {
    let p = preset(name).unwrap();
    let alphabet = p.alphabet();
    let text = p.generate(scale);
    Engines {
        oracle: NaiveIndex::new(alphabet.clone(), &text),
        spine: Spine::build(alphabet.clone(), &text).unwrap(),
        compact: CompactSpine::build(alphabet.clone(), &text).unwrap(),
        disk: DiskSpine::build(
            alphabet.clone(),
            &text,
            Box::new(MemDevice::new()),
            8,
            Box::<PrefixPriority>::default(),
        )
        .unwrap(),
        disk_v2: DiskSpine::build_sealed(
            alphabet.clone(),
            &text,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap(),
        st: SuffixTree::build(alphabet.clone(), &text).unwrap(),
        st_disk: DiskSuffixTree::build(
            alphabet.clone(),
            &text,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap(),
        sa: SaIndex::build(alphabet.clone(), &text),
        alphabet,
        text,
    }
}

/// Patterns: text windows (hits), perturbed windows (mostly misses), and
/// short k-mers.
fn patterns(e: &Engines) -> Vec<Vec<Code>> {
    let n = e.text.len();
    let mut pats = Vec::new();
    for (i, len) in [(0usize, 1usize), (n / 3, 8), (n / 2, 24), (n - 40, 40), (7, 3)] {
        pats.push(e.text[i..i + len].to_vec());
    }
    for p in pats.clone() {
        let mut q = p;
        if let Some(last) = q.last_mut() {
            *last = (*last + 1) % e.alphabet.size() as Code;
        }
        pats.push(q);
    }
    for k in 0..e.alphabet.size().min(4) as Code {
        pats.push(vec![k, k]);
    }
    pats
}

fn check_exact(e: &Engines) {
    for p in patterns(e) {
        let want_first = e.oracle.find_first(&p);
        let want_all = e.oracle.find_all(&p);
        assert_eq!(e.spine.find_first(&p), want_first, "spine/find_first {p:?}");
        assert_eq!(e.compact.find_first(&p), want_first, "compact/find_first");
        assert_eq!(e.disk.find_first(&p), want_first, "disk/find_first");
        assert_eq!(e.disk_v2.find_first(&p), want_first, "disk-v2/find_first");
        assert_eq!(e.st.find_first(&p), want_first, "st/find_first");
        assert_eq!(e.st_disk.find_first(&p), want_first, "st-disk/find_first");
        assert_eq!(e.sa.find_first(&p), want_first, "sa/find_first");
        assert_eq!(e.spine.find_all(&p), want_all, "spine/find_all {p:?}");
        assert_eq!(e.compact.find_all(&p), want_all, "compact/find_all");
        assert_eq!(e.disk.find_all(&p), want_all, "disk/find_all");
        assert_eq!(e.disk_v2.find_all(&p), want_all, "disk-v2/find_all");
        assert_eq!(e.st.find_all(&p), want_all, "st/find_all");
        assert_eq!(e.st_disk.find_all(&p), want_all, "st-disk/find_all");
        assert_eq!(e.sa.find_all(&p), want_all, "sa/find_all");
    }
}

fn check_matching(e: &Engines, query: &[Code]) {
    let want = e.oracle.matching_statistics(query);
    assert_eq!(e.spine.matching_statistics(query), want, "spine/ms");
    assert_eq!(e.compact.matching_statistics(query), want, "compact/ms");
    assert_eq!(e.disk.matching_statistics(query), want, "disk/ms");
    assert_eq!(e.disk_v2.matching_statistics(query), want, "disk-v2/ms");
    assert_eq!(e.st.matching_statistics(query), want, "st/ms");
    assert_eq!(e.st_disk.matching_statistics(query), want, "st-disk/ms");
    assert_eq!(e.sa.matching_statistics(query), want, "sa/ms");
    for threshold in [4usize, 12] {
        let want = e.oracle.maximal_matches(query, threshold);
        assert_eq!(e.spine.maximal_matches(query, threshold), want, "spine/mm");
        assert_eq!(e.compact.maximal_matches(query, threshold), want, "compact/mm");
        assert_eq!(e.disk.maximal_matches(query, threshold), want, "disk/mm");
        assert_eq!(e.disk_v2.maximal_matches(query, threshold), want, "disk-v2/mm");
        assert_eq!(e.st.maximal_matches(query, threshold), want, "st/mm");
        assert_eq!(e.st_disk.maximal_matches(query, threshold), want, "st-disk/mm");
        assert_eq!(e.sa.maximal_matches(query, threshold), want, "sa/mm");
    }
}

#[test]
fn dna_preset_equivalence() {
    let e = engines("eco-sim", 0.0004); // 1 400 symbols
    check_exact(&e);
    let query: Vec<Code> = genseq::mutate(
        &e.text[..600],
        e.alphabet.size(),
        &genseq::MutationProfile::default(),
        &mut genseq::rng(5),
    );
    check_matching(&e, &query);
}

#[test]
fn protein_preset_equivalence() {
    let e = engines("yst-sim", 0.0004); // ~1 240 residues
    check_exact(&e);
    let query = e.text[100..700].to_vec();
    check_matching(&e, &query);
}

#[test]
fn unrelated_query_equivalence() {
    let e = engines("eco-sim", 0.0003);
    let query = genseq::iid_sequence(&e.alphabet, 500, &mut genseq::rng(77));
    check_matching(&e, &query);
}

#[test]
fn spine_invariants_hold_on_presets() {
    for name in ["eco-sim", "yst-sim"] {
        let p = preset(name).unwrap();
        let text = p.generate(0.0003);
        let s = Spine::build(p.alphabet(), &text).unwrap();
        assert_eq!(s.verify(), vec![], "{name}");
    }
}
