//! Fault-tolerant serving, end to end.
//!
//! The engine's robustness contract, exercised deterministically:
//!
//! * **bounded admission** — a full queue sheds (`RejectNewest`) without
//!   blocking, and the metrics account for every request:
//!   `completed + shed + timed_out + failed == submitted`;
//! * **worker panic isolation** — a panicking index fails only its batch,
//!   `drain` still returns (the historical hang), the worker respawns, and
//!   the engine keeps serving;
//! * **storage-fault degradation** — an engine over a [`DiskSpine`] whose
//!   device hard-fails turns the affected queries into
//!   [`QueryOutcome::Failed`], while a retry layer over a *transiently*
//!   flaky device hides the faults entirely (answers match the in-memory
//!   oracle).

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pagestore::{FaultyDevice, FlakyDevice, Lru, MemDevice, RetryDevice, RetryPolicy};
use spine::engine::{EngineConfig, QueryEngine, QueryOutcome, ShedPolicy, SubmitError};
use spine::{DiskSpine, FallibleSpineOps, NodeId, Spine};
use strindex::{Alphabet, Code, Counters, Result, StringIndex};

fn paper_spine() -> (Alphabet, Spine) {
    let a = Alphabet::dna();
    let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
    (a, s)
}

// ---------------------------------------------------------------------------
// A gate that stalls the index's first accessor until released, so tests can
// hold a worker mid-batch and fill the admission queue deterministically.
// ---------------------------------------------------------------------------

struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    entered: Mutex<bool>,
    entered_cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            open: Mutex::new(false),
            opened: Condvar::new(),
            entered: Mutex::new(false),
            entered_cv: Condvar::new(),
        }
    }

    /// Called by the index under test: announce a worker reached the gate,
    /// then block until the test opens it.
    fn pass(&self) {
        {
            let mut e = self.entered.lock().unwrap();
            *e = true;
            self.entered_cv.notify_all();
        }
        let mut o = self.open.lock().unwrap();
        while !*o {
            o = self.opened.wait(o).unwrap();
        }
    }

    /// Called by the test: wait until some worker is blocked at the gate.
    fn await_entry(&self) {
        let mut e = self.entered.lock().unwrap();
        while !*e {
            e = self.entered_cv.wait(e).unwrap();
        }
    }

    fn release(&self) {
        let mut o = self.open.lock().unwrap();
        *o = true;
        self.opened.notify_all();
    }
}

struct GatedSpine {
    inner: Spine,
    gate: Arc<Gate>,
}

impl FallibleSpineOps for GatedSpine {
    fn text_len(&self) -> usize {
        FallibleSpineOps::text_len(&self.inner)
    }

    fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>> {
        self.gate.pass();
        self.inner.try_vertebra_out(node)
    }

    fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)> {
        self.inner.try_link_of(node)
    }

    fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>> {
        self.inner.try_rib_of(node, c)
    }

    fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>> {
        self.inner.try_extrib_of(node, prt)
    }

    fn ops_counters(&self) -> &Counters {
        FallibleSpineOps::ops_counters(&self.inner)
    }
}

/// Overload with `RejectNewest`: once one request occupies the single
/// worker and `capacity` more fill the queue, every further submission is
/// shed *immediately* (no blocking), and the final metrics account for
/// every request exactly once.
#[test]
fn reject_newest_sheds_deterministically_and_accounts() {
    let (a, s) = paper_spine();
    let gate = Arc::new(Gate::new());
    let index = Arc::new(GatedSpine { inner: s, gate: Arc::clone(&gate) });
    let capacity = 3usize;
    let engine = QueryEngine::new(
        Arc::clone(&index),
        EngineConfig {
            workers: 1,
            batch_max: 1,
            queue_capacity: capacity,
            shed: ShedPolicy::RejectNewest,
        },
    );

    let pat = a.encode(b"CA").unwrap();
    // First request: the lone worker takes it and blocks at the gate.
    engine.submit(pat.clone()).unwrap();
    gate.await_entry();
    // Fill the queue to capacity — all admitted.
    for _ in 0..capacity {
        engine.submit(pat.clone()).unwrap();
    }
    // Everything beyond capacity is shed, and shedding never blocks: these
    // calls return even though the only worker is stalled at the gate.
    let overload = 9usize;
    for _ in 0..overload {
        assert_eq!(engine.submit(pat.clone()), Err(SubmitError::Overloaded));
    }

    gate.release();
    let results = engine.drain();
    assert_eq!(results.len(), 1 + capacity, "shed requests produce no results");
    for r in &results {
        assert_eq!(r.expect_ends(), [5, 7, 10]);
    }

    let m = engine.metrics();
    assert_eq!(m.submitted, (1 + capacity + overload) as u64);
    assert_eq!(m.completed, (1 + capacity) as u64);
    assert_eq!(m.shed, overload as u64);
    assert_eq!(m.timed_out, 0);
    assert_eq!(m.failed, 0);
    assert_eq!(m.accounted(), m.submitted, "every request accounted exactly once");
}

/// `Block` is loss-free: a submitter that finds the queue full waits for a
/// worker instead of shedding, so every request completes.
#[test]
fn block_policy_is_loss_free_under_overload() {
    let (a, s) = paper_spine();
    let engine = QueryEngine::new(
        Arc::new(s),
        EngineConfig { workers: 2, batch_max: 2, queue_capacity: 2, shed: ShedPolicy::Block },
    );
    let pat = a.encode(b"AC").unwrap();
    for _ in 0..64 {
        engine.submit(pat.clone()).unwrap(); // may block, never errors
    }
    let results = engine.drain();
    assert_eq!(results.len(), 64);
    let m = engine.metrics();
    assert_eq!(m.completed, 64);
    assert_eq!(m.shed, 0);
    assert_eq!(m.accounted(), m.submitted);
}

// ---------------------------------------------------------------------------
// Worker panic isolation.
// ---------------------------------------------------------------------------

/// Panics on the first structural access after arming, then behaves — so
/// exactly one batch is poisoned.
struct PanicOnce {
    inner: Spine,
    armed: AtomicBool,
}

impl FallibleSpineOps for PanicOnce {
    fn text_len(&self) -> usize {
        FallibleSpineOps::text_len(&self.inner)
    }

    fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>> {
        if self.armed.swap(false, Relaxed) {
            panic!("injected index panic");
        }
        self.inner.try_vertebra_out(node)
    }

    fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)> {
        self.inner.try_link_of(node)
    }

    fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>> {
        self.inner.try_rib_of(node, c)
    }

    fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>> {
        self.inner.try_extrib_of(node, prt)
    }

    fn ops_counters(&self) -> &Counters {
        FallibleSpineOps::ops_counters(&self.inner)
    }
}

/// Regression: a worker dying mid-batch used to strand the batch's
/// requests in `in_flight`, hanging `drain` forever. Now the poisoned
/// batch's requests come back as `Failed`, the worker respawns, and the
/// engine keeps answering.
#[test]
fn worker_panic_fails_batch_without_hanging_drain() {
    let (a, s) = paper_spine();
    let index = Arc::new(PanicOnce { inner: s, armed: AtomicBool::new(true) });
    let engine = QueryEngine::new(
        Arc::clone(&index),
        EngineConfig { workers: 1, batch_max: 4, ..Default::default() },
    );

    let pats = [&b"CA"[..], b"AC", b"A"];
    for p in &pats {
        engine.submit(a.encode(p).unwrap()).unwrap();
    }
    let results = engine.drain(); // regression: must return, not hang

    let failed = results
        .iter()
        .filter(|r| matches!(&r.outcome, QueryOutcome::Failed(m) if m.contains("worker panicked")))
        .count();
    assert!(failed >= 1, "the poisoned batch must surface as Failed outcomes");
    assert_eq!(results.len(), pats.len(), "every submitted request gets an outcome");

    // The worker respawned and the engine still serves correct answers.
    engine.submit(a.encode(b"CA").unwrap()).unwrap();
    let after = engine.drain();
    assert_eq!(after[0].expect_ends(), [5, 7, 10]);

    let m = engine.metrics();
    assert_eq!(m.worker_respawns, 1);
    assert_eq!(m.failed, failed as u64);
    assert_eq!(m.accounted(), m.submitted);
}

// ---------------------------------------------------------------------------
// Deadlines mixed with live traffic.
// ---------------------------------------------------------------------------

#[test]
fn expired_deadlines_time_out_while_live_requests_complete() {
    let (a, s) = paper_spine();
    let engine = QueryEngine::new(
        Arc::new(s),
        EngineConfig { workers: 1, batch_max: 8, ..Default::default() },
    );
    let past = Instant::now() - Duration::from_secs(1);
    let future = Instant::now() + Duration::from_secs(120);
    let dead = engine.submit_with_deadline(a.encode(b"CA").unwrap(), past).unwrap();
    let live = engine.submit_with_deadline(a.encode(b"CA").unwrap(), future).unwrap();
    let plain = engine.submit(a.encode(b"AC").unwrap()).unwrap();
    let results = engine.drain();
    let by_id = |id| results.iter().find(|r| r.id == id).unwrap();
    assert_eq!(by_id(dead).outcome, QueryOutcome::TimedOut);
    assert_eq!(by_id(live).expect_ends(), [5, 7, 10]);
    assert_eq!(by_id(plain).expect_ends(), [3, 6, 9]);
    let m = engine.metrics();
    assert_eq!(m.timed_out, 1);
    assert_eq!(m.completed, 2);
    assert_eq!(m.accounted(), m.submitted);
}

// ---------------------------------------------------------------------------
// Storage faults through the whole stack: device → DiskSpine → engine.
// ---------------------------------------------------------------------------

fn disk_workload() -> (Alphabet, Vec<Code>, Vec<Vec<Code>>) {
    let a = Alphabet::dna();
    let text = a.encode(&b"AACCACAACAGGTTACGACGACCA".repeat(6)).unwrap();
    let patterns: Vec<Vec<Code>> = [&b"CA"[..], b"GGTT", b"TACGACG", b"ACCAA", b"AACC"]
        .iter()
        .map(|p| a.encode(p).unwrap())
        .collect();
    (a, text, patterns)
}

/// A hard device fault mid-service degrades the affected queries to
/// `Failed` — the engine neither panics nor hangs, and the accounting
/// invariant still holds.
#[test]
fn engine_over_disk_spine_degrades_on_hard_fault() {
    let (a, text, patterns) = disk_workload();
    // Budget exactly the clean build: the first query that misses the
    // 1-frame pool then hits the dead device.
    let clean =
        DiskSpine::build(a.clone(), &text, Box::new(MemDevice::new()), 1, Box::<Lru>::default())
            .unwrap();
    let (r, w) = clean.io_counts();
    let build_budget = r + w;

    let faulty = FaultyDevice::new(MemDevice::new(), build_budget);
    let disk = DiskSpine::build(a, &text, Box::new(faulty), 1, Box::<Lru>::default()).unwrap();
    let engine = QueryEngine::new(
        Arc::new(disk),
        EngineConfig { workers: 2, batch_max: 4, ..Default::default() },
    );
    for p in &patterns {
        engine.submit(p.clone()).unwrap();
    }
    let results = engine.drain();
    assert_eq!(results.len(), patterns.len());
    let failed = results
        .iter()
        .filter(|r| matches!(&r.outcome, QueryOutcome::Failed(m) if m.contains("injected")))
        .count();
    assert!(failed >= 1, "device is dead past construction; queries must fail cleanly");
    let m = engine.metrics();
    assert_eq!(m.worker_respawns, 0, "storage faults are errors, not panics");
    assert_eq!(m.accounted(), m.submitted);
}

/// With the retry layer over a transiently flaky device, the engine's
/// answers are indistinguishable from the in-memory oracle.
#[test]
fn engine_over_retry_wrapped_flaky_disk_matches_oracle() {
    let (a, text, patterns) = disk_workload();
    let oracle = Spine::build(a.clone(), &text).unwrap();

    let flaky = FlakyDevice::with_probability(MemDevice::new(), 0.05, 0xDECAF);
    let retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    let disk = DiskSpine::build(a, &text, Box::new(retry), 2, Box::<Lru>::default()).unwrap();
    let engine = QueryEngine::new(
        Arc::new(disk),
        EngineConfig { workers: 3, batch_max: 4, ..Default::default() },
    );
    for p in &patterns {
        engine.submit(p.clone()).unwrap();
    }
    let results = engine.drain();
    for (r, p) in results.iter().zip(&patterns) {
        assert_eq!(
            r.expect_starts(),
            oracle.find_all(p),
            "retry layer must make transient faults invisible (pattern {p:?})"
        );
    }
    let m = engine.metrics();
    assert_eq!(m.completed, patterns.len() as u64);
    assert_eq!(m.failed, 0);
    assert_eq!(m.accounted(), m.submitted);
}
