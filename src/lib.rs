//! Workspace umbrella crate.
//!
//! Re-exports every crate of the SPINE reproduction so the `examples/` and
//! the cross-crate integration tests in `tests/` can use one dependency.
//! Library users should depend on the individual crates (`spine`,
//! `suffix-tree`, …) directly.

pub use genseq;
pub use pagestore;
pub use spine;
pub use strindex;
pub use suffix_array;
pub use suffix_tree;
pub use suffix_trie;
