//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! few `rand 0.8` APIs the sequence generators use are reimplemented here:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and
//! [`distributions::WeightedIndex`] sampling through
//! [`distributions::Distribution`]. The generator is xoshiro256** (the same
//! family the real `SmallRng` uses on 64-bit targets), seeded by SplitMix64,
//! so sequences are deterministic per seed and statistically solid for the
//! workload generators and property tests in this repo.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (top half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Map a `u64` draw to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors rand's `SampleUniform` so integer-literal ranges keep inferring
/// their type from surrounding context (e.g. `rng.gen_range(20..200).min(n)`
/// with `n: usize`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands a `u64` seed into full generator state.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Sampling distributions (the subset: weighted categorical draws).

    use super::Rng;
    use std::marker::PhantomData;

    /// Types that can be sampled from with an RNG.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// The weight list was empty.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let what = match self {
                WeightedError::NoItem => "no weights provided",
                WeightedError::InvalidWeight => "negative or non-finite weight",
                WeightedError::AllWeightsZero => "all weights are zero",
            };
            f.write_str(what)
        }
    }

    impl std::error::Error for WeightedError {}

    /// Categorical distribution over indices `0..n`, where index `i` is drawn
    /// with probability `weights[i] / sum(weights)`.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<T> {
        /// Exclusive prefix sums shifted by one: `cumulative[i]` is the total
        /// weight of items `0..=i`.
        cumulative: Vec<f64>,
        total: f64,
        _weight: PhantomData<T>,
    }

    impl<T: Copy + Into<f64>> WeightedIndex<T> {
        /// Build from an iterator of weight references.
        pub fn new<'a, I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = &'a T>,
            T: 'a,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for &w in weights {
                let w: f64 = w.into();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total, _weight: PhantomData })
        }
    }

    impl<T> Distribution<usize> for WeightedIndex<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let u = super::unit_f64(rng.next_u64()) * self.total;
            // First index whose cumulative weight exceeds the draw.
            match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SmallRng::seed_from_u64(11);
        let w = WeightedIndex::new(&[1.0f64, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 2 * counts[0], "counts {counts:?}");
        assert!(counts[0] > 5_000, "counts {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        use super::distributions::WeightedError;
        assert_eq!(WeightedIndex::<f64>::new(&[]).unwrap_err(), WeightedError::NoItem);
        assert_eq!(WeightedIndex::new(&[0.0f64, 0.0]).unwrap_err(), WeightedError::AllWeightsZero);
        assert_eq!(WeightedIndex::new(&[1.0f64, -1.0]).unwrap_err(), WeightedError::InvalidWeight);
    }
}
