//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace builds without crates.io access, so the one crossbeam API
//! in use — `crossbeam::thread::scope` — is provided here on top of
//! `std::thread::scope` (stable since Rust 1.63, which postdates crossbeam's
//! scoped-thread design). Semantics match for the success path; the one
//! difference is panic propagation: where crossbeam returns `Err` from
//! `scope` when an unjoined child panicked, the std implementation resumes
//! the panic instead.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention
    //! (spawn closures receive `&Scope` so they can spawn siblings).

    use std::thread as std_thread;

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope,
        /// so spawned threads can spawn further siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&me)) }
        }
    }

    /// Handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` if it panicked).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope: all threads spawned inside are joined before `scope`
    /// returns. Always `Ok` here (a panicking unjoined child resumes its
    /// panic on the caller instead of surfacing as `Err`).
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn nested_spawn_from_child() {
        let n = thread::scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap())
            .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn join_reports_child_panic() {
        thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
