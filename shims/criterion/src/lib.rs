//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without crates.io access, so the Criterion calling
//! convention used by the `crates/bench` benches is provided here over a
//! deliberately small harness: per benchmark it warms up, runs a bounded
//! number of timed samples, and prints the median time per iteration (plus
//! derived throughput when declared). No statistics beyond the median, no
//! HTML reports — the benches stay runnable and comparable, which is what
//! the experiment workflow needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, self.measurement, None, f);
        self
    }
}

/// Declared work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier with a parameter, e.g. `spine-ref/20000`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", name.into(), param) }
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.measurement, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        run_bench(&full, self.sample_size, self.measurement, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    /// Median per-iteration duration of the samples taken, filled by `iter`.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let mut samples = Vec::with_capacity(16);
        let budget = Instant::now();
        loop {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
            // At least 3 samples; stop at 15 or when over budget.
            if samples.len() >= 15
                || (samples.len() >= 3 && budget.elapsed() > Duration::from_millis(200))
            {
                break;
            }
        }
        samples.sort();
        self.elapsed = samples[samples.len() / 2];
    }
}

fn run_bench<F>(
    id: &str,
    _sample_size: usize,
    _measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("bench {id:<48} {per_iter:>12.2?}/iter  {:>12.0} elem/s", rate);
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64() / 1e6;
            println!("bench {id:<48} {per_iter:>12.2?}/iter  {rate:>9.1} MB/s");
        }
        _ => println!("bench {id:<48} {per_iter:>12.2?}/iter"),
    }
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness flags cargo may pass (e.g. --bench).
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5).throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &3u64, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(ran >= 4, "body should run several times, ran {ran}");
    }
}
