//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the `Mutex`/`RwLock` calling convention (no lock poisoning, no
//! `Result` from `lock()`) on top of `std::sync`. A poisoned std lock —
//! possible only after a panic while holding the guard — is recovered
//! rather than propagated, matching parking_lot's behavior of simply
//! unlocking on panic.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock that hands back its guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that hands back its guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
