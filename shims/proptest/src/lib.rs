//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so the proptest surface
//! the test suites use is reimplemented here: the [`proptest!`] macro,
//! [`strategy::Strategy`] with integer-range / string-pattern / tuple /
//! collection / sample strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its deterministic case number;
//!   cases are reproducible (seeded from test name + case index), so a
//!   failure is stable across runs without minimization.
//! * **String strategies** support the character-class pattern subset the
//!   suites use (`"[A-Za-z0-9_ .|-]{0,40}"`), not full regex.

pub mod test_runner {
    //! Configuration, errors, and the per-case RNG.

    /// Number of random cases to run per property (and future knobs).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases per property test.
        pub cases: u32,
    }

    /// The name proptest exports this under.
    pub type ProptestConfig = Config;

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected (filtered), not failed.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case generator (xoshiro256** seeded by SplitMix64
    /// over a hash of the test name and the case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            let mut seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng {
                s: [
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                ],
            }
        }

        /// The next 64 uniform bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` of 0 yields 0.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `usize` in `[lo, hi]`.
        #[inline]
        pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + self.below((hi - lo) as u64 + 1) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128 - lo as u128) as u64;
                    lo + rng.below(span.saturating_add(1).max(1)) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize);

    /// String strategy from a character-class pattern: `[class]{lo,hi}`,
    /// `[class]{n}`, `[class]*` (0..=16), `[class]+` (1..=16) or a bare
    /// `[class]` (exactly one char). Inside the class, `a-z` spans are
    /// expanded; a trailing or leading `-` is literal.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = rng.in_range(lo, hi);
            (0..len).map(|_| chars[rng.in_range(0, chars.len() - 1)]).collect()
        }
    }

    /// Parse `[class]{lo,hi}`-style patterns; `None` if unsupported.
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let suffix = &rest[close + 1..];
        let (lo, hi) = match suffix {
            "" => (1, 1),
            "*" => (0, 16),
            "+" => (1, 16),
            s => {
                let body = s.strip_prefix('{')?.strip_suffix('}')?;
                match body.split_once(',') {
                    Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                    None => {
                        let n = body.trim().parse().ok()?;
                        (n, n)
                    }
                }
            }
        };
        (lo <= hi).then_some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.in_range(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.in_range(0, self.options.len() - 1)].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property body (panics with the case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases. The body
/// may `return Ok(())` to accept a case early.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // The immediately-invoked closure lets test bodies use
                    // `return Ok(())` for early exit, as real proptest does.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) = __result
                    {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vecs_obey_size(v in prop::collection::vec(0u8..4, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&c| c < 4));
        }

        #[test]
        fn select_draws_from_options(c in prop::sample::select(vec![b'A', b'C'])) {
            prop_assert!(c == b'A' || c == b'C');
        }

        #[test]
        fn string_pattern_respected(s in "[A-Ca-c0-2_ -]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|ch| {
                ('A'..='C').contains(&ch)
                    || ('a'..='c').contains(&ch)
                    || ('0'..='2').contains(&ch)
                    || ch == '_' || ch == ' ' || ch == '-'
            }), "bad char in {:?}", s);
        }

        #[test]
        fn tuples_and_early_return(pair in (0u8..2, 0u8..2)) {
            if pair.0 == 0 {
                return Ok(());
            }
            prop_assert_eq!(pair.0, 1);
            prop_assert_ne!(pair.0, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u8..=255, 0..=32);
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        let mut c = crate::test_runner::TestRng::for_case("t", 6);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let _ = strat.generate(&mut c); // different case: just must not panic
    }
}
