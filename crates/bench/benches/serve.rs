//! Criterion bench: serial one-scan-per-pattern querying vs the concurrent
//! batched engine (the micro-scale companion of `exp serve`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spine::engine::{EngineConfig, QueryEngine};
use spine::occurrences::find_all_ends;
use spine::Spine;
use spine_bench::Dataset;
use strindex::Code;

const N: usize = 200_000;

fn setup() -> (Arc<Spine>, Vec<Vec<Code>>) {
    // hc21-sim stands in for the paper's human-chromosome-21 dataset.
    let d = Dataset::generate("hc21-sim", N as f64 / 33_800_000.0);
    let index = Arc::new(Spine::build(d.alphabet.clone(), &d.seq).unwrap());
    let mut pats: Vec<Vec<Code>> =
        (0..192).map(|i| d.seq[i * 883 % (d.seq.len() - 20)..][..12 + i % 8].to_vec()).collect();
    for i in 0..64 {
        let mut p = pats[i].clone();
        p.reverse(); // mostly misses
        pats.push(p);
    }
    (index, pats)
}

fn serve(c: &mut Criterion) {
    let (index, pats) = setup();
    let mut g = c.benchmark_group("serve");
    g.throughput(Throughput::Elements(pats.len() as u64));

    g.bench_function("serial", |b| {
        b.iter(|| pats.iter().map(|p| find_all_ends(index.as_ref(), p).len()).sum::<usize>())
    });

    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("engine", workers), &workers, |b, &workers| {
            let cfg = EngineConfig { workers, batch_max: 64, ..Default::default() };
            let engine = QueryEngine::new(Arc::clone(&index), cfg);
            b.iter(|| {
                for admitted in engine.submit_batch(pats.iter().cloned()) {
                    admitted.unwrap();
                }
                engine.drain().len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, serve);
criterion_main!(benches);
