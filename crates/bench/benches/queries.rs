//! Criterion micro-benches: query latency across engines
//! (the micro-scale companion of `exp table5`).

use criterion::{criterion_group, criterion_main, Criterion};
use spine::{CompactSpine, Spine};
use spine_bench::{query_for, Dataset};
use strindex::{Code, MatchingIndex, StringIndex};
use suffix_array::SaIndex;
use suffix_tree::SuffixTree;

const N: usize = 100_000;

fn setup() -> (Dataset, Vec<Vec<Code>>, Vec<Code>) {
    let d = Dataset::generate("eco-sim", N as f64 / 3_500_000.0);
    // Patterns: windows of the text (guaranteed hits) + shuffled misses.
    let mut pats: Vec<Vec<Code>> =
        (0..64).map(|i| d.seq[i * 997 % (d.seq.len() - 24)..][..24].to_vec()).collect();
    for i in 0..16 {
        let mut p = pats[i].clone();
        p.reverse();
        pats.push(p);
    }
    let query = query_for(&d);
    (d, pats, query)
}

fn find_first(c: &mut Criterion) {
    let (d, pats, _) = setup();
    let spine = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
    let compact = CompactSpine::build(d.alphabet.clone(), &d.seq).unwrap();
    let st = SuffixTree::build(d.alphabet.clone(), &d.seq).unwrap();
    let sa = SaIndex::build(d.alphabet.clone(), &d.seq);
    let mut g = c.benchmark_group("find_first");
    g.bench_function("spine-ref", |b| {
        b.iter(|| pats.iter().filter_map(|p| spine.find_first(p)).count())
    });
    g.bench_function("spine-compact", |b| {
        b.iter(|| pats.iter().filter_map(|p| compact.find_first(p)).count())
    });
    g.bench_function("suffix-tree", |b| {
        b.iter(|| pats.iter().filter_map(|p| st.find_first(p)).count())
    });
    g.bench_function("suffix-array", |b| {
        b.iter(|| pats.iter().filter_map(|p| sa.find_first(p)).count())
    });
    g.finish();
}

fn matching(c: &mut Criterion) {
    let (d, _, query) = setup();
    let spine = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
    let st = SuffixTree::build(d.alphabet.clone(), &d.seq).unwrap();
    let mut g = c.benchmark_group("maximal_matches");
    g.sample_size(10);
    g.bench_function("spine", |b| b.iter(|| spine.maximal_matches(&query, 20).len()));
    g.bench_function("suffix-tree", |b| b.iter(|| st.maximal_matches(&query, 20).len()));
    g.finish();
}

criterion_group!(benches, find_first, matching);
criterion_main!(benches);
