//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * target-node-buffer **binary search vs linear scan** (the paper says
//!   "searching in the target node buffer is performed in binary fashion to
//!   improve the performance");
//! * **batched vs per-pattern** occurrence scans (the paper defers repeated
//!   occurrences to one final backbone scan);
//! * **compact vs reference** layout query cost (the §5 layout trades a
//!   little indirection for 4× less space);
//! * **RT migration** exposure: building on repeat-rich vs random text.

use criterion::{criterion_group, criterion_main, Criterion};
use genseq::{iid_sequence, rng};
use spine::occurrences::{find_all_ends, find_all_ends_batch, Target};
use spine::ops::SpineOps;
use spine::{CompactSpine, Spine};
use spine_bench::Dataset;
use strindex::{Alphabet, Code, StringIndex};

const N: usize = 100_000;

fn dataset() -> Dataset {
    Dataset::generate("eco-sim", N as f64 / 3_500_000.0)
}

/// The linear-scan variant of the all-occurrences scan, for the ablation.
fn occurrences_linear(s: &Spine, first: u32, len: u32) -> Vec<u32> {
    let mut buffer = vec![first];
    for j in first + 1..=s.len() as u32 {
        let (dest, lel) = s.link_of(j);
        if lel >= len && buffer.contains(&dest) {
            buffer.push(j);
        }
    }
    buffer
}

fn target_buffer(c: &mut Criterion) {
    let d = dataset();
    let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
    // A short, frequent pattern: many occurrences → big buffer.
    let pat = &d.seq[..4].to_vec(); // short ⇒ thousands of occurrences ⇒ big buffer
    let first = s.locate(pat).unwrap();
    let mut g = c.benchmark_group("target-buffer");
    g.sample_size(10);
    g.bench_function("binary-search", |b| b.iter(|| find_all_ends(&s, pat).len()));
    g.bench_function("linear-scan", |b| {
        b.iter(|| occurrences_linear(&s, first, pat.len() as u32).len())
    });
    g.finish();
}

fn batched_occurrences(c: &mut Criterion) {
    let d = dataset();
    let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
    let pats: Vec<Vec<Code>> =
        (0..32).map(|i| d.seq[i * 1013 % (d.seq.len() - 16)..][..16].to_vec()).collect();
    let targets: Vec<Target> = pats
        .iter()
        .map(|p| Target { first_end: s.locate(p).unwrap(), len: p.len() as u32 })
        .collect();
    let mut g = c.benchmark_group("occurrence-scans");
    g.sample_size(10);
    g.bench_function("one-scan-per-pattern", |b| {
        b.iter(|| pats.iter().map(|p| find_all_ends(&s, p).len()).sum::<usize>())
    });
    g.bench_function("single-batched-scan", |b| {
        b.iter(|| find_all_ends_batch(&s, &targets).values().map(Vec::len).sum::<usize>())
    });
    g.finish();
}

fn layout_query_cost(c: &mut Criterion) {
    let d = dataset();
    let r = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
    let cp = CompactSpine::build(d.alphabet.clone(), &d.seq).unwrap();
    let pats: Vec<Vec<Code>> =
        (0..64).map(|i| d.seq[i * 997 % (d.seq.len() - 24)..][..24].to_vec()).collect();
    let mut g = c.benchmark_group("layout");
    g.bench_function("reference-find", |b| {
        b.iter(|| pats.iter().filter_map(|p| r.find_first(p)).count())
    });
    g.bench_function("compact-find", |b| {
        b.iter(|| pats.iter().filter_map(|p| cp.find_first(p)).count())
    });
    g.finish();
}

fn migration_exposure(c: &mut Criterion) {
    // Random text creates more fresh downstream edges (more migrations)
    // than repeat-rich text; the paper claims the movement cost is
    // negligible either way.
    let a = Alphabet::dna();
    let random = iid_sequence(&a, N, &mut rng(1));
    let repetitive = dataset().seq;
    let mut g = c.benchmark_group("rt-migration");
    g.sample_size(10);
    g.bench_function("compact-on-random", |b| {
        b.iter(|| CompactSpine::build(a.clone(), &random).unwrap().stats().migrations)
    });
    g.bench_function("compact-on-repetitive", |b| {
        b.iter(|| CompactSpine::build(a.clone(), &repetitive).unwrap().stats().migrations)
    });
    g.finish();
}

criterion_group!(
    benches,
    target_buffer,
    batched_occurrences,
    layout_query_cost,
    migration_exposure
);
criterion_main!(benches);
