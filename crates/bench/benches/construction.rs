//! Criterion micro-benches: index construction across engines
//! (the micro-scale companion of `exp fig6` / `exp fig7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pagestore::{Lru, MemDevice};
use spine::{CompactSpine, DiskSpine, Spine};
use spine_bench::Dataset;
use suffix_array::SaIndex;
use suffix_tree::SuffixTree;

fn construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    for &n in &[20_000usize, 100_000] {
        let d = Dataset::generate("eco-sim", n as f64 / 3_500_000.0);
        let text = d.seq.clone();
        g.throughput(Throughput::Elements(text.len() as u64));
        g.bench_with_input(BenchmarkId::new("spine-ref", n), &text, |b, t| {
            b.iter(|| Spine::build(d.alphabet.clone(), t).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("spine-compact", n), &text, |b, t| {
            b.iter(|| CompactSpine::build(d.alphabet.clone(), t).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("suffix-tree", n), &text, |b, t| {
            b.iter(|| SuffixTree::build(d.alphabet.clone(), t).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("suffix-array", n), &text, |b, t| {
            b.iter(|| SaIndex::build(d.alphabet.clone(), t))
        });
        g.bench_with_input(BenchmarkId::new("spine-disk", n), &text, |b, t| {
            b.iter(|| {
                DiskSpine::build(
                    d.alphabet.clone(),
                    t,
                    Box::new(MemDevice::new()),
                    64,
                    Box::<Lru>::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
