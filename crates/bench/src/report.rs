//! Result reporting: aligned text tables and JSON records.

use strindex::telemetry::RegistrySnapshot;

/// One row of an experiment table: a label plus named numeric cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (usually the dataset name).
    pub label: String,
    /// `(column name, value)` cells, printed in order.
    pub cells: Vec<(String, f64)>,
}

impl Row {
    /// A row with no cells yet.
    pub fn new(label: impl Into<String>) -> Self {
        Row { label: label.into(), cells: Vec::new() }
    }

    /// Append a cell.
    pub fn cell(mut self, name: &str, value: f64) -> Self {
        self.cells.push((name.to_string(), value));
        self
    }
}

/// Print a titled, column-aligned table; `json` switches to one JSON object
/// per row (for downstream plotting).
pub fn print_table(title: &str, rows: &[Row], json: bool) {
    if json {
        for r in rows {
            println!("{}", serde_json::to_string_like(r));
        }
        return;
    }
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let cols: Vec<&str> = rows[0].cells.iter().map(|(n, _)| n.as_str()).collect();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(4).max(8);
    print!("{:label_w$}", "dataset");
    for c in &cols {
        print!("  {c:>14}");
    }
    println!();
    for r in rows {
        print!("{:label_w$}", r.label);
        for (_, v) in &r.cells {
            if v.abs() >= 1000.0 || (*v != 0.0 && v.fract() == 0.0) {
                print!("  {v:>14.0}");
            } else {
                print!("  {v:>14.4}");
            }
        }
        println!();
    }
}

/// The `exp serve --metrics` deliverable: a plain run and an instrumented run
/// over the same workload, the engine ledger, and the full registry snapshot.
///
/// [`MetricsReport::to_json`] is the machine-readable dump CI parses; the
/// derived checks ([`MetricsReport::stages_bounded`],
/// `ledger_consistent`) are the observability layer's self-tests.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Worker threads in the instrumented engine.
    pub workers: usize,
    /// Queries submitted (and expected to complete).
    pub queries: u64,
    /// Wall time of the instrumented run, seconds.
    pub wall_s: f64,
    /// Wall time of the plain (telemetry-free) run, seconds.
    pub baseline_wall_s: f64,
    /// Ledger: total submissions accepted into the queue.
    pub submitted: u64,
    /// Ledger: queries answered.
    pub completed: u64,
    /// Ledger: queries shed at admission.
    pub shed: u64,
    /// Ledger: queries expired before a worker picked them up.
    pub timed_out: u64,
    /// Ledger: queries lost to worker panics.
    pub failed: u64,
    /// Whether every ledger snapshot obeyed
    /// `accounted + pending + in_flight == submitted`.
    pub ledger_consistent: bool,
    /// Everything the registry held when the run finished.
    pub registry: RegistrySnapshot,
}

impl MetricsReport {
    /// Instrumented-run throughput, queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.wall_s.max(1e-9)
    }

    /// Telemetry overhead: how much slower the instrumented run was than the
    /// plain run, in percent (negative when noise favors the instrumented
    /// run).
    pub fn overhead_pct(&self) -> f64 {
        100.0 * (self.wall_s - self.baseline_wall_s) / self.baseline_wall_s.max(1e-9)
    }

    /// Seconds recorded across the worker-busy stages.
    pub fn busy_stage_s(&self) -> f64 {
        self.registry.busy_stage_seconds()
    }

    /// The physical ceiling on [`Self::busy_stage_s`]: `workers × wall`.
    pub fn busy_bound_s(&self) -> f64 {
        self.workers as f64 * self.wall_s
    }

    /// The stage-timing sanity check: each worker's busy segments are
    /// sequential, so their total cannot exceed `workers × wall` (a small
    /// slack absorbs timer-read skew around the wall-clock edges).
    pub fn stages_bounded(&self) -> bool {
        self.busy_stage_s() <= self.busy_bound_s() * 1.05 + 0.001
    }

    /// Serialize the whole report as one JSON object (registry embedded).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"queries\":{},\"wall_s\":{},\"baseline_wall_s\":{},\
             \"qps\":{},\"overhead_pct\":{},\"submitted\":{},\"completed\":{},\
             \"shed\":{},\"timed_out\":{},\"failed\":{},\"ledger_consistent\":{},\
             \"busy_stage_s\":{},\"busy_bound_s\":{},\"stages_bounded\":{},\
             \"registry\":{}}}",
            self.workers,
            self.queries,
            serde_json::fmt(self.wall_s),
            serde_json::fmt(self.baseline_wall_s),
            serde_json::fmt(self.qps()),
            serde_json::fmt(self.overhead_pct()),
            self.submitted,
            self.completed,
            self.shed,
            self.timed_out,
            self.failed,
            self.ledger_consistent,
            serde_json::fmt(self.busy_stage_s()),
            serde_json::fmt(self.busy_bound_s()),
            self.stages_bounded(),
            self.registry.to_json(),
        )
    }
}

// `serde_json` is not in the sanctioned dependency set; emit the small JSON
// subset we need by hand through serde's data model.
mod serde_json {
    use super::Row;

    /// Render a float as a JSON number (`null` when non-finite).
    pub fn fmt(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Serialize a [`Row`] to a JSON object string.
    pub fn to_string_like(r: &Row) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"label\":\"{}\"", escape(&r.label)));
        for (name, value) in &r.cells {
            s.push_str(&format!(",\"{}\":{}", escape(name), fmt(*value)));
        }
        s.push('}');
        s
    }

    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate_cells() {
        let r = Row::new("eco-sim").cell("time", 1.5).cell("bytes", 12.0);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].0, "time");
    }

    #[test]
    fn json_output_is_well_formed() {
        let r = Row::new("a\"b").cell("x", 1.0).cell("inf", f64::INFINITY);
        let s = serde_json::to_string_like(&r);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\\\""));
        assert!(s.contains("\"inf\":null"));
    }

    #[test]
    fn print_does_not_panic() {
        print_table("t", &[Row::new("x").cell("v", 2.5)], false);
        print_table("t", &[], false);
        print_table("t", &[Row::new("x").cell("v", 2.5)], true);
    }

    #[test]
    fn metrics_report_json_and_bounds() {
        use strindex::telemetry::{MetricsRegistry, Stage};
        let reg = MetricsRegistry::new();
        reg.stage(Stage::IndexScan).record(std::time::Duration::from_millis(3));
        let report = MetricsReport {
            workers: 2,
            queries: 10,
            wall_s: 0.5,
            baseline_wall_s: 0.4,
            submitted: 10,
            completed: 10,
            shed: 0,
            timed_out: 0,
            failed: 0,
            ledger_consistent: true,
            registry: reg.snapshot(),
        };
        // 3 ms of busy stage time against a 2×0.5 s bound.
        assert!(report.stages_bounded());
        assert!((report.overhead_pct() - 25.0).abs() < 1e-9);
        assert!((report.qps() - 20.0).abs() < 1e-9);
        let j = report.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ledger_consistent\":true"));
        assert!(j.contains("\"registry\":{"));
        assert!(j.contains("stage.index_scan"));
    }
}
