//! Result reporting: aligned text tables and JSON records.

/// One row of an experiment table: a label plus named numeric cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (usually the dataset name).
    pub label: String,
    /// `(column name, value)` cells, printed in order.
    pub cells: Vec<(String, f64)>,
}

impl Row {
    /// A row with no cells yet.
    pub fn new(label: impl Into<String>) -> Self {
        Row { label: label.into(), cells: Vec::new() }
    }

    /// Append a cell.
    pub fn cell(mut self, name: &str, value: f64) -> Self {
        self.cells.push((name.to_string(), value));
        self
    }
}

/// Print a titled, column-aligned table; `json` switches to one JSON object
/// per row (for downstream plotting).
pub fn print_table(title: &str, rows: &[Row], json: bool) {
    if json {
        for r in rows {
            println!("{}", serde_json::to_string_like(r));
        }
        return;
    }
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let cols: Vec<&str> = rows[0].cells.iter().map(|(n, _)| n.as_str()).collect();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(4).max(8);
    print!("{:label_w$}", "dataset");
    for c in &cols {
        print!("  {c:>14}");
    }
    println!();
    for r in rows {
        print!("{:label_w$}", r.label);
        for (_, v) in &r.cells {
            if v.abs() >= 1000.0 || (*v != 0.0 && v.fract() == 0.0) {
                print!("  {v:>14.0}");
            } else {
                print!("  {v:>14.4}");
            }
        }
        println!();
    }
}

// `serde_json` is not in the sanctioned dependency set; emit the small JSON
// subset we need by hand through serde's data model.
mod serde_json {
    use super::Row;

    /// Serialize a [`Row`] to a JSON object string.
    pub fn to_string_like(r: &Row) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"label\":\"{}\"", escape(&r.label)));
        for (name, value) in &r.cells {
            s.push_str(&format!(",\"{}\":{}", escape(name), fmt(*value)));
        }
        s.push('}');
        s
    }

    fn fmt(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_accumulate_cells() {
        let r = Row::new("eco-sim").cell("time", 1.5).cell("bytes", 12.0);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].0, "time");
    }

    #[test]
    fn json_output_is_well_formed() {
        let r = Row::new("a\"b").cell("x", 1.0).cell("inf", f64::INFINITY);
        let s = serde_json::to_string_like(&r);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\\\""));
        assert!(s.contains("\"inf\":null"));
    }

    #[test]
    fn print_does_not_panic() {
        print_table("t", &[Row::new("x").cell("v", 2.5)], false);
        print_table("t", &[], false);
        print_table("t", &[Row::new("x").cell("v", 2.5)], true);
    }
}
