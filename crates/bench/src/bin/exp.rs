//! `exp` — regenerate every table and figure of the SPINE paper.
//!
//! One subcommand per experiment (see DESIGN.md §3 for the index):
//!
//! ```text
//! exp table2|table3|table4|fig6|table5|table6|fig7|fig8|table7|protein|space|buffering|serve|faults|verify|figures|explain|bench-snapshot|scale|all
//!     [PATTERN]        `explain` only: the pattern to trace (default ACA)
//!     [--scale F]      dataset scale factor vs the paper's lengths (default 0.02)
//!     [--threshold N]  maximal-match length threshold (default 20)
//!     [--workers N]    worker threads for the `serve` experiment (default 4)
//!     [--quick]        stride the `faults` crashpoint sweep (CI-sized);
//!                      shrink the `--metrics`/`bench-snapshot`/`explain`
//!                      workloads likewise
//!     [--json]         machine-readable row output (`explain`: QueryTrace JSON)
//!     [--metrics]      `serve` only: instrumented run with the telemetry
//!                      registry attached; prints a JSON MetricsReport and
//!                      asserts the ledger + stage-timing invariants
//!     [--prom]         `serve --metrics` only: print the registry in
//!                      Prometheus text exposition format (self-validated)
//!     [--chrome-trace] `serve --metrics` only: print the span ring as a
//!                      Chrome trace_event JSON document
//!     [--out PATH]     `bench-snapshot` only: snapshot path (default BENCH_serve.json)
//!     [--check PATH]   `bench-snapshot` only: compare against a committed
//!                      baseline; exit 1 on a >20 % regression
//!     [--out-build PATH]   `bench-snapshot` only: construction snapshot path
//!                          (default BENCH_build.json)
//!     [--check-build PATH] `bench-snapshot` only: construction baseline to
//!                          regress against; exit 1 on a >20 % regression
//!     [--http PORT]    `serve` only: expose /metrics, /health and /explain
//!                      over HTTP until /quit (port 0 picks an ephemeral one)
//!     [--flaky]        `serve --http` only: inject transient faults into the
//!                      disk probe index so /health flips to 503
//!     [--orphan]       `serve --http` only: plant an uncommitted orphan
//!                      segment file before recovery so /health reports 503
//!     [--sync-file]    use a real file device with fsync-per-write for disk runs
//!     [--seed N]       `scale` only: run seed every generated stream derives
//!                      from (default 0x5915E; hex accepted with 0x prefix)
//!     [--corpus KIND]  `scale` only: dna|protein|logtext (default dna)
//! ```
//!
//! `exp scale` is the load harness (DESIGN.md §15): it streams a synthetic
//! corpus into every in-repo engine, sweeps closed-loop concurrency and
//! open-loop offered rates per query mix, and writes the curves to
//! `--out` (default BENCH_scale.json). `--check PATH` gates against a
//! committed baseline: curve coverage always, peak throughput when the run
//! fingerprint matches. `--quick` shrinks everything to CI size.
//!
//! `exp http-get ADDR/PATH [--prom]` is the matching std-only client
//! (CI's curl replacement); `--prom` additionally validates the body as
//! Prometheus text exposition.
//!
//! Numbers are expected to reproduce the paper's *shape* (who wins, by what
//! factor), not its absolute 2004-hardware values; EXPERIMENTS.md records
//! both sides.

use pagestore::{
    Clock, EvictionPolicy, Fifo, FileDevice, Lru, MemDevice, PageDevice, PrefixPriority, PAGE_SIZE,
};
use spine::{CompactSpine, DiskSpine, Spine};
use spine_bench::{dna_presets, print_table, protein_presets, query_for, secs, time, Dataset, Row};
use strindex::MatchingIndex;
use suffix_array::SaIndex;
use suffix_tree::{DiskSuffixTree, SuffixTree};

#[derive(Clone)]
struct Opts {
    scale: f64,
    threshold: usize,
    workers: usize,
    quick: bool,
    json: bool,
    metrics: bool,
    prom: bool,
    chrome_trace: bool,
    sync_file: bool,
    /// `explain`: the pattern to trace (ASCII, in the dataset's alphabet).
    pattern: Option<String>,
    /// `bench-snapshot`: where to write the snapshot JSON.
    out: Option<String>,
    /// `bench-snapshot`: baseline snapshot to regress against.
    check: Option<String>,
    /// `bench-snapshot`: where to write the construction snapshot JSON.
    out_build: Option<String>,
    /// `bench-snapshot`: construction baseline to regress against.
    check_build: Option<String>,
    /// `serve`: port for the live monitoring endpoint (0 = ephemeral).
    http: Option<u16>,
    /// `serve --http`: wrap the disk probe index's device in a
    /// `FlakyDevice` so `/health` flips to 503 once the SLO burns.
    flaky: bool,
    /// `serve --http`: plant an uncommitted orphan segment file in the
    /// segment store before recovery, so `/health` reports 503 until an
    /// operator cleans it up.
    orphan: bool,
    /// `scale`: run seed all generated streams derive from.
    seed: u64,
    /// `scale`: corpus family (dna|protein|logtext).
    corpus: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 0.02,
            threshold: 20,
            workers: 4,
            quick: false,
            json: false,
            metrics: false,
            prom: false,
            chrome_trace: false,
            sync_file: false,
            pattern: None,
            out: None,
            check: None,
            out_build: None,
            check_build: None,
            http: None,
            flaky: false,
            orphan: false,
            seed: spine_bench::rng::DEFAULT_RUN_SEED,
            corpus: None,
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage());
    let mut opts = Opts::default();
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scale" => {
                opts.scale = rest[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--threshold" => {
                opts.threshold = rest[i + 1].parse().expect("--threshold takes an int");
                i += 2;
            }
            "--workers" => {
                opts.workers = rest[i + 1].parse().expect("--workers takes an int");
                i += 2;
            }
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            "--metrics" => {
                opts.metrics = true;
                i += 1;
            }
            "--prom" => {
                opts.prom = true;
                i += 1;
            }
            "--chrome-trace" => {
                opts.chrome_trace = true;
                i += 1;
            }
            "--out" => {
                opts.out = Some(rest[i + 1].clone());
                i += 2;
            }
            "--check" => {
                opts.check = Some(rest[i + 1].clone());
                i += 2;
            }
            "--out-build" => {
                opts.out_build = Some(rest[i + 1].clone());
                i += 2;
            }
            "--check-build" => {
                opts.check_build = Some(rest[i + 1].clone());
                i += 2;
            }
            "--http" => {
                opts.http = Some(rest[i + 1].parse().expect("--http takes a port number"));
                i += 2;
            }
            "--flaky" => {
                opts.flaky = true;
                i += 1;
            }
            "--orphan" => {
                opts.orphan = true;
                i += 1;
            }
            "--sync-file" => {
                opts.sync_file = true;
                i += 1;
            }
            "--seed" => {
                let raw = &rest[i + 1];
                opts.seed = raw
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| raw.parse())
                    .expect("--seed takes an integer (0x prefix for hex)");
                i += 2;
            }
            "--corpus" => {
                opts.corpus = Some(rest[i + 1].clone());
                i += 2;
            }
            other if !other.starts_with('-') && opts.pattern.is_none() => {
                opts.pattern = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    run(&cmd, &opts);
}

fn usage() -> ! {
    eprintln!(
        "usage: exp <table2|table3|table4|fig6|table5|table6|fig7|fig8|table7|protein|space|buffering|serve|faults|verify|figures|explain|bench-snapshot|scale|http-get|all> \
         [PATTERN] [--scale F] [--threshold N] [--workers N] [--quick] [--json] [--metrics] \
         [--prom] [--chrome-trace] [--out PATH] [--check PATH] [--out-build PATH] \
         [--check-build PATH] [--http PORT] [--flaky] [--orphan] [--sync-file] \
         [--seed N] [--corpus dna|protein|logtext]"
    );
    std::process::exit(2);
}

fn run(cmd: &str, opts: &Opts) {
    match cmd {
        "table2" => table2(opts),
        "table3" => table3(opts),
        "table4" => table4(opts),
        "fig6" => fig6(opts),
        "table5" => table5_6(opts, false),
        "table6" => table5_6(opts, true),
        "fig7" => fig7(opts),
        "fig8" => fig8(opts),
        "table7" => table7(opts),
        "protein" => protein(opts),
        "space" => space(opts),
        "buffering" => buffering(opts),
        "serve" => serve(opts),
        "faults" => faults(opts),
        "verify" => verify(opts),
        "figures" => figures(opts),
        "explain" => explain(opts),
        "bench-snapshot" => bench_snapshot(opts),
        "scale" => scale_cmd(opts),
        "http-get" => http_get_cmd(opts),
        "all" => {
            for c in [
                "table2",
                "table3",
                "table4",
                "fig6",
                "table5",
                "table6",
                "fig7",
                "fig8",
                "table7",
                "protein",
                "space",
                "buffering",
            ] {
                run(c, opts);
            }
        }
        _ => usage(),
    }
}

/// Datasets for the DNA experiments at the requested scale.
fn dna_data(opts: &Opts) -> Vec<Dataset> {
    dna_presets().iter().map(|n| Dataset::generate(n, opts.scale)).collect()
}

// ---------------------------------------------------------------------------
// Table 2: per-node space of the naive layout.
// ---------------------------------------------------------------------------
fn table2(opts: &Opts) {
    let d = Dataset::generate("eco-sim", opts.scale.min(0.01));
    let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
    let cost = s.node_cost();
    let c = CompactSpine::build(d.alphabet.clone(), &d.seq).unwrap();
    let rows = vec![Row::new("dna-node")
        .cell("naive-worst-B", cost.naive_worst_case)
        .cell("paper-naive-B", 48.25)
        .cell("compact-B/char", c.layout_bytes_per_char())
        .cell("paper-opt-B", 12.0)];
    print_table("Table 2 — naive node cost vs optimized layout (bytes)", &rows, opts.json);
}

// ---------------------------------------------------------------------------
// Table 3: maximum numeric label values.
// ---------------------------------------------------------------------------
fn table3(opts: &Opts) {
    // Paper maxima (full-size genomes): ECO 1785, CEL 8187, HC21 21844,
    // HC19 12371 — all far below 2^16.
    let paper = [1785.0, 8187.0, 21844.0, 12371.0];
    let mut rows = Vec::new();
    for (d, p) in dna_data(opts).iter().zip(paper) {
        let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        let m = s.label_maxima();
        rows.push(
            Row::new(d.name)
                .cell("len-M", d.mega())
                .cell("max-PT", m.max_pt as f64)
                .cell("max-LEL", m.max_lel as f64)
                .cell("max-PRT", m.max_prt as f64)
                .cell("fits-u16", m.fits_u16() as u8 as f64)
                .cell("paper-max", p),
        );
    }
    print_table("Table 3 — maximum label values", &rows, opts.json);
}

// ---------------------------------------------------------------------------
// Table 4: rib fan-out distribution.
// ---------------------------------------------------------------------------
fn table4(opts: &Opts) {
    // Paper: 1-edge 13–15 %, 2-edge 7–9 %, 3-edge 5–6 %, 4-edge 3–4 %,
    // total 28–33 %.
    let mut rows = Vec::new();
    for d in dna_data(opts) {
        let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        let dist = s.rib_distribution();
        rows.push(
            Row::new(d.name)
                .cell("1-edge-%", dist.percent(1))
                .cell("2-edge-%", dist.percent(2))
                .cell("3-edge-%", dist.percent(3))
                .cell("4+-edge-%", (4..dist.by_fanout.len()).map(|k| dist.percent(k)).sum())
                .cell("total-%", dist.percent_with_edges())
                .cell("extrib-collisions", s.extrib_collisions() as f64),
        );
    }
    print_table("Table 4 — rib distribution across nodes (paper total: 28–33 %)", &rows, opts.json);
}

// ---------------------------------------------------------------------------
// Figure 6: in-memory construction times.
// ---------------------------------------------------------------------------
fn fig6(opts: &Opts) {
    let mut rows = Vec::new();
    for d in dna_data(opts) {
        let (st, t_st) = time(|| SuffixTree::build(d.alphabet.clone(), &d.seq).unwrap());
        let (sp, t_sp) = time(|| Spine::build(d.alphabet.clone(), &d.seq).unwrap());
        let (cp, t_cp) = time(|| CompactSpine::build(d.alphabet.clone(), &d.seq).unwrap());
        std::hint::black_box((&st, &sp, &cp));
        rows.push(
            Row::new(d.name)
                .cell("len-M", d.mega())
                .cell("ST-s", secs(t_st))
                .cell("SPINE-s", secs(t_sp))
                .cell("SPINE-compact-s", secs(t_cp))
                .cell("ST/SPINE", secs(t_st) / secs(t_sp).max(1e-12)),
        );
    }
    print_table(
        "Figure 6 — in-memory construction times (paper: SPINE marginally faster; ST OOMs first)",
        &rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Tables 5 & 6: in-memory substring matching times and nodes checked.
// ---------------------------------------------------------------------------
fn table5_6(opts: &Opts, nodes_checked: bool) {
    let mut rows = Vec::new();
    for d in dna_data(opts) {
        let query = query_for(&d);
        let st = SuffixTree::build(d.alphabet.clone(), &d.seq).unwrap();
        let sp = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        st.counters().reset();
        sp.counters().reset();
        let (m_st, t_st) = time(|| st.maximal_matches(&query, opts.threshold));
        let (m_sp, t_sp) = time(|| sp.maximal_matches(&query, opts.threshold));
        assert_eq!(m_st, m_sp, "engines must agree on {}", d.name);
        if nodes_checked {
            rows.push(
                Row::new(d.name)
                    .cell("ST-knodes", st.counters().nodes_checked() as f64 / 1e3)
                    .cell("SPINE-knodes", sp.counters().nodes_checked() as f64 / 1e3)
                    .cell(
                        "ST/SPINE",
                        st.counters().nodes_checked() as f64
                            / sp.counters().nodes_checked().max(1) as f64,
                    ),
            );
        } else {
            rows.push(
                Row::new(d.name)
                    .cell("matches", m_sp.len() as f64)
                    .cell("ST-s", secs(t_st))
                    .cell("SPINE-s", secs(t_sp))
                    .cell("SPINE-gain-%", 100.0 * (1.0 - secs(t_sp) / secs(t_st).max(1e-12))),
            );
        }
    }
    if nodes_checked {
        print_table(
            "Table 6 — nodes checked during matching (paper: SPINE ~40 % fewer)",
            &rows,
            opts.json,
        );
    } else {
        print_table(
            "Table 5 — substring matching times, in memory (paper: SPINE ~30 % faster)",
            &rows,
            opts.json,
        );
    }
}

// ---------------------------------------------------------------------------
// Disk helpers.
// ---------------------------------------------------------------------------
fn device(opts: &Opts, tag: &str) -> Box<dyn PageDevice> {
    if opts.sync_file {
        let dir = std::env::temp_dir().join("spine-exp");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{tag}-{}.pages", std::process::id()));
        Box::new(FileDevice::create(path, true).expect("file device"))
    } else {
        Box::new(MemDevice::new())
    }
}

/// Pool size: a tenth of the pages the index will need (memory pressure, as
/// in a disk-resident deployment).
fn pool_pages(n_chars: usize, record_size: usize) -> usize {
    let per_page = PAGE_SIZE / record_size;
    (n_chars / per_page / 10).max(8)
}

/// Approximate record sizes of the generic disk layouts (DNA).
const SPINE_REC: usize = 80;
const ST_REC: usize = 50;
/// Approximate per-node footprint of the sealed layout-v2 pages (varint
/// records plus the packed label store, DNA); used only to size buffer
/// pools at the same *relative* memory pressure as the v1 runs.
const SPINE_V2_REC: usize = 9;

// ---------------------------------------------------------------------------
// Figure 7: on-disk construction.
// ---------------------------------------------------------------------------
fn fig7(opts: &Opts) {
    let scale = opts.scale * 0.25; // disk runs are slower; keep them bounded
    let mut rows = Vec::new();
    for name in dna_presets().iter().take(3) {
        // The paper's Figure 7 shows ECO/CEL/HC21.
        let d = Dataset::generate(name, scale);
        let sp_pool = pool_pages(d.seq.len(), SPINE_REC);
        let st_pool = pool_pages(2 * d.seq.len(), ST_REC);
        let (sp, t_sp) = time(|| {
            DiskSpine::build(
                d.alphabet.clone(),
                &d.seq,
                device(opts, &format!("spine-{name}")),
                sp_pool,
                Box::<Lru>::default(),
            )
            .unwrap()
        });
        let (st, t_st) = time(|| {
            DiskSuffixTree::build(
                d.alphabet.clone(),
                &d.seq,
                device(opts, &format!("st-{name}")),
                st_pool,
                Box::<Lru>::default(),
            )
            .unwrap()
        });
        let (sp_r, sp_w) = sp.io_counts();
        let (st_r, st_w) = st.io_counts();
        rows.push(
            Row::new(d.name)
                .cell("len-M", d.mega())
                .cell("ST-s", secs(t_st))
                .cell("SPINE-s", secs(t_sp))
                .cell("ST-kIO", (st_r + st_w) as f64 / 1e3)
                .cell("SPINE-kIO", (sp_r + sp_w) as f64 / 1e3)
                .cell("IO-ratio", (st_r + st_w) as f64 / (sp_r + sp_w).max(1) as f64),
        );
    }
    print_table(
        "Figure 7 — on-disk construction (paper: SPINE ~2x faster; smaller nodes + locality)",
        &rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Figure 8: link-destination distribution over the backbone.
// ---------------------------------------------------------------------------
fn fig8(opts: &Opts) {
    let mut rows = Vec::new();
    for d in dna_data(opts).into_iter().take(3) {
        let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        let h = s.link_distribution(6);
        let mut row = Row::new(d.name);
        for b in 0..6 {
            row = row.cell(&format!("bucket{b}-%"), h.percent(b));
        }
        row = row.cell("upstream-heavy", h.upstream_heavy() as u8 as f64);
        rows.push(row);
    }
    print_table(
        "Figure 8 — link destinations over the backbone (paper: monotone decay toward the tail)",
        &rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Table 7: on-disk substring matching.
// ---------------------------------------------------------------------------
fn table7(opts: &Opts) {
    let scale = opts.scale * 0.25;
    let mut rows = Vec::new();
    for name in dna_presets().iter().take(3) {
        let d = Dataset::generate(name, scale);
        let query = query_for(&d);
        let sp = DiskSpine::build(
            d.alphabet.clone(),
            &d.seq,
            device(opts, &format!("m-spine-{name}")),
            pool_pages(d.seq.len(), SPINE_REC),
            Box::<Lru>::default(),
        )
        .unwrap();
        let st = DiskSuffixTree::build(
            d.alphabet.clone(),
            &d.seq,
            device(opts, &format!("m-st-{name}")),
            pool_pages(2 * d.seq.len(), ST_REC),
            Box::<Lru>::default(),
        )
        .unwrap();
        let (m_st, t_st) = time(|| st.maximal_matches(&query, opts.threshold));
        let (m_sp, t_sp) = time(|| sp.maximal_matches(&query, opts.threshold));
        assert_eq!(m_st, m_sp, "disk engines must agree on {}", d.name);
        rows.push(
            Row::new(d.name)
                .cell("matches", m_sp.len() as f64)
                .cell("ST-s", secs(t_st))
                .cell("SPINE-s", secs(t_sp))
                .cell("speedup-%", 100.0 * (1.0 - secs(t_sp) / secs(t_st).max(1e-12))),
        );
    }
    print_table("Table 7 — substring matching on disk (paper: ~50 % speedup)", &rows, opts.json);
}

// ---------------------------------------------------------------------------
// §5.2: protein results.
// ---------------------------------------------------------------------------
fn protein(opts: &Opts) {
    let mut rows = Vec::new();
    let mut per_m = Vec::new();
    for name in protein_presets() {
        let d = Dataset::generate(name, opts.scale);
        let (s, t) = time(|| Spine::build(d.alphabet.clone(), &d.seq).unwrap());
        let m = s.label_maxima();
        let dist = s.rib_distribution();
        per_m.push(secs(t) / d.mega());
        rows.push(
            Row::new(d.name)
                .cell("len-M", d.mega())
                .cell("max-label", m.max_pt.max(m.max_lel) as f64)
                .cell("ribbed-%", dist.percent_with_edges())
                .cell("build-s", secs(t))
                .cell("s-per-M", secs(t) / d.mega()),
        );
    }
    // Linear scaling check: seconds-per-megaresidue should be roughly flat.
    let spread = per_m.iter().cloned().fold(f64::MIN, f64::max)
        / per_m.iter().cloned().fold(f64::MAX, f64::min);
    rows.push(Row::new("scaling").cell("max/min-s-per-M", spread));
    print_table(
        "§5.2 — proteins: smaller labels, <30 % ribbed nodes, linear build scaling",
        &rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Space: bytes per indexed character across engines.
// ---------------------------------------------------------------------------
fn space(opts: &Opts) {
    let mut rows = Vec::new();
    for d in dna_data(opts).into_iter().take(3) {
        let st = SuffixTree::build(d.alphabet.clone(), &d.seq).unwrap();
        let sp = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        let cp = CompactSpine::build(d.alphabet.clone(), &d.seq).unwrap();
        let sa = SaIndex::build(d.alphabet.clone(), &d.seq);
        let n = d.seq.len() as f64;
        rows.push(
            Row::new(d.name)
                .cell("ST-packed-B/c", st.layout_bytes_per_char())
                .cell("ST-heap-B/c", st.heap_bytes() as f64 / n)
                .cell("SPINE-ref-B/c", sp.heap_bytes() as f64 / n)
                .cell("SPINE-compact-B/c", cp.layout_bytes_per_char())
                .cell("SA-B/c", sa.heap_bytes() as f64 / n)
                .cell("migrations", cp.stats().migrations as f64)
                // §6.1's capacity claim: with a fixed budget (1 GB, the
                // paper's machine), how many Mbp does each index hold?
                .cell("ST-Mbp/GB", 1e9 / st.layout_bytes_per_char() / 1e6)
                .cell("SPINE-Mbp/GB", 1e9 / cp.layout_bytes_per_char() / 1e6),
        );
    }
    print_table(
        "Space — bytes per indexed character (paper: compact SPINE <12, ST ~17; SPINE ≈30 % more capacity)",
        &rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Buffering policies under memory pressure (§6.2 recommendation).
// ---------------------------------------------------------------------------
fn buffering(opts: &Opts) {
    let d = Dataset::generate("cel-sim", opts.scale * 0.25);
    // An unrelated random query: matches stay short, so the search
    // constantly chases links into the upstream region (Figure 8's
    // concentration) — the access pattern the paper's policy targets.
    let query = genseq::iid_sequence(
        &d.alphabet,
        d.seq.len(),
        &mut spine_bench::rng::stream(spine_bench::rng::DEFAULT_RUN_SEED, "buffering.query", 0),
    );
    let policies: Vec<Box<dyn Fn() -> Box<dyn EvictionPolicy>>> = vec![
        Box::new(|| Box::<Lru>::default()),
        Box::new(|| Box::<Fifo>::default()),
        Box::new(|| Box::<Clock>::default()),
        Box::new(|| Box::<PrefixPriority>::default()),
    ];
    let mut rows = Vec::new();
    for make in policies {
        // Severe pressure: 2 % of the index resident.
        let per_page = PAGE_SIZE / SPINE_REC;
        let pool = (d.seq.len() / per_page / 50).max(4);
        let sp =
            DiskSpine::build(d.alphabet.clone(), &d.seq, Box::new(MemDevice::new()), pool, make())
                .unwrap();
        let name = {
            // Probe the policy name through a throwaway instance.
            make().name().to_string()
        };
        // Stress the link-chain access pattern (where Figure 8's locality
        // lives): matching statistics only, no sequential occurrence scan.
        let (reads0, _) = sp.io_counts();
        let (h0, m0) = sp.pool_counts();
        let (_, t) = time(|| sp.matching_statistics(&query));
        let (reads1, _) = sp.io_counts();
        let (h1, m1) = sp.pool_counts();
        let dh = (h1 - h0) as f64;
        let dm = (m1 - m0) as f64;
        rows.push(
            Row::new(name)
                .cell("pool-pages", pool as f64)
                .cell("search-s", secs(t))
                .cell("search-kreads", (reads1 - reads0) as f64 / 1e3)
                .cell("search-hit-rate", dh / (dh + dm).max(1.0)),
        );
    }
    print_table(
        "Buffering — eviction policies under pressure (paper: keep the top of the LT resident)",
        &rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Serve: concurrent batched query serving over one shared index — the
// "integration with database engines" deployment (§6). Compares a serial
// one-scan-per-pattern loop against the worker-pool engine, which coalesces
// admitted patterns into shared backbone scans.
// ---------------------------------------------------------------------------
/// The `serve` traffic: window patterns (hits, occurrence-heavy) plus
/// reversed variants (mostly misses) — each submitted several times, as a
/// query server would see repeated traffic.
fn serve_workload(d: &Dataset, windows: usize, cycles: usize) -> Vec<Vec<strindex::Code>> {
    let mut pats: Vec<Vec<strindex::Code>> = (0..windows)
        .map(|i| d.seq[i * 883 % (d.seq.len() - 20)..][..12 + i % 8].to_vec())
        .collect();
    for i in 0..windows / 4 {
        let mut p = pats[i].clone();
        p.reverse();
        pats.push(p);
    }
    pats.iter().cycle().take(pats.len() * cycles).cloned().collect()
}

fn serve(opts: &Opts) {
    use spine::engine::{EngineConfig, QueryEngine};
    use spine::occurrences::find_all_ends;
    use std::sync::Arc;

    if let Some(port) = opts.http {
        return serve_http(opts, port);
    }
    if opts.metrics {
        return serve_metrics(opts);
    }

    let d = Dataset::generate("hc21-sim", opts.scale);
    let index = Arc::new(Spine::build(d.alphabet.clone(), &d.seq).unwrap());
    let workload = serve_workload(&d, 256, 4);

    let (serial_hits, t_serial) =
        time(|| workload.iter().map(|p| find_all_ends(index.as_ref(), p).len()).sum::<usize>());
    let qps_serial = workload.len() as f64 / secs(t_serial).max(1e-9);

    let mut rows = vec![Row::new("serial")
        .cell("workers", 1.0)
        .cell("queries", workload.len() as f64)
        .cell("qps", qps_serial)
        .cell("speedup", 1.0)
        .cell("mean-batch", 1.0)];

    for workers in [1, 2, opts.workers] {
        let cfg = EngineConfig { workers, batch_max: 64, ..Default::default() };
        let engine = QueryEngine::new(Arc::clone(&index), cfg);
        let (results, t) = time(|| {
            for admitted in engine.submit_batch(workload.iter().cloned()) {
                admitted.expect("default shed policy blocks rather than rejecting");
            }
            engine.drain()
        });
        let hits: usize = results.iter().map(|r| r.expect_ends().len()).sum();
        assert_eq!(hits, serial_hits, "engine answers diverge from serial scan");
        let m = engine.metrics();
        let qps = workload.len() as f64 / secs(t).max(1e-9);
        rows.push(
            Row::new(format!("engine-w{workers}"))
                .cell("workers", workers as f64)
                .cell("queries", workload.len() as f64)
                .cell("qps", qps)
                .cell("speedup", qps / qps_serial)
                .cell("mean-batch", m.mean_batch()),
        );
    }
    print_table(
        "Serve — batched-concurrent throughput vs serial scan (hc21-sim)",
        &rows,
        opts.json,
    );

    // The disk engine's hot-page tier, before and after, at one fixed pool
    // size: plain sealed file under LRU vs heat-clustered file under the
    // scan-resistant policy with the hottest pages pinned and scan prefetch
    // on. Pages/query is the honest device-fetch count (prefetch included).
    let dd = Dataset::generate("eco-sim", opts.scale.min(0.005));
    let pool = pool_pages(dd.seq.len(), SPINE_V2_REC);
    let scratch = DiskSpine::build(
        dd.alphabet.clone(),
        &dd.seq,
        Box::new(MemDevice::new()),
        64,
        Box::<Lru>::default(),
    )
    .unwrap();
    let probes: Vec<&[strindex::Code]> =
        (0..dd.seq.len().saturating_sub(16)).step_by(997).map(|i| &dd.seq[i..i + 12]).collect();

    let plain = scratch.seal_to(Box::new(MemDevice::new()), pool, Box::<Lru>::default()).unwrap();
    let mut heat = spine::Heatmap::new(dd.seq.len());
    for w in &probes {
        heat.add(&plain.explain(w));
    }
    let hot = spine::HotSet::from_heatmap(&heat, 512);
    let tiered = scratch
        .seal_to_clustered(
            Box::new(MemDevice::new()),
            pool,
            Box::<pagestore::SegmentedLru>::default(),
            &hot,
        )
        .unwrap();
    let pinned = tiered.pin_hot(&hot, (pool / 4).max(1)).unwrap();

    let mut disk_rows = Vec::new();
    for (name, engine) in [("plain-lru", &plain), ("hot-tier", &tiered)] {
        let before = engine.pool_stats();
        let hits: usize = probes
            .iter()
            .map(|w| engine.try_find_all(w).expect("MemDevice cannot fail").len())
            .sum();
        std::hint::black_box(hits);
        let after = engine.pool_stats();
        let misses = after.misses - before.misses;
        let accesses = (after.hits - before.hits) + misses;
        disk_rows.push(
            Row::new(name)
                .cell("pool-pages", pool as f64)
                .cell("queries", probes.len() as f64)
                .cell("pages/query", misses as f64 / probes.len().max(1) as f64)
                .cell("hit-rate-%", 100.0 * (accesses - misses) as f64 / accesses.max(1) as f64)
                .cell("pinned", if name == "hot-tier" { pinned as f64 } else { 0.0 })
                .cell("prefetch-hits", (after.prefetch_hits - before.prefetch_hits) as f64),
        );
    }
    print_table(
        "Serve — disk engine hot-page tier at fixed pool size (eco-sim)",
        &disk_rows,
        opts.json,
    );
}

// ---------------------------------------------------------------------------
// Serve --metrics: the observability layer exercised end to end. Plain and
// telemetry-attached engines answer the same workload; the run reports
// telemetry overhead, checks the ledger invariant on the final snapshot, and
// checks that the per-stage busy time respects the `workers × wall` ceiling.
// Output is one JSON MetricsReport (or, with `--prom`/`--chrome-trace`, the
// registry in those export formats).
//
// Overhead is measured as median-of-3: a pinned warmup phase first faults
// the index and workload into cache, then three plain and three instrumented
// runs each take the median wall time. A single-sample comparison regularly
// swung past ±2 % on scheduler noise alone; the median pair is stable.
// ---------------------------------------------------------------------------
fn serve_metrics(opts: &Opts) {
    use spine::engine::{EngineConfig, QueryEngine};
    use spine::telemetry::{MetricsRegistry, Stage};
    use spine_bench::MetricsReport;
    use std::sync::Arc;

    let scale = if opts.quick { opts.scale * 0.25 } else { opts.scale };
    let cycles = if opts.quick { 2 } else { 4 };
    let d = Dataset::generate("hc21-sim", scale);
    let index = Arc::new(Spine::build(d.alphabet.clone(), &d.seq).unwrap());
    let workload = serve_workload(&d, 256, cycles);
    let cfg = EngineConfig { workers: opts.workers, batch_max: 64, ..Default::default() };

    let run = |engine: &QueryEngine<Spine>| {
        let (results, t) = time(|| {
            for admitted in engine.submit_batch(workload.iter().cloned()) {
                admitted.expect("default shed policy blocks rather than rejecting");
            }
            engine.drain()
        });
        let hits: usize = results.iter().map(|r| r.expect_ends().len()).sum();
        (hits, t)
    };

    // Pinned warmup phase (untimed, fixed pass count): fault the index and
    // workload into cache so no timed run pays the cold-start cost.
    const WARMUP_PASSES: usize = 2;
    for _ in 0..WARMUP_PASSES {
        run(&QueryEngine::new(Arc::clone(&index), cfg));
    }

    const RUNS: usize = 3;

    // Baseline: three plain runs, median wall time.
    let mut plain_walls = Vec::with_capacity(RUNS);
    let mut plain_hits = None;
    for _ in 0..RUNS {
        let (hits, t) = run(&QueryEngine::new(Arc::clone(&index), cfg));
        assert_eq!(*plain_hits.get_or_insert(hits), hits, "plain runs diverge");
        plain_walls.push(secs(t));
    }
    plain_walls.sort_by(f64::total_cmp);
    let baseline_wall = plain_walls[RUNS / 2];

    // Instrumented: three runs, each with a fresh registry + engine so the
    // per-run invariants stay exact; keep the median run's snapshot. The
    // flight-recorder sampler ticks during each timed run so the reported
    // overhead covers the full observability stack, ring included.
    let mut inst = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = QueryEngine::with_telemetry(Arc::clone(&index), cfg, Arc::clone(&registry));
        let series = Arc::new(spine::telemetry::TimeSeries::new(256));
        let sampler = spine::telemetry::spawn_sampler(
            Arc::clone(&series),
            Arc::clone(&registry),
            std::time::Duration::from_millis(50),
        );
        let (hits, t) = run(&engine);
        sampler.stop();
        assert!(series.ticks() >= 1, "sampler must capture at least the immediate tick");
        assert_eq!(Some(hits), plain_hits, "instrumented engine diverges from plain engine");

        let m = engine.metrics();
        assert!(m.is_consistent(), "ledger invariant violated: {m:?}");
        assert_eq!(m.completed, workload.len() as u64, "not every query completed");

        let snap = registry.snapshot();
        for stage in [Stage::BatchFormation, Stage::IndexScan, Stage::ResultMerge] {
            let h = snap.stage(stage).expect("stage histogram registered");
            assert!(!h.is_empty(), "empty histogram for {}", stage.metric_name());
        }
        let lat = snap.histogram("engine.query_latency").expect("latency histogram");
        assert_eq!(lat.count, workload.len() as u64, "latency histogram misses queries");
        inst.push((secs(t), m, snap));
    }
    inst.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (wall, m, snap) = inst.swap_remove(RUNS / 2);

    let report = MetricsReport {
        workers: opts.workers,
        queries: workload.len() as u64,
        wall_s: wall,
        baseline_wall_s: baseline_wall,
        submitted: m.submitted,
        completed: m.completed,
        shed: m.shed,
        timed_out: m.timed_out,
        failed: m.failed,
        ledger_consistent: m.is_consistent(),
        registry: snap,
    };
    assert!(
        report.stages_bounded(),
        "stage timings exceed workers × wall: busy {:.4}s > bound {:.4}s",
        report.busy_stage_s(),
        report.busy_bound_s()
    );
    if opts.prom {
        let text = report.registry.to_prometheus("spine");
        strindex::telemetry::validate_prometheus_text(&text)
            .expect("generated Prometheus exposition must self-validate");
        print!("{text}");
    }
    if opts.chrome_trace {
        println!("{}", report.registry.to_chrome_trace());
    }
    if !opts.prom && !opts.chrome_trace {
        println!("{}", report.to_json());
    }
    eprintln!(
        "OK: {} queries, {:.0} qps, telemetry overhead {:+.1}% (median of {RUNS}), \
         busy stages {:.4}s <= {:.4}s",
        report.queries,
        report.qps(),
        report.overhead_pct(),
        report.busy_stage_s(),
        report.busy_bound_s()
    );
}

// ---------------------------------------------------------------------------
// Serve --http: the live monitoring endpoint. One hc21-sim engine with the
// full observability stack (registry + sliding window + SLO tracker) and one
// small disk probe index share a registry; /metrics exposes it in Prometheus
// format, /health turns the ledger invariant + SLO burn rate into 200/503
// (each request also fires a probe query against the disk index, so device
// faults burn the error budget), and /explain?q=PAT traces a pattern over
// the serving index. With --flaky the probe device starts failing right
// after construction, demonstrating the 503 flip.
// ---------------------------------------------------------------------------

/// Register one engine's [`spine::BuildStats`] as `build.*` labeled gauges
/// (label `engine` distinguishes layouts sharing a registry).
fn register_build_gauges(
    registry: &spine::telemetry::MetricsRegistry,
    engine: &str,
    stats: &spine::BuildStats,
) {
    let labels = [("engine", engine)];
    let fixed: [(&str, u64); 7] = [
        ("build.insertions", stats.insertions),
        ("build.ribs", stats.ribs_created - stats.ribs_absorbed),
        ("build.extribs", stats.extribs_created),
        ("build.extrib_spills", stats.extrib_spills),
        ("build.chain_steps", stats.chain_steps),
        ("build.max_lel", stats.max_lel as u64),
        ("build.mem_bytes", stats.mem.total()),
    ];
    for (name, v) in fixed {
        registry.labeled_gauge(name, &labels, move || v);
    }
    let nps = stats.nodes_per_sec().unwrap_or(0.0) as u64;
    registry.labeled_gauge("build.nodes_per_sec", &labels, move || nps);
    for p in spine::BuildPhase::all() {
        let nanos = stats.phase_nanos[p.index()];
        registry.labeled_gauge(&format!("build.phase_nanos.{}", p.name()), &labels, move || nanos);
    }
}

fn serve_http(opts: &Opts, port: u16) {
    use spine::engine::{EngineConfig, QueryEngine};
    use spine::telemetry::{spawn_sampler, MetricsRegistry, SlidingWindow, SloTracker, TimeSeries};
    use spine_bench::{FlightRecorder, MonitorRoutes, MonitorServer};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let scale = if opts.quick { opts.scale * 0.25 } else { opts.scale };
    let d = Dataset::generate("hc21-sim", scale);
    let registry = Arc::new(MetricsRegistry::new());

    // Serving index, built with the observer; its BuildStats become gauges.
    let (index, build_stats) = Spine::build_with_stats(d.alphabet.clone(), &d.seq).unwrap();
    eprintln!("build[memory]: {}", build_stats.summary());
    register_build_gauges(&registry, "memory", &build_stats);
    let index = Arc::new(index);

    let window = Arc::new(SlidingWindow::new(10, Duration::from_secs(1)));
    let slo = Arc::new(SloTracker::new(Duration::from_millis(250), 0.999));
    let cfg = EngineConfig { workers: opts.workers, batch_max: 64, ..Default::default() };
    let engine = Arc::new(QueryEngine::with_observability(
        Arc::clone(&index),
        cfg,
        Arc::clone(&registry),
        Arc::clone(&window),
        Arc::clone(&slo),
    ));

    // Prime the histograms and the rolling window with real traffic so the
    // first scrape sees a served system, not an empty registry.
    let workload = serve_workload(&d, 64, 1);
    for admitted in engine.submit_batch(workload.iter().cloned()) {
        admitted.expect("default shed policy blocks rather than rejecting");
    }
    let primed = engine.drain().len();

    // Disk probe index (page-resident path for /health). Under --flaky the
    // device fails transiently from the first post-build operation on: a
    // dry build on a clean device counts the construction I/O, and the real
    // build — deterministic, so identical — sits just below the fault burst.
    let dd = Dataset::generate("eco-sim", (scale * 0.25).min(0.005));
    let pool = pool_pages(dd.seq.len(), SPINE_REC);
    let probe_device: Box<dyn PageDevice> = if opts.flaky {
        let dry = DiskSpine::build(
            dd.alphabet.clone(),
            &dd.seq,
            Box::new(MemDevice::new()),
            pool,
            Box::<Lru>::default(),
        )
        .unwrap();
        dry.flush().unwrap(); // build_with_stats flushes too; match its op count
        let (r, w) = dry.io_counts();
        Box::new(pagestore::FlakyDevice::with_burst(MemDevice::new(), r + w, u64::MAX / 2))
    } else {
        Box::new(MemDevice::new())
    };
    let (disk, disk_stats) = DiskSpine::build_with_stats(
        dd.alphabet.clone(),
        &dd.seq,
        probe_device,
        pool,
        Box::<Lru>::default(),
    )
    .unwrap();
    eprintln!("build[disk]:   {}", disk_stats.summary());
    register_build_gauges(&registry, "disk", &disk_stats);
    let disk = Arc::new(disk);
    let probe: Vec<strindex::Code> = dd.seq[..dd.seq.len().min(12)].to_vec();

    // Satellite gauges: stats that previously lived only in ad-hoc
    // snapshot structs, now first-class on /metrics. The probe pool's
    // wasted prefetches read live; the heatmap is the primed workload's
    // trace attribution over the serving index.
    {
        let disk = Arc::clone(&disk);
        registry.labeled_gauge("pool.prefetch_wasted", &[("pool", "probe-disk")], move || {
            disk.pool_stats().prefetch_waste
        });
    }
    {
        let mut heat = spine::Heatmap::new(d.seq.len());
        for w in workload.iter().take(64) {
            heat.add(&index.explain(w));
        }
        let heat = Arc::new(heat);
        registry.labeled_gauge("heatmap.dropped_touches", &[("index", "memory")], move || {
            heat.dropped_touches()
        });
    }

    // Segment-store recovery probe: build a tiny crash-safe store, seal it,
    // drop the handle, and reopen — exactly the recovery path. Under
    // --orphan a stray uncommitted segment file is planted first, so
    // recovery flags it and /health degrades to 503 until an operator runs
    // cleanup.
    let seg_dir = std::env::temp_dir().join(format!("spine-serve-segments-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&seg_dir);
    {
        let store = spine::SegmentedSpine::create(
            dd.alphabet.clone(),
            &seg_dir,
            spine::SegmentConfig::default(),
        )
        .unwrap();
        for doc in [&dd.seq[..dd.seq.len().min(64)], &probe[..]] {
            store.add_document(doc).unwrap();
        }
        store.force_seal().unwrap();
    }
    if opts.orphan {
        std::fs::write(seg_dir.join("seg-99.pages"), b"uncommitted orphan").unwrap();
    }
    let seg = Arc::new(
        spine::SegmentedSpine::open(dd.alphabet.clone(), &seg_dir, spine::SegmentConfig::default())
            .unwrap(),
    );
    seg.attach_telemetry(&registry);
    eprintln!("segments: recovered epoch {} with {} orphan(s)", seg.epoch(), seg.orphan_count());

    // Per-segment page counts, labeled by segment id. Registered for the
    // segments recovered at startup (serving runs no background merger);
    // a gauge whose segment is merged away reads 0 rather than lying.
    for (id, _) in seg.segment_pages() {
        let seg = Arc::clone(&seg);
        let label = id.to_string();
        registry.labeled_gauge("segments.pages", &[("segment", &label)], move || {
            seg.segment_pages().iter().find(|&&(i, _)| i == id).map_or(0, |&(_, p)| p)
        });
    }

    // Flight recorder: a sampler thread ticks the registry into a ring of
    // time-series samples (the /timeline payload), the store's lifecycle
    // journal backs /journal, and a postmortem dump fires on the /health
    // healthy→unhealthy edge or a worker panic.
    let series = Arc::new(TimeSeries::new(512));
    let sampler =
        spawn_sampler(Arc::clone(&series), Arc::clone(&registry), Duration::from_millis(200));
    let journal_json = {
        let seg = Arc::clone(&seg);
        Arc::new(move |n: usize| -> String {
            match seg.recent_journal(n) {
                Ok(evs) => {
                    let mut out = String::from("[");
                    for (i, e) in evs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&e.to_json());
                    }
                    out.push(']');
                    out
                }
                Err(e) => format!(
                    "[{{\"error\":\"{}\"}}]",
                    spine::telemetry::json_escape(&format!("{e:?}"))
                ),
            }
        })
    };
    let dump_dir = std::env::temp_dir().join(format!("spine-postmortem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    let recorder =
        Arc::new(FlightRecorder::new(&dump_dir, Arc::clone(&series), Arc::clone(&registry), {
            let journal_json = Arc::clone(&journal_json);
            move |n| journal_json(n)
        }));
    {
        let recorder = Arc::clone(&recorder);
        engine.set_panic_hook(move |msg| {
            let _ = recorder.trigger(&format!("worker panic: {msg}"));
        });
    }

    let routes = MonitorRoutes {
        metrics: {
            let registry = Arc::clone(&registry);
            Box::new(move || registry.snapshot().to_prometheus("spine"))
        },
        health: {
            let engine = Arc::clone(&engine);
            let window = Arc::clone(&window);
            let slo = Arc::clone(&slo);
            let seg = Arc::clone(&seg);
            let recorder = Arc::clone(&recorder);
            Box::new(move || {
                let t0 = Instant::now();
                let ok = disk.try_find_all(&probe).is_ok();
                let latency = t0.elapsed();
                window.record(latency, ok);
                slo.record(latency, ok);
                let m = engine.metrics();
                let ledger_ok = m.is_consistent();
                let slo_ok = slo.healthy();
                let orphans = seg.orphan_count();
                let seg_ok = orphans == 0;
                let body = format!(
                    "{{\"ledger_consistent\":{ledger_ok},\"slo_healthy\":{slo_ok},\
                     \"probe_ok\":{ok},\"segments_clean\":{seg_ok},\"orphans\":{orphans},\
                     \"epoch\":{},\"burn_short\":{:.3},\"burn_long\":{:.3},\
                     \"completed\":{}}}\n",
                    seg.epoch(),
                    slo.burn_rate_short(),
                    slo.burn_rate_long(),
                    m.completed
                );
                let healthy = ledger_ok && slo_ok && seg_ok;
                // The healthy→unhealthy edge triggers a postmortem dump.
                recorder.observe_health(healthy);
                (healthy, body)
            })
        },
        explain: {
            let a = d.alphabet.clone();
            let index = Arc::clone(&index);
            Box::new(move |q: &str| {
                let pattern = a
                    .encode(q.as_bytes())
                    .map_err(|e| format!("pattern {q:?} is not in the index alphabet: {e:?}"))?;
                Ok(index.explain(&pattern).to_json())
            })
        },
        timeline: {
            let series = Arc::clone(&series);
            Box::new(move |metric, window| series.to_json(metric, window))
        },
        journal: {
            let journal_json = Arc::clone(&journal_json);
            Box::new(move |n| journal_json(n))
        },
    };

    // Self-check the exposition once before serving it to scrapers.
    let prom = registry.snapshot().to_prometheus("spine");
    strindex::telemetry::validate_prometheus_text(&prom)
        .expect("generated Prometheus exposition must self-validate");

    let server = MonitorServer::bind(("127.0.0.1", port), routes, 16)
        .unwrap_or_else(|e| panic!("binding 127.0.0.1:{port}: {e}"));
    // Parsed by scripts/ci.sh; keep both formats stable.
    println!("HTTP listening on {}", server.local_addr());
    println!("postmortem dir {}", dump_dir.display());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    eprintln!(
        "serving /metrics /health /explain?q=PAT /timeline /journal /quit \
         ({} primed queries{}{})",
        primed,
        if opts.flaky { ", flaky probe device" } else { "" },
        if opts.orphan { ", planted orphan segment" } else { "" }
    );
    let served = server.serve().expect("accept loop failed");
    sampler.stop();
    let _ = std::fs::remove_dir_all(&seg_dir);

    // Every postmortem captured during the run must read back schema-valid;
    // under --flaky (and --orphan, which also forces a 503) at least one
    // must exist — that is the end-to-end flight-recorder assertion.
    let dumps = recorder.dump_count();
    if opts.flaky || opts.orphan {
        assert!(dumps > 0, "a forced-503 run must capture a postmortem dump");
    }
    if dumps > 0 {
        let last = recorder.last_dump().expect("dump path recorded");
        let text = std::fs::read_to_string(&last)
            .unwrap_or_else(|e| panic!("reading {}: {e}", last.display()));
        spine_bench::validate_postmortem(&text)
            .unwrap_or_else(|e| panic!("postmortem {} is malformed: {e}", last.display()));
        println!("OK: postmortem {} validates ({dumps} dump(s))", last.display());
    }
    println!("OK: monitor served {served} request(s), shut down cleanly");
}

// ---------------------------------------------------------------------------
// http-get: CI's curl replacement. One positional argument ADDR/PATH; the
// body goes to stdout, the status to stderr; exit 1 on transport errors or
// HTTP status >= 400. With --prom the body must additionally pass
// `validate_prometheus_text`.
// ---------------------------------------------------------------------------
fn http_get_cmd(opts: &Opts) {
    let target = opts
        .pattern
        .clone()
        .unwrap_or_else(|| panic!("http-get needs ADDR/PATH, e.g. 127.0.0.1:8080/metrics"));
    let slash = target.find('/').unwrap_or(target.len());
    let (addr, path) = target.split_at(slash);
    let path = if path.is_empty() { "/" } else { path };
    match spine_bench::http_get(addr, path, std::time::Duration::from_secs(10)) {
        Ok((status, body)) => {
            print!("{body}");
            eprintln!("HTTP {status} ({} bytes)", body.len());
            if opts.prom {
                strindex::telemetry::validate_prometheus_text(&body)
                    .unwrap_or_else(|e| panic!("body is not valid Prometheus exposition: {e}"));
                eprintln!("OK: body validates as Prometheus text exposition");
            }
            if status >= 400 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("http-get {target}: {e}");
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Fault tolerance: exhaustive crashpoint sweep + retry-layer oracle check.
// ---------------------------------------------------------------------------
fn faults(opts: &Opts) {
    let (r, t) = time(|| spine_bench::crashpoint_sweep(opts.quick));
    let rows = vec![
        Row::new("crashpoints")
            .cell("trace-ops", r.trace_ops as f64)
            .cell("tested", r.tested as f64)
            .cell("build-errs", r.build_faults as f64)
            .cell("query-errs", r.query_faults as f64)
            .cell("flush-errs", r.flush_faults as f64)
            .cell("panics", r.panics as f64)
            .cell("swallowed", r.swallowed as f64),
        Row::new("degraded-mode")
            .cell("burst-oracle-ok", r.burst_oracle_match as u8 as f64)
            .cell("prob-oracle-ok", r.probability_oracle_match as u8 as f64)
            .cell("retries-absorbed", r.retries_absorbed as f64)
            .cell("sweep-secs", secs(t)),
        Row::new("seal-rebuild")
            .cell("seal-ops", r.seal_ops as f64)
            .cell("seal-errs", r.seal_faults as f64)
            .cell("source-intact", r.sealed_source_intact as u8 as f64)
            .cell("reseal-oracle-ok", r.sealed_oracle_match as u8 as f64),
        Row::new("segment-store")
            .cell("lifecycle-ops", r.segment_ops as f64)
            .cell("crash-errs", r.segment_faults as f64)
            .cell("recoveries-ok", r.segment_recoveries as f64)
            .cell("torn", r.segment_torn as f64)
            .cell("orphaned", r.segment_orphaned as f64),
    ];
    print_table(
        "Faults — crashpoint sweep (hard faults) + retry layer vs oracle (transient)",
        &rows,
        opts.json,
    );
    assert!(
        r.holds(),
        "fault-tolerance contract violated: {} panics, {} swallowed, burst ok={}, prob ok={}, \
         seal source intact={}, reseal oracle ok={}, segment torn={}",
        r.panics,
        r.swallowed,
        r.burst_oracle_match,
        r.probability_oracle_match,
        r.sealed_source_intact,
        r.sealed_oracle_match,
        r.segment_torn
    );
    println!(
        "OK: {} crashpoints -> clean Err; retry-wrapped runs match the in-memory oracle; \
         {} mid-seal crashes left the committed version intact; {} segment-store crashes \
         all recovered to a committed epoch with oracle-exact answers",
        r.tested, r.seal_faults, r.segment_faults
    );
}

// ---------------------------------------------------------------------------
// Integrity verification: the paper's correctness theorem, machine-checked
// on the experiment datasets themselves.
// ---------------------------------------------------------------------------
fn verify(opts: &Opts) {
    let _ = opts.scale;
    let mut rows = Vec::new();
    for name in dna_presets().iter().chain(protein_presets().iter()) {
        let mut d = Dataset::generate(name, 0.001);
        // The first-principles checker is super-quadratic; verify a prefix.
        d.seq.truncate(1_200);
        let s = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        let violations = s.verify();
        for v in violations.iter().take(3) {
            eprintln!("  VIOLATION {name}: node {} — {}", v.node, v.what);
        }
        // Cross-check a handful of windows against the suffix tree.
        let st = SuffixTree::build(d.alphabet.clone(), &d.seq).unwrap();
        let mut disagreements = 0u64;
        for i in (0..d.seq.len().saturating_sub(12)).step_by(97) {
            let w = &d.seq[i..i + 12];
            if strindex::StringIndex::find_all(&s, w) != strindex::StringIndex::find_all(&st, w) {
                disagreements += 1;
            }
        }
        rows.push(
            Row::new(*name)
                .cell("chars", d.seq.len() as f64)
                .cell("violations", violations.len() as f64)
                .cell("st-disagreements", disagreements as f64),
        );
    }
    print_table("Verify — structural invariants + cross-engine agreement", &rows, opts.json);
}

// ---------------------------------------------------------------------------
// Figures 1–3: structural comparison on the paper's example plus a real
// dataset — what each compaction strategy saves.
// ---------------------------------------------------------------------------
fn figures(opts: &Opts) {
    use suffix_trie::SuffixTrie;
    let mut rows = Vec::new();
    // The paper's running example, aaccacaaca.
    let a = strindex::Alphabet::dna();
    let paper = a.encode(b"AACCACAACA").unwrap();
    // Plus a small slice of a realistic dataset (the trie is quadratic).
    let mut eco = Dataset::generate("eco-sim", 0.001).seq;
    eco.truncate(1_500);
    for (name, text, alphabet) in [("aaccacaaca", &paper, &a), ("eco-sim[..1500]", &eco, &a)] {
        let trie = SuffixTrie::build(alphabet.clone(), text);
        let st = SuffixTree::build(alphabet.clone(), text).unwrap();
        let sp = Spine::build(alphabet.clone(), text).unwrap();
        let sp_edges: usize =
            2 * sp.len() + sp.nodes().iter().map(|n| n.ribs.len() + n.extribs.len()).sum::<usize>();
        rows.push(
            Row::new(name)
                .cell("trie-nodes", trie.node_count() as f64)
                .cell("st-nodes", st.node_count() as f64)
                .cell("spine-nodes", sp.nodes().len() as f64)
                .cell("spine-edges", sp_edges as f64),
        );
    }
    print_table(
        "Figures 1–3 — trie vs vertical (ST) vs horizontal (SPINE) compaction",
        &rows,
        opts.json,
    );
    let _ = opts;
}

// ---------------------------------------------------------------------------
// Explain: per-query EXPLAIN tracing on the paper's running example — the
// Figure 3 valid-path walk, rendered step by step — plus a page-resident run
// with buffer-pool attribution and a visit heatmap. Every trace printed here
// is also replayed against the naive oracle (`verify_against_text`).
// ---------------------------------------------------------------------------
fn explain(opts: &Opts) {
    use spine::{Heatmap, TraceEvent};

    let a = strindex::Alphabet::dna();
    let text = b"AACCACAACA";
    let seq = a.encode(text).unwrap();
    let pattern_str = opts.pattern.clone().unwrap_or_else(|| "ACA".to_string());
    let pattern = a
        .encode(pattern_str.as_bytes())
        .unwrap_or_else(|e| panic!("pattern {pattern_str:?} is not DNA: {e:?}"));

    let s = Spine::build(a.clone(), &seq).unwrap();
    let trace = s.explain(&pattern);
    println!("EXPLAIN {pattern_str} over {}", String::from_utf8_lossy(text));
    if opts.json {
        println!("{}", trace.to_json());
    } else {
        print!("{}", trace.to_text(&a));
    }
    trace.verify_against_text(&seq).expect("trace must replay against the naive oracle");

    if pattern_str == "ACA" {
        // The paper's hand-derived path for "aca": vertebra 0→1 on A, rib
        // 1→3 on C (pt 1 admits pl 1), rib 3→5 rejected (pl 2 > pt 1),
        // extrib at 5 (prt 1, pt 2) lands on node 7; the backbone scan then
        // adds the second occurrence ending at 10.
        let ev = trace.structural_events();
        assert_eq!(ev[0], TraceEvent::Vertebra { node: 0, pl: 0, ch: 0 });
        assert_eq!(
            ev[1],
            TraceEvent::Rib { node: 1, ch: 1, dest: 3, pt: 1, pl: 1, admitted: true }
        );
        assert_eq!(
            ev[2],
            TraceEvent::Rib { node: 3, ch: 0, dest: 5, pt: 1, pl: 2, admitted: false }
        );
        assert_eq!(ev[3], TraceEvent::Extrib { at: 5, prt: 1, dest: 7, pt: 2, pl: 2, taken: true });
        assert_eq!(trace.first_end, Some(7));
        assert_eq!(trace.ends, vec![7, 10]);
        eprintln!("OK: trace matches the paper's hand-derived Figure 3 path (ends [7, 10])");
    }

    // The same pattern over a page-resident index under a single-frame pool:
    // the trace attributes buffer-pool hits and device reads to the
    // traversal that caused them.
    let big = seq.repeat(8);
    let disk =
        DiskSpine::build(a.clone(), &big, Box::new(MemDevice::new()), 1, Box::<Lru>::default())
            .unwrap();
    let dtrace = disk.explain(&pattern);
    dtrace.verify_against_text(&big).expect("disk trace must replay against the naive oracle");
    let (hits, misses) = dtrace.page_fetches();
    println!(
        "\ndisk (x8 text, single-frame pool): {} occurrence(s), {hits} page hit(s), \
         {misses} page miss(es)",
        dtrace.ends.len()
    );

    // Heatmap: fold every length-2 window of the text plus the traced
    // pattern into per-node visit counts.
    let mut heat = Heatmap::new(seq.len());
    for w in seq.windows(2) {
        heat.add(&s.explain(w));
    }
    heat.add(&trace);
    println!("\nheatmap over {} traces (hottest: {:?})", heat.traces(), heat.hottest(3));
    print!("{}", heat.render(5, 40));

    if !opts.quick {
        // A realistic dataset: trace a 12-mer over eco-sim and replay it
        // against the oracle there too.
        let d = Dataset::generate("eco-sim", opts.scale.min(0.01));
        let s2 = Spine::build(d.alphabet.clone(), &d.seq).unwrap();
        let q = query_for(&d);
        let p2 = &q[..q.len().min(12)];
        let t2 = s2.explain(p2);
        t2.verify_against_text(&d.seq).expect("eco-sim trace must replay against the naive oracle");
        println!(
            "\neco-sim[{} chars]: {} structural events, {} occurrence(s) for a 12-mer",
            d.seq.len(),
            t2.structural_events().len(),
            t2.ends.len()
        );
    }
    eprintln!("OK: explain traces replay cleanly against the naive oracle");
}

// ---------------------------------------------------------------------------
// Bench-snapshot: BENCH_serve.json — the serving benchmark's headline
// numbers (throughput, tail latency from `engine.query_latency`, mean
// pages/query from `disk.pages_per_query`), with an optional `--check`
// regression gate against a committed baseline.
// ---------------------------------------------------------------------------
fn bench_snapshot(opts: &Opts) {
    use spine::engine::{EngineConfig, QueryEngine};
    use spine::telemetry::MetricsRegistry;
    use spine_bench::BenchSnapshot;
    use std::sync::Arc;

    // Serving phase: the `serve --metrics` workload with telemetry attached.
    let scale = if opts.quick { opts.scale * 0.25 } else { opts.scale };
    let cycles = if opts.quick { 2 } else { 4 };
    let d = Dataset::generate("hc21-sim", scale);
    let index = Arc::new(Spine::build(d.alphabet.clone(), &d.seq).unwrap());
    let workload = serve_workload(&d, 256, cycles);
    let cfg = EngineConfig { workers: opts.workers, batch_max: 64, ..Default::default() };

    let run = |engine: &QueryEngine<Spine>| {
        let (results, t) = time(|| {
            for admitted in engine.submit_batch(workload.iter().cloned()) {
                admitted.expect("default shed policy blocks rather than rejecting");
            }
            engine.drain()
        });
        std::hint::black_box(results.len());
        t
    };

    // Pinned warmup, then one timed instrumented run. The snapshot records
    // absolute numbers; run-to-run noise is absorbed by the 20 % regression
    // tolerances in `BenchSnapshot::check_against`.
    run(&QueryEngine::new(Arc::clone(&index), cfg));
    let registry = Arc::new(MetricsRegistry::new());
    let engine = QueryEngine::with_telemetry(Arc::clone(&index), cfg, Arc::clone(&registry));
    let t = run(&engine);
    let m = engine.metrics();
    assert!(m.is_consistent(), "ledger invariant violated: {m:?}");
    assert_eq!(m.completed, workload.len() as u64, "not every query completed");

    // Disk phase: pages/query under memory pressure, recorded into the same
    // registry's `disk.pages_per_query` histogram, served through the full
    // hot-page tier at a fixed pool size. The pipeline mirrors production:
    // seal plain, learn the hot set from a profiling pass, re-seal with the
    // hot records clustered onto dedicated pages, pin the hottest pages, and
    // answer the measured pass with scan prefetch under the scan-resistant
    // policy — every engine at the same `pool` capacity.
    let dd = Dataset::generate("eco-sim", scale.min(0.005));
    let pool = pool_pages(dd.seq.len(), SPINE_V2_REC);
    let scratch = DiskSpine::build(
        dd.alphabet.clone(),
        &dd.seq,
        Box::new(MemDevice::new()),
        64,
        Box::<Lru>::default(),
    )
    .unwrap();
    let plain = scratch.seal_to(Box::new(MemDevice::new()), pool, Box::<Lru>::default()).unwrap();
    let probes: Vec<&[strindex::Code]> =
        (0..dd.seq.len().saturating_sub(16)).step_by(997).map(|i| &dd.seq[i..i + 12]).collect();
    let mut heat = spine::Heatmap::new(dd.seq.len());
    for w in &probes {
        heat.add(&plain.explain(w));
    }
    let hot = spine::HotSet::from_heatmap(&heat, 512);
    let disk = scratch
        .seal_to_clustered(
            Box::new(MemDevice::new()),
            pool,
            Box::<pagestore::SegmentedLru>::default(),
            &hot,
        )
        .unwrap();
    assert!(disk.is_sealed(), "bench disk phase must serve from the v2 layout");
    let pinned = disk.pin_hot(&hot, (pool / 4).max(1)).unwrap();
    disk.attach_telemetry(&registry);

    // Measured pass: the single-query flow `disk.pages_per_query` records
    // exactly (one before/after miss delta per query).
    for w in &probes {
        std::hint::black_box(disk.try_find_all(w).expect("MemDevice cannot fail").len());
    }
    let ps = disk.pool_stats();
    eprintln!(
        "disk pool (cap {pool}, {pinned} pinned, {} hot-tier pages): {} hits / {} misses \
         ({:.1}% hit rate), {} prefetched ({} hits, {} wasted)",
        disk.hot_tier_pages(),
        ps.hits,
        ps.misses,
        100.0 * ps.hits as f64 / (ps.hits + ps.misses).max(1) as f64,
        ps.prefetched,
        ps.prefetch_hits,
        ps.prefetch_waste
    );

    // Disk-engine latency: the same serving engine the in-memory phase used,
    // now answering a windowed workload off the hot-tier index. Its latency
    // histogram supplies the snapshot's p50/p99 — the disk engine is the
    // component this tier exists to speed up.
    let dworkload = serve_workload(&dd, 256, cycles);
    let dregistry = Arc::new(MetricsRegistry::new());
    {
        let warm = QueryEngine::new(Arc::new(plain), cfg);
        for admitted in warm.submit_batch(dworkload.iter().cloned()) {
            admitted.expect("default shed policy blocks rather than rejecting");
        }
        std::hint::black_box(warm.drain().len());
    }
    let disk = Arc::new(disk);
    let dengine = QueryEngine::with_telemetry(Arc::clone(&disk), cfg, Arc::clone(&dregistry));
    for admitted in dengine.submit_batch(dworkload.iter().cloned()) {
        admitted.expect("default shed policy blocks rather than rejecting");
    }
    std::hint::black_box(dengine.drain().len());
    let dm = dengine.metrics();
    assert!(dm.is_consistent(), "disk ledger invariant violated: {dm:?}");
    assert_eq!(dm.completed, dworkload.len() as u64, "not every disk query completed");

    let snap = registry.snapshot();
    let lat = snap.histogram("engine.query_latency").expect("latency histogram");
    assert_eq!(lat.count, workload.len() as u64, "latency histogram misses queries");
    let pages = snap.histogram("disk.pages_per_query").expect("pages-per-query histogram");
    assert!(!pages.is_empty(), "no disk queries recorded");
    let dsnap = dregistry.snapshot();
    let dlat = dsnap.histogram("engine.query_latency").expect("disk latency histogram");
    assert_eq!(dlat.count, dworkload.len() as u64, "disk latency histogram misses queries");

    let s = BenchSnapshot {
        workers: opts.workers as u64,
        queries: workload.len() as u64,
        wall_s: secs(t),
        qps: workload.len() as f64 / secs(t).max(1e-9),
        p50_us: dlat.p50() / 1_000, // histograms record nanoseconds
        p99_us: dlat.p99() / 1_000,
        pages_per_query: pages.mean(),
    };
    let json = s.to_json();
    let out = opts.out.clone().unwrap_or_else(|| "BENCH_serve.json".to_string());
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("{json}");
    eprintln!("OK: snapshot written to {out}");

    // Construction phase: build-side observability numbers → BENCH_build.json.
    let b = build_snapshot_section(&d, &dd, pool);
    let bjson = b.to_json();
    let out_build = opts.out_build.clone().unwrap_or_else(|| "BENCH_build.json".to_string());
    std::fs::write(&out_build, format!("{bjson}\n"))
        .unwrap_or_else(|e| panic!("writing {out_build}: {e}"));
    println!("{bjson}");
    eprintln!("OK: construction snapshot written to {out_build}");

    if let Some(base_path) = &opts.check {
        let text = std::fs::read_to_string(base_path)
            .unwrap_or_else(|e| panic!("reading baseline {base_path}: {e}"));
        let base = match BenchSnapshot::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("BENCH BASELINE REJECTED ({base_path}): {e}");
                std::process::exit(1);
            }
        };
        match s.check_against(&base) {
            Ok(msg) => eprintln!("OK: {msg}"),
            Err(e) => {
                eprintln!("BENCH REGRESSION vs {base_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(base_path) = &opts.check_build {
        let text = std::fs::read_to_string(base_path)
            .unwrap_or_else(|e| panic!("reading baseline {base_path}: {e}"));
        let base = match spine_bench::BuildSnapshot::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("BENCH BASELINE REJECTED ({base_path}): {e}");
                std::process::exit(1);
            }
        };
        match b.check_against(&base) {
            Ok(msg) => eprintln!("OK: {msg}"),
            Err(e) => {
                eprintln!("BENCH REGRESSION vs {base_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `bench-snapshot` construction section: median-of-3 plain builds for
/// throughput (the observer-disabled path must stay within noise of
/// pre-instrumentation construction — the committed baseline gates it),
/// median-of-3 observed builds for the overhead figure, one
/// progress-transcribed build for the callback path, and a `DiskSpine` build
/// for the page-write count.
fn build_snapshot_section(d: &Dataset, dd: &Dataset, pool: usize) -> spine_bench::BuildSnapshot {
    use spine::{BuildProgress, BuildStats, Tee};

    const RUNS: usize = 3;
    let mut plain_walls = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let (s, t) = time(|| Spine::build(d.alphabet.clone(), &d.seq).unwrap());
        std::hint::black_box(s.len());
        plain_walls.push(secs(t));
    }
    plain_walls.sort_by(f64::total_cmp);
    let build_s = plain_walls[RUNS / 2];

    let mut observed_walls = Vec::with_capacity(RUNS);
    let mut stats = BuildStats::default();
    for _ in 0..RUNS {
        let ((s, st), t) = time(|| Spine::build_with_stats(d.alphabet.clone(), &d.seq).unwrap());
        std::hint::black_box(s.len());
        stats = st;
        observed_walls.push(secs(t));
    }
    observed_walls.sort_by(f64::total_cmp);
    let observed_s = observed_walls[RUNS / 2];
    assert_eq!(stats.insertions as usize, d.seq.len(), "observer missed insertions");
    assert_eq!(stats.dispositions(), stats.insertions, "CASE counts must sum to insertions");

    // One build with a progress callback teed onto the stats — the live
    // transcript EXPERIMENTS.md shows.
    let total = d.seq.len() as u64;
    let mut tee = Tee(
        BuildStats::default(),
        BuildProgress::new(Some(total), (total / 4).max(1), |r| {
            eprintln!(
                "build[progress]: {:>9} / {total} nodes, {:>10.0} nodes/s, eta {:.2}s",
                r.nodes,
                r.nodes_per_sec,
                r.eta_secs.unwrap_or(f64::NAN)
            );
        }),
    );
    let s = Spine::build_observed(d.alphabet.clone(), &d.seq, &mut tee).unwrap();
    std::hint::black_box(s.len());
    assert_eq!(tee.0.counts(), stats.counts(), "observed builds must agree run to run");
    eprintln!("build[summary]:  {}", stats.summary());

    // Disk build: page writes through the device, spills reconciled. The
    // mutable build then seals into the layout-v2 pages; `page_writes` is
    // the full pipeline (scratch build + seal) and `bytes_per_node` is the
    // *sealed on-disk* footprint — the number layout v2 exists to shrink.
    let (dsk, dstats) = DiskSpine::build_with_stats(
        dd.alphabet.clone(),
        &dd.seq,
        Box::new(MemDevice::new()),
        pool_pages(dd.seq.len(), SPINE_REC),
        Box::<Lru>::default(),
    )
    .unwrap();
    let (_reads, build_writes) = dsk.io_counts();
    assert_eq!(dstats.extrib_spills, dsk.spill_count(), "spill events must match the side table");
    let sealed = dsk
        .seal_to(Box::new(MemDevice::new()), pool, Box::<Lru>::default())
        .expect("sealing the bench index must not fail");
    let (_sreads, seal_writes) = sealed.io_counts();
    let page_writes = build_writes + seal_writes;
    let file_pages = sealed.file_pages().expect("sealed index has a page count");
    let disk_bytes_per_node = (file_pages * PAGE_SIZE as u64) as f64 / (dd.seq.len() as f64 + 1.0);
    eprintln!(
        "seal[summary]:   {} v1 scratch writes + {} v2 seal writes; {} v2 pages, \
         {:.2} on-disk bytes/node (heap bytes/node {:.2})",
        build_writes,
        seal_writes,
        file_pages,
        disk_bytes_per_node,
        stats.mem.bytes_per_node(stats.insertions),
    );

    spine_bench::BuildSnapshot {
        nodes: stats.insertions,
        build_s,
        nodes_per_sec: stats.insertions as f64 / build_s.max(1e-9),
        observer_overhead_pct: 100.0 * (observed_s - build_s) / build_s.max(1e-9),
        bytes_per_node: disk_bytes_per_node,
        page_writes,
    }
}

// ---------------------------------------------------------------------------
// `scale`: the load harness (DESIGN.md §15).
// ---------------------------------------------------------------------------

/// Stream a synthetic corpus into every in-repo engine, sweep closed-loop
/// concurrency and open-loop offered load per query mix, and write the
/// throughput-vs-latency curves (with per-stage attribution) to `--out`.
fn scale_cmd(opts: &Opts) {
    use spine_bench::load::{run_scale, CorpusKind, ScaleConfig, ScaleReport};

    let mut cfg =
        if opts.quick { ScaleConfig::quick(opts.seed) } else { ScaleConfig::full(opts.seed) };
    cfg.workers = opts.workers;
    if let Some(kind) = &opts.corpus {
        cfg.corpus_kind = CorpusKind::parse(kind)
            .unwrap_or_else(|| panic!("unknown corpus {kind:?} (dna|protein|logtext)"));
    }
    eprintln!(
        "scale: seed 0x{:X}, corpus {} ({} symbols; trie capped at {}), {} workers, \
         {} queries/point{}",
        cfg.seed,
        cfg.corpus_kind.name(),
        cfg.corpus_len,
        cfg.trie_corpus_len,
        cfg.workers,
        cfg.queries_per_point,
        if cfg.quick { " [quick]" } else { "" }
    );
    let scratch = std::env::temp_dir().join(format!("spine-scale-{}", std::process::id()));
    let report = run_scale(&cfg, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);

    let json = report.to_json();
    let out = opts.out.clone().unwrap_or_else(|| "BENCH_scale.json".to_string());
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("OK: {} curves written to {out}", report.curves.len());

    if let Some(base_path) = &opts.check {
        let text = std::fs::read_to_string(base_path)
            .unwrap_or_else(|e| panic!("reading baseline {base_path}: {e}"));
        let base = match ScaleReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("BENCH BASELINE REJECTED ({base_path}): {e}");
                std::process::exit(1);
            }
        };
        match report.check_against(&base) {
            Ok(msg) => eprintln!("OK: {msg}"),
            Err(e) => {
                eprintln!("BENCH REGRESSION vs {base_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
