//! A minimal blocking HTTP/1.1 monitoring endpoint (std-only).
//!
//! `exp serve --http PORT` exposes the live serving stack through three
//! read-only routes:
//!
//! * `GET /metrics`  — the telemetry registry in Prometheus text exposition
//!   format (histograms, counters, and the sliding-window / SLO / build
//!   gauges).
//! * `GET /health`   — `200` when the engine ledger is consistent and the
//!   SLO burn rate is within budget, `503` otherwise; the body is a small
//!   JSON object with the inputs to that decision.
//! * `GET /explain?q=PAT` — the [`QueryTrace`](spine::QueryTrace) of one
//!   pattern as JSON.
//! * `GET /timeline?metric=NAME&window=SECS` — the flight-recorder metric
//!   history ring as JSON; both parameters are optional filters.
//! * `GET /journal?n=COUNT` — the newest `n` (default 32) segment-lifecycle
//!   journal events as a JSON array.
//! * `GET /quit`     — acknowledge with `200`, then stop accepting and
//!   return from [`MonitorServer::serve`] (used by CI for a clean
//!   shutdown).
//!
//! The server is deliberately small: thread-per-connection with a hard
//! bound on simultaneous connections (over-limit connections are answered
//! `503` without reading the request), per-socket read/write timeouts, and
//! no keep-alive. It exists to be scraped by CI and a Prometheus agent,
//! not to be a web server. The matching [`http_get`] client keeps
//! `scripts/ci.sh` free of external tools like `curl`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest request head (request line + headers) the server will read.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-socket read/write timeout on both server and client sides.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Journal events returned by `GET /journal` when `n=` is not given.
const DEFAULT_JOURNAL_EVENTS: usize = 32;

/// The route handlers backing a [`MonitorServer`]. Closures rather than a
/// trait: the `exp` binary wires each route to captured engine/registry
/// state, and tests substitute canned bodies.
pub struct MonitorRoutes {
    /// Body of `GET /metrics` (Prometheus text exposition).
    pub metrics: Box<dyn Fn() -> String + Send + Sync>,
    /// `GET /health`: `(healthy, body)` — healthy selects 200 vs 503.
    pub health: Box<dyn Fn() -> (bool, String) + Send + Sync>,
    /// `GET /explain?q=PAT`: `Ok(json)` answers 200, `Err(msg)` answers 400.
    #[allow(clippy::type_complexity)]
    pub explain: Box<dyn Fn(&str) -> Result<String, String> + Send + Sync>,
    /// `GET /timeline?metric=NAME&window=SECS`: the flight-recorder ring as
    /// JSON, optionally filtered to one metric and/or a trailing window.
    #[allow(clippy::type_complexity)]
    pub timeline: Box<dyn Fn(Option<&str>, Option<Duration>) -> String + Send + Sync>,
    /// `GET /journal?n=COUNT`: the most recent segment-lifecycle journal
    /// events as a JSON array (newest last).
    pub journal: Box<dyn Fn(usize) -> String + Send + Sync>,
}

/// A bound monitoring endpoint; [`serve`](Self::serve) runs the accept
/// loop until a `/quit` request arrives.
pub struct MonitorServer {
    listener: TcpListener,
    routes: Arc<MonitorRoutes>,
    max_connections: usize,
}

impl MonitorServer {
    /// Bind to `addr` (use port 0 for an ephemeral port, then read the real
    /// one back with [`local_addr`](Self::local_addr)). `max_connections`
    /// bounds simultaneous in-flight requests; extra connections receive
    /// `503 Busy` without being read.
    pub fn bind(
        addr: impl ToSocketAddrs,
        routes: MonitorRoutes,
        max_connections: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(MonitorServer { listener, routes: Arc::new(routes), max_connections })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Accept and answer requests until `/quit`; returns the number of
    /// requests answered (including the quit itself, excluding over-limit
    /// rejections).
    pub fn serve(self) -> std::io::Result<u64> {
        let active = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.local_addr();
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();

        for conn in self.listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let mut stream = match conn {
                Ok(s) => s,
                // Transient accept errors (e.g. aborted handshakes) should
                // not kill a monitoring endpoint.
                Err(_) => continue,
            };
            if active.load(Ordering::Acquire) >= self.max_connections {
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                // Drain the request head before answering: closing with
                // unread bytes in the receive buffer makes the kernel send
                // RST, which can destroy the 503 before the client reads it.
                let _ = stream.read(&mut [0u8; 512]);
                let _ = write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "busy: connection limit reached\n",
                );
                continue;
            }
            active.fetch_add(1, Ordering::AcqRel);
            let routes = Arc::clone(&self.routes);
            let active = Arc::clone(&active);
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let quit = handle_connection(&mut stream, &routes).unwrap_or(false);
                served.fetch_add(1, Ordering::AcqRel);
                active.fetch_sub(1, Ordering::AcqRel);
                if quit {
                    stop.store(true, Ordering::Release);
                    // The accept loop is blocked; poke it awake so it can
                    // observe the stop flag and return.
                    let _ = TcpStream::connect(addr);
                }
            }));
            workers.retain(|h| !h.is_finished());
        }
        for h in workers {
            let _ = h.join();
        }
        Ok(served.load(Ordering::Acquire))
    }
}

/// Read one request, dispatch it, write the response. Returns `Ok(true)`
/// when the request was `/quit`.
fn handle_connection(stream: &mut TcpStream, routes: &MonitorRoutes) -> std::io::Result<bool> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            write_response(stream, 431, "Request Header Fields Too Large", TEXT, "too large\n")?;
            return Ok(false);
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // client hung up
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            write_response(stream, 400, "Bad Request", TEXT, "malformed request line\n")?;
            return Ok(false);
        }
    };
    if method != "GET" {
        write_response(stream, 405, "Method Not Allowed", TEXT, "only GET is supported\n")?;
        return Ok(false);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = (routes.metrics)();
            write_response(stream, 200, "OK", "text/plain; version=0.0.4; charset=utf-8", &body)?;
        }
        "/health" => {
            let (healthy, body) = (routes.health)();
            if healthy {
                write_response(stream, 200, "OK", JSON, &body)?;
            } else {
                write_response(stream, 503, "Service Unavailable", JSON, &body)?;
            }
        }
        "/explain" => match query_param(query, "q") {
            None => {
                write_response(stream, 400, "Bad Request", TEXT, "missing query parameter q\n")?;
            }
            Some(q) => match (routes.explain)(&q) {
                Ok(json) => write_response(stream, 200, "OK", JSON, &json)?,
                Err(msg) => {
                    write_response(stream, 400, "Bad Request", TEXT, &format!("{msg}\n"))?;
                }
            },
        },
        "/timeline" => {
            let metric = query_param(query, "metric");
            let window = match query_param(query, "window") {
                None => None,
                Some(w) => match w.parse::<f64>() {
                    Ok(secs) if secs.is_finite() && secs >= 0.0 => {
                        Some(Duration::from_secs_f64(secs))
                    }
                    _ => {
                        write_response(
                            stream,
                            400,
                            "Bad Request",
                            TEXT,
                            "window must be a non-negative number of seconds\n",
                        )?;
                        return Ok(false);
                    }
                },
            };
            let body = (routes.timeline)(metric.as_deref(), window);
            write_response(stream, 200, "OK", JSON, &body)?;
        }
        "/journal" => {
            let n = match query_param(query, "n") {
                None => DEFAULT_JOURNAL_EVENTS,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        write_response(
                            stream,
                            400,
                            "Bad Request",
                            TEXT,
                            "n must be a non-negative integer\n",
                        )?;
                        return Ok(false);
                    }
                },
            };
            let body = (routes.journal)(n);
            write_response(stream, 200, "OK", JSON, &body)?;
        }
        "/quit" => {
            write_response(stream, 200, "OK", TEXT, "shutting down\n")?;
            return Ok(true);
        }
        _ => write_response(stream, 404, "Not Found", TEXT, "unknown path\n")?,
    }
    Ok(false)
}

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Extract and percent-decode one query-string parameter.
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then(|| percent_decode(v))
    })
}

/// Minimal percent-decoding: `+` becomes a space, `%XX` its byte. Invalid
/// escapes pass through verbatim (the route handler rejects bad patterns).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A one-shot HTTP GET over std's `TcpStream`: returns `(status, body)`.
/// Used by `exp http-get`, which in turn keeps `scripts/ci.sh` free of
/// `curl`/`wget` dependencies.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| text.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("malformed status line: {text:.40?}")))?;
    let body = match text.find("\r\n\r\n") {
        Some(at) => text[at + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_routes() -> MonitorRoutes {
        MonitorRoutes {
            metrics: Box::new(|| "# TYPE x counter\nx 1\n".to_string()),
            health: Box::new(|| (true, "{\"ok\":true}".to_string())),
            explain: Box::new(|q| {
                if q.chars().all(|c| "ACGT ".contains(c)) {
                    Ok(format!("{{\"pattern\":\"{q}\"}}"))
                } else {
                    Err(format!("bad pattern {q:?}"))
                }
            }),
            timeline: Box::new(|metric, window| {
                format!(
                    "{{\"metric\":\"{}\",\"window_ms\":{}}}",
                    metric.unwrap_or("*"),
                    window.map_or(0, |w| w.as_millis())
                )
            }),
            journal: Box::new(|n| format!("{{\"n\":{n}}}")),
        }
    }

    /// Bind on an ephemeral port, serve in a background thread, and return
    /// the address plus the serve-thread handle.
    fn spawn_server(
        routes: MonitorRoutes,
        max_conns: usize,
    ) -> (SocketAddr, std::thread::JoinHandle<u64>) {
        let server = MonitorServer::bind("127.0.0.1:0", routes, max_conns).unwrap();
        let addr = server.local_addr();
        let h = std::thread::spawn(move || server.serve().unwrap());
        (addr, h)
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn routes_answer_and_quit_shuts_down() {
        let (addr, h) = spawn_server(test_routes(), 4);

        let (st, body) = http_get(addr, "/metrics", T).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("# TYPE x counter"), "{body}");

        let (st, body) = http_get(addr, "/health", T).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, "{\"ok\":true}");

        let (st, body) = http_get(addr, "/explain?q=ACG%20T+A", T).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, "{\"pattern\":\"ACG T A\"}", "percent/plus decoding");

        let (st, _) = http_get(addr, "/explain?q=zzz", T).unwrap();
        assert_eq!(st, 400);
        let (st, _) = http_get(addr, "/explain", T).unwrap();
        assert_eq!(st, 400, "missing q parameter");
        let (st, _) = http_get(addr, "/nope", T).unwrap();
        assert_eq!(st, 404);

        let (st, body) = http_get(addr, "/timeline", T).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, "{\"metric\":\"*\",\"window_ms\":0}", "unfiltered timeline");
        let (st, body) = http_get(addr, "/timeline?metric=serve.qps&window=2.5", T).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, "{\"metric\":\"serve.qps\",\"window_ms\":2500}");
        let (st, _) = http_get(addr, "/timeline?window=never", T).unwrap();
        assert_eq!(st, 400, "non-numeric window is rejected");
        let (st, _) = http_get(addr, "/timeline?window=-1", T).unwrap();
        assert_eq!(st, 400, "negative window is rejected");

        let (st, body) = http_get(addr, "/journal", T).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, "{\"n\":32}", "default journal depth");
        let (st, body) = http_get(addr, "/journal?n=5", T).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, "{\"n\":5}");
        let (st, _) = http_get(addr, "/journal?n=minus-three", T).unwrap();
        assert_eq!(st, 400, "non-numeric n is rejected");

        let (st, body) = http_get(addr, "/quit", T).unwrap();
        assert_eq!(st, 200);
        assert!(body.contains("shutting down"));
        let served = h.join().unwrap();
        // 14 requests above; the stop-flag wakeup connection is not served.
        assert_eq!(served, 14);
    }

    #[test]
    fn unhealthy_route_answers_503() {
        let routes = MonitorRoutes {
            health: Box::new(|| (false, "{\"ok\":false}".to_string())),
            ..test_routes()
        };
        let (addr, h) = spawn_server(routes, 4);
        let (st, body) = http_get(addr, "/health", T).unwrap();
        assert_eq!(st, 503);
        assert_eq!(body, "{\"ok\":false}");
        http_get(addr, "/quit", T).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let (addr, h) = spawn_server(test_routes(), 4);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");
        http_get(addr, "/quit", T).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn connection_bound_rejects_with_503() {
        // A zero-connection server answers every request 503-busy without
        // reading it. The serve thread is leaked deliberately: with the
        // bound at zero no request (including /quit) can reach a handler.
        let server = MonitorServer::bind("127.0.0.1:0", test_routes(), 0).unwrap();
        let addr = server.local_addr();
        std::thread::spawn(move || server.serve());
        let (st, body) = http_get(addr, "/metrics", T).unwrap();
        assert_eq!(st, 503);
        assert!(body.contains("connection limit"), "{body}");
    }

    #[test]
    fn percent_decoding_handles_escapes() {
        assert_eq!(percent_decode("A%41+%2b"), "AA +");
        assert_eq!(percent_decode("100%"), "100%", "trailing percent passes through");
        assert_eq!(percent_decode("%zz"), "%zz", "invalid escape passes through");
    }
}
