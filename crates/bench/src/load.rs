//! Seeded load generation and coordinated-omission-safe measurement
//! (`exp scale`).
//!
//! The paper's Table 6 compares engines on total work; the ROADMAP's north
//! star is "heavy traffic from millions of users". Bridging the two needs a
//! measurement layer, not another microbench: this module generates
//! corpora and query mixes deterministically from one printed seed, drives
//! any [`ServeIndex`] through the production [`QueryEngine`], and sweeps
//! offered load to produce throughput-vs-latency curves per engine × mix ×
//! arrival mode.
//!
//! # Coordinated omission
//!
//! A closed-loop driver (each of C virtual clients waits for its answer
//! before sending the next request) measures latency from *submit* to
//! completion. Under overload the clients themselves slow down, so the
//! slow periods generate fewer samples exactly when latency is worst — the
//! histogram silently under-weights the pain. The open-loop driver instead
//! fixes an arrival *schedule* (Poisson or constant-rate, independent of
//! the engine) and measures each query from its **intended arrival time**:
//! if the engine stalls for 100 ms, every query scheduled during the stall
//! is charged its full queue wait. Both drivers are here — closed-loop for
//! capacity discovery, open-loop for honest tail latency — and
//! [`Stage::DispatchLag`] plus the [`LoadLedger`] gauges expose when the
//! generator itself falls behind its schedule (the point past which even
//! open-loop numbers go soft).
//!
//! # Determinism contract
//!
//! Everything *planned* — corpus bytes, query sequences, arrival schedules,
//! [`LoadPlan::summary_json`] — is a pure function of the run seed and the
//! explicit parameters, reproducible byte-for-byte (property-tested in
//! `tests/load.rs`). Everything *measured* (qps, quantiles) is of course
//! machine-dependent; the committed `BENCH_scale.json` gates coverage
//! always and throughput only when the run fingerprint matches.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use genseq::MarkovModel;
use rand::rngs::SmallRng;
use rand::Rng;
use spine::engine::{EngineConfig, QueryEngine, QueryOutcome, ServeIndex, ShedPolicy};
use spine::{NodeId, SegmentConfig, SegmentedSpine, Spine};
use strindex::telemetry::LoadLedger;
use strindex::{Alphabet, Code, CountersSnapshot, MetricsRegistry, Stage, StringIndex};
use suffix_array::SaIndex;
use suffix_tree::SuffixTree;
use suffix_trie::SuffixTrie;

use crate::rng;
use crate::snapshot::{check_schema_version, json_number, SnapshotError, SCHEMA_VERSION};

// ---------------------------------------------------------------------------
// Corpus streaming.
// ---------------------------------------------------------------------------

/// Synthetic corpus family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// Order-3 Markov DNA (the genseq presets' background texture).
    Dna,
    /// Order-1 Markov protein.
    Protein,
    /// Templated ASCII server-log lines (timestamps, paths, status codes).
    LogText,
}

impl CorpusKind {
    pub const ALL: [CorpusKind; 3] = [CorpusKind::Dna, CorpusKind::Protein, CorpusKind::LogText];

    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Dna => "dna",
            CorpusKind::Protein => "protein",
            CorpusKind::LogText => "logtext",
        }
    }

    pub fn parse(s: &str) -> Option<CorpusKind> {
        Self::ALL.iter().copied().find(|k| k.name() == s)
    }

    pub fn alphabet(self) -> Alphabet {
        match self {
            CorpusKind::Dna => Alphabet::dna(),
            CorpusKind::Protein => Alphabet::protein(),
            CorpusKind::LogText => Alphabet::ascii(),
        }
    }
}

/// One corpus: kind, total length, and the run seed its bytes derive from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    pub kind: CorpusKind,
    /// Total symbols to stream.
    pub len: usize,
    /// Run seed; the stream derives its own sub-streams from it.
    pub seed: u64,
    /// Symbols per streamed chunk — also the document size for
    /// document-oriented builds ([`SegmentedSpine`]), so reservoir windows
    /// (always within-chunk) stay within one document.
    pub chunk: usize,
}

impl CorpusSpec {
    pub fn new(kind: CorpusKind, len: usize, seed: u64) -> CorpusSpec {
        CorpusSpec { kind, len, seed, chunk: 16 << 10 }
    }
}

/// A deterministic chunked generator for a [`CorpusSpec`]. The harness
/// never needs the whole corpus in memory: consumers that can ingest
/// incrementally (the segmented LSM store) pull chunks straight into
/// documents, and two streams with equal specs yield identical bytes, so a
/// second pass replaces a buffer.
///
/// Markov chunks restart their context at chunk boundaries (the model is
/// sampled per chunk); the discontinuity is a few symbols of extra entropy
/// every `chunk` symbols, irrelevant to index behavior and the price of
/// never materializing the stream.
pub struct CorpusStream {
    spec: CorpusSpec,
    alphabet: Alphabet,
    model: Option<MarkovModel>,
    draws: SmallRng,
    produced: usize,
    line_no: u64,
}

impl CorpusStream {
    pub fn new(spec: CorpusSpec) -> CorpusStream {
        let alphabet = spec.kind.alphabet();
        let mut model_rng = rng::stream(spec.seed, "corpus.model", 0);
        let model = match spec.kind {
            CorpusKind::Dna => Some(MarkovModel::random(&alphabet, 3, 0.35, &mut model_rng)),
            CorpusKind::Protein => Some(MarkovModel::random(&alphabet, 1, 0.25, &mut model_rng)),
            CorpusKind::LogText => None,
        };
        CorpusStream {
            spec,
            alphabet,
            model,
            draws: rng::stream(spec.seed, "corpus.draws", 0),
            produced: 0,
            line_no: 0,
        }
    }

    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Templated log line: realistic repeated structure (methods, paths,
    /// levels) over the ASCII alphabet, with enough numeric churn that long
    /// patterns still discriminate.
    fn log_line(&mut self) -> Vec<Code> {
        const METHODS: [&str; 4] = ["GET", "PUT", "POST", "DELETE"];
        const PATHS: [&str; 5] = ["users", "orders", "items", "health", "search"];
        const LEVELS: [&str; 3] = ["INFO", "WARN", "ERROR"];
        self.line_no += 1;
        let line = format!(
            "2026-08-09T10:{:02}:{:02} {} {} /api/v{}/{}/{} {} {}ms\n",
            self.draws.gen_range(0..60u32),
            self.draws.gen_range(0..60u32),
            LEVELS[self.draws.gen_range(0..LEVELS.len())],
            METHODS[self.draws.gen_range(0..METHODS.len())],
            self.draws.gen_range(1..4u32),
            PATHS[self.draws.gen_range(0..PATHS.len())],
            self.line_no,
            200 + self.draws.gen_range(0..4u32) * 100,
            self.draws.gen_range(1..250u32),
        );
        self.alphabet.encode(line.as_bytes()).expect("log template is ASCII")
    }
}

impl Iterator for CorpusStream {
    type Item = Vec<Code>;

    fn next(&mut self) -> Option<Vec<Code>> {
        if self.produced >= self.spec.len {
            return None;
        }
        let want = self.spec.chunk.min(self.spec.len - self.produced);
        let chunk = match &self.model {
            Some(m) => m.sample(want, &mut self.draws),
            None => {
                let mut c = Vec::with_capacity(want + 64);
                while c.len() < want {
                    c.extend(self.log_line());
                }
                c.truncate(want);
                c
            }
        };
        self.produced += chunk.len();
        Some(chunk)
    }
}

/// A bounded reservoir of corpus windows sampled while streaming, so query
/// mixes can reference real substrings without the harness retaining the
/// corpus. Windows never span chunk boundaries (hence never span documents
/// in document-oriented builds).
pub struct WindowReservoir {
    cap: usize,
    window_len: usize,
    seen: u64,
    draws: SmallRng,
    windows: Vec<Vec<Code>>,
}

impl WindowReservoir {
    pub fn new(cap: usize, window_len: usize, seed: u64) -> WindowReservoir {
        WindowReservoir {
            cap: cap.max(1),
            window_len: window_len.max(4),
            seen: 0,
            draws: rng::stream(seed, "corpus.reservoir", 0),
            windows: Vec::new(),
        }
    }

    /// Offer one streamed chunk; a handful of its windows become reservoir
    /// candidates (classic Algorithm R over all candidates ever offered).
    pub fn offer(&mut self, chunk: &[Code]) {
        if chunk.len() < self.window_len {
            return;
        }
        let candidates = 8;
        for _ in 0..candidates {
            let start = self.draws.gen_range(0..=(chunk.len() - self.window_len));
            let w = chunk[start..start + self.window_len].to_vec();
            self.seen += 1;
            if self.windows.len() < self.cap {
                self.windows.push(w);
            } else {
                let j = self.draws.gen_range(0..self.seen);
                if (j as usize) < self.cap {
                    self.windows[j as usize] = w;
                }
            }
        }
    }

    pub fn into_windows(self) -> Vec<Vec<Code>> {
        self.windows
    }
}

/// A streamed corpus reduced to what the harness keeps: the text (for
/// whole-text engine builds), chunk size (for document-oriented rebuilds
/// from an equal stream), and the window reservoir feeding query mixes.
pub struct Corpus {
    pub spec: CorpusSpec,
    pub alphabet: Alphabet,
    pub text: Vec<Code>,
    pub windows: Vec<Vec<Code>>,
}

impl Corpus {
    /// Stream the spec once, retaining text + windows.
    pub fn materialize(spec: CorpusSpec) -> Corpus {
        let mut reservoir = WindowReservoir::new(512, 24, spec.seed);
        let mut text = Vec::with_capacity(spec.len);
        let mut stream = CorpusStream::new(spec);
        let alphabet = stream.alphabet().clone();
        for chunk in &mut stream {
            reservoir.offer(&chunk);
            text.extend(chunk);
        }
        Corpus { spec, alphabet, text, windows: reservoir.into_windows() }
    }
}

// ---------------------------------------------------------------------------
// Query mixes.
// ---------------------------------------------------------------------------

/// Query-mix models over a corpus's window reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Uniformly random substrings of uniformly random windows.
    Uniform,
    /// Zipf-skewed draws over a small hot set of patterns (cache-friendly
    /// "popular query" traffic).
    Zipf,
    /// Adversarial near-misses: a real substring with its last symbol
    /// flipped, maximizing the backbone walk before the miss.
    NearMiss,
    /// Mostly random absent patterns (filter/negative-lookup traffic).
    MissHeavy,
}

impl MixKind {
    pub const ALL: [MixKind; 4] =
        [MixKind::Uniform, MixKind::Zipf, MixKind::NearMiss, MixKind::MissHeavy];

    pub fn name(self) -> &'static str {
        match self {
            MixKind::Uniform => "uniform",
            MixKind::Zipf => "zipf",
            MixKind::NearMiss => "nearmiss",
            MixKind::MissHeavy => "missheavy",
        }
    }

    pub fn parse(s: &str) -> Option<MixKind> {
        Self::ALL.iter().copied().find(|m| m.name() == s)
    }
}

/// Hot-set size for the Zipf mix.
const ZIPF_HOT: usize = 16;

/// Generate `count` queries of `mix` over `corpus`, deterministically from
/// the corpus seed (stream `mix.<name>`).
pub fn mix_queries(corpus: &Corpus, mix: MixKind, count: usize) -> Vec<Vec<Code>> {
    let tag = format!("mix.{}", mix.name());
    let mut r = rng::stream(corpus.spec.seed, &tag, 0);
    let windows = &corpus.windows;
    assert!(!windows.is_empty(), "corpus too small to sample query windows");
    let sub = |r: &mut SmallRng, lo: usize, hi: usize| -> Vec<Code> {
        let w = &windows[r.gen_range(0..windows.len())];
        let len = r.gen_range(lo..=hi.min(w.len()));
        let start = r.gen_range(0..=(w.len() - len));
        w[start..start + len].to_vec()
    };
    match mix {
        MixKind::Uniform => (0..count).map(|_| sub(&mut r, 6, 18)).collect(),
        MixKind::Zipf => {
            // Hot set drawn once, then rank-sampled with weight 1/(rank+1)
            // by inverse CDF over the cumulative harmonic weights.
            let hot: Vec<Vec<Code>> = (0..ZIPF_HOT).map(|_| sub(&mut r, 8, 16)).collect();
            let mut cum = Vec::with_capacity(hot.len());
            let mut total = 0.0f64;
            for rank in 0..hot.len() {
                total += 1.0 / (rank as f64 + 1.0);
                cum.push(total);
            }
            (0..count)
                .map(|_| {
                    let u: f64 = r.gen_range(0.0..total);
                    let rank = cum.partition_point(|&c| c <= u).min(hot.len() - 1);
                    hot[rank].clone()
                })
                .collect()
        }
        MixKind::NearMiss => (0..count)
            .map(|_| {
                let mut q = sub(&mut r, 12, 22);
                let size = corpus.alphabet.size() as u32;
                let last = q.last_mut().expect("near-miss pattern is non-empty");
                let bump = 1 + r.gen_range(0..size - 1);
                *last = ((*last as u32 + bump) % size) as Code;
                q
            })
            .collect(),
        MixKind::MissHeavy => (0..count)
            .map(|_| {
                if r.gen_range(0..100u32) < 85 {
                    // Random symbols: at DNA 4^12 ≫ corpus length these are
                    // almost surely absent (and absent by construction for
                    // larger alphabets).
                    let len = r.gen_range(12..=16usize);
                    let size = corpus.alphabet.size() as u32;
                    (0..len).map(|_| r.gen_range(0..size) as Code).collect()
                } else {
                    sub(&mut r, 6, 14)
                }
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Load plans: arrival schedules.
// ---------------------------------------------------------------------------

/// How load is offered to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Fixed concurrency: C virtual clients, each submitting the next query
    /// when its previous one completes. Latency = submit → completion.
    Closed,
    /// Scheduled arrivals at a fixed offered rate, independent of engine
    /// progress. Latency = *intended arrival* → completion.
    Open,
}

impl ArrivalMode {
    pub fn name(self) -> &'static str {
        match self {
            ArrivalMode::Closed => "closed",
            ArrivalMode::Open => "open",
        }
    }
}

/// Inter-arrival process for open-loop plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps (memoryless bursts).
    Poisson,
    /// Exact constant spacing.
    Constant,
}

/// A fully determined unit of load: the query sequence plus either a
/// concurrency level (closed) or an arrival schedule (open). Everything
/// here is a pure function of its inputs — see the module docs'
/// determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPlan {
    pub mode: ArrivalMode,
    pub queries: Vec<Vec<Code>>,
    /// Intended arrival offsets from run start, nanoseconds; empty when
    /// closed-loop.
    pub arrivals_ns: Vec<u64>,
    /// Virtual clients (closed-loop only).
    pub concurrency: usize,
    /// Offered rate (open-loop only), queries/second.
    pub offered_qps: f64,
}

impl LoadPlan {
    pub fn closed(queries: Vec<Vec<Code>>, concurrency: usize) -> LoadPlan {
        LoadPlan {
            mode: ArrivalMode::Closed,
            queries,
            arrivals_ns: Vec::new(),
            concurrency: concurrency.max(1),
            offered_qps: 0.0,
        }
    }

    /// Open-loop plan at `offered_qps`. The schedule derives from stream
    /// `arrivals` of `seed` (Poisson) or is exact spacing (constant).
    pub fn open(
        queries: Vec<Vec<Code>>,
        offered_qps: f64,
        process: ArrivalProcess,
        seed: u64,
    ) -> LoadPlan {
        assert!(offered_qps > 0.0, "open-loop plans need a positive rate");
        let mean_ns = 1e9 / offered_qps;
        let mut arrivals = Vec::with_capacity(queries.len());
        let mut t = 0.0f64;
        match process {
            ArrivalProcess::Constant => {
                for i in 0..queries.len() {
                    arrivals.push((i as f64 * mean_ns) as u64);
                }
            }
            ArrivalProcess::Poisson => {
                let mut r = rng::stream(seed, "arrivals", 0);
                for _ in 0..queries.len() {
                    let u: f64 = r.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() * mean_ns;
                    arrivals.push(t as u64);
                }
            }
        }
        LoadPlan {
            mode: ArrivalMode::Open,
            queries,
            arrivals_ns: arrivals,
            concurrency: 0,
            offered_qps,
        }
    }

    /// A deterministic fingerprint of the plan: byte-identical across runs
    /// with equal inputs (the property the determinism tests pin). FNV-1a
    /// digests stand in for the full sequences so the summary stays small.
    pub fn summary_json(&self) -> String {
        let mut qh: u64 = 0xcbf2_9ce4_8422_2325;
        for q in &self.queries {
            for &c in q {
                qh = (qh ^ c as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            qh = (qh ^ 0xFF).wrapping_mul(0x0000_0100_0000_01b3); // separator
        }
        let mut ah: u64 = 0xcbf2_9ce4_8422_2325;
        for &a in &self.arrivals_ns {
            for byte in a.to_le_bytes() {
                ah = (ah ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        format!(
            "{{\"mode\":\"{}\",\"queries\":{},\"concurrency\":{},\"offered_qps\":{:.3},\
             \"query_digest\":{},\"arrival_digest\":{},\"last_arrival_ns\":{}}}",
            self.mode.name(),
            self.queries.len(),
            self.concurrency,
            self.offered_qps,
            qh,
            ah,
            self.arrivals_ns.last().copied().unwrap_or(0),
        )
    }
}

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

/// What one plan execution measured.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-query latency, microseconds, sorted ascending. Closed-loop:
    /// submit → completion. Open-loop: intended arrival → completion (queue
    /// wait charged).
    pub latencies_us: Vec<u64>,
    /// Per-query dispatch lag (actual submit − intended arrival), µs,
    /// sorted ascending; empty for closed-loop.
    pub dispatch_lag_us: Vec<u64>,
    pub wall_s: f64,
    pub achieved_qps: f64,
    pub completed: u64,
    pub timed_out: u64,
    pub failed: u64,
}

impl RunOutcome {
    fn quantile(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    pub fn p50_us(&self) -> u64 {
        Self::quantile(&self.latencies_us, 0.50)
    }

    pub fn p99_us(&self) -> u64 {
        Self::quantile(&self.latencies_us, 0.99)
    }

    pub fn max_us(&self) -> u64 {
        self.latencies_us.last().copied().unwrap_or(0)
    }

    pub fn dispatch_p99_us(&self) -> u64 {
        Self::quantile(&self.dispatch_lag_us, 0.99)
    }
}

/// Execute `plan` against a **fresh** engine (no prior submissions — the
/// driver indexes its timestamp tables by [`spine::engine::QueryId`], which
/// must start at 0). Panics if the engine was already used.
///
/// The closed-loop driver keeps exactly `concurrency` queries in flight via
/// the engine's completion hook. The open-loop driver submits on the plan's
/// schedule — never early, as late as the dispatcher is slow — recording
/// the slip into [`Stage::DispatchLag`] (when the engine has telemetry) and
/// measuring latency from the *intended* instant. `ledger`, when given,
/// receives offered/dispatched/completed counts for live gauges.
pub fn run_plan<S: ServeIndex + 'static>(
    engine: &QueryEngine<S>,
    plan: &LoadPlan,
    ledger: Option<Arc<LoadLedger>>,
) -> RunOutcome {
    let n = plan.queries.len();
    assert!(n > 0, "empty plan");
    let complete_ns: Arc<Vec<AtomicU64>> =
        Arc::new((0..n).map(|_| AtomicU64::new(u64::MAX)).collect());
    // (in-flight, completed) under one mutex; the condvar wakes the
    // closed-loop dispatcher when a slot frees.
    let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
    let start = Instant::now();
    {
        let complete_ns = Arc::clone(&complete_ns);
        let gate = Arc::clone(&gate);
        let ledger = ledger.clone();
        engine.set_completion_hook(move |id| {
            if let Some(slot) = complete_ns.get(id as usize) {
                slot.store(start.elapsed().as_nanos() as u64, Relaxed);
            }
            if let Some(l) = &ledger {
                l.record_completed();
            }
            let (lock, cv) = &*gate;
            let mut in_flight = lock.lock().unwrap();
            *in_flight = in_flight.saturating_sub(1);
            drop(in_flight);
            cv.notify_one();
        });
    }
    let lag_hist = engine.registry().map(|r| r.stage(Stage::DispatchLag));
    let mut submit_ns: Vec<u64> = Vec::with_capacity(n);
    let mut lags_us: Vec<u64> = Vec::with_capacity(if plan.arrivals_ns.is_empty() { 0 } else { n });
    for (i, q) in plan.queries.iter().enumerate() {
        match plan.mode {
            ArrivalMode::Closed => {
                let (lock, cv) = &*gate;
                let mut in_flight = lock.lock().unwrap();
                while *in_flight >= plan.concurrency {
                    in_flight = cv.wait(in_flight).unwrap();
                }
                *in_flight += 1;
            }
            ArrivalMode::Open => {
                let intended = Duration::from_nanos(plan.arrivals_ns[i]);
                loop {
                    let now = start.elapsed();
                    if now >= intended {
                        break;
                    }
                    std::thread::sleep(intended - now);
                }
            }
        }
        let now_ns = start.elapsed().as_nanos() as u64;
        submit_ns.push(now_ns);
        if let Some(l) = &ledger {
            l.record_offered(1);
            l.record_dispatched();
        }
        if plan.mode == ArrivalMode::Open {
            let lag = now_ns.saturating_sub(plan.arrivals_ns[i]);
            lags_us.push(lag / 1_000);
            if let Some(h) = &lag_hist {
                h.record(Duration::from_nanos(lag));
            }
        }
        let id = engine.submit(q.clone()).expect("Block policy never sheds");
        assert_eq!(id as usize, i, "run_plan needs a fresh engine (ids must start at 0)");
    }
    let results = engine.drain();
    // The hook fires after results publish, outside the engine's state
    // lock, so drain() can return a beat before the last stamps land.
    for slot in complete_ns.iter() {
        let mut spins = 0u32;
        while slot.load(Relaxed) == u64::MAX {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 10_000_000, "completion hook never fired for a drained query");
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let (mut completed, mut timed_out, mut failed) = (0u64, 0u64, 0u64);
    for r in &results {
        match r.outcome {
            QueryOutcome::Done(_) | QueryOutcome::DoneDocs(_) => completed += 1,
            QueryOutcome::TimedOut => timed_out += 1,
            QueryOutcome::Failed(_) => failed += 1,
        }
    }
    let mut latencies_us: Vec<u64> = (0..n)
        .map(|i| {
            let done = complete_ns[i].load(Relaxed);
            let basis = match plan.mode {
                ArrivalMode::Closed => submit_ns[i],
                ArrivalMode::Open => plan.arrivals_ns[i],
            };
            done.saturating_sub(basis) / 1_000
        })
        .collect();
    latencies_us.sort_unstable();
    lags_us.sort_unstable();
    RunOutcome {
        latencies_us,
        dispatch_lag_us: lags_us,
        wall_s,
        achieved_qps: results.len() as f64 / wall_s.max(1e-9),
        completed,
        timed_out,
        failed,
    }
}

// ---------------------------------------------------------------------------
// Engines under test.
// ---------------------------------------------------------------------------

/// Serve any whole-text [`StringIndex`] through the [`QueryEngine`]: each
/// pattern answers with its occurrence end positions (matching the SPINE
/// convention `end = start + len`), so every comparison engine rides the
/// same batching, queueing, and telemetry path as SPINE itself.
pub struct ServeAdapter<T: StringIndex + Send + Sync> {
    index: T,
    probe: Option<fn(&T) -> CountersSnapshot>,
}

impl<T: StringIndex + Send + Sync> ServeAdapter<T> {
    pub fn new(index: T) -> Self {
        ServeAdapter { index, probe: None }
    }

    /// Attach a work-counter probe (engines that keep [`strindex::Counters`]).
    pub fn with_probe(index: T, probe: fn(&T) -> CountersSnapshot) -> Self {
        ServeAdapter { index, probe: Some(probe) }
    }

    pub fn index(&self) -> &T {
        &self.index
    }
}

impl<T: StringIndex + Send + Sync> ServeIndex for ServeAdapter<T> {
    fn answer_patterns(&self, patterns: &[&[Code]]) -> Vec<QueryOutcome> {
        patterns
            .iter()
            .map(|p| {
                if p.is_empty() {
                    return QueryOutcome::Done((0..=self.index.text_len() as NodeId).collect());
                }
                let mut ends: Vec<NodeId> = self
                    .index
                    .find_all(p)
                    .into_iter()
                    .map(|start| (start + p.len()) as NodeId)
                    .collect();
                ends.sort_unstable();
                QueryOutcome::Done(ends)
            })
            .collect()
    }

    fn counters_snapshot(&self) -> CountersSnapshot {
        match self.probe {
            Some(f) => f(&self.index),
            None => CountersSnapshot {
                nodes_checked: 0,
                edges_traversed: 0,
                links_followed: 0,
                extribs_scanned: 0,
            },
        }
    }
}

/// Type-erased [`ServeIndex`], so one harness loop can hold heterogeneous
/// engines. (A plain `dyn ServeIndex` cannot parameterize [`QueryEngine`],
/// which needs a sized type.)
pub struct BoxedServe(Box<dyn ServeIndex>);

impl BoxedServe {
    pub fn new(inner: impl ServeIndex + 'static) -> BoxedServe {
        BoxedServe(Box::new(inner))
    }
}

impl ServeIndex for BoxedServe {
    fn answer_patterns(&self, patterns: &[&[Code]]) -> Vec<QueryOutcome> {
        self.0.answer_patterns(patterns)
    }

    fn counters_snapshot(&self) -> CountersSnapshot {
        self.0.counters_snapshot()
    }
}

/// The in-repo engines the head-to-head sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// In-memory SPINE via the [`spine::FallibleSpineOps`] batch path.
    Spine,
    /// Segmented LSM SPINE, built incrementally from the corpus stream.
    SpineSeg,
    /// Suffix array (SA-IS + LCP) via [`ServeAdapter`].
    SuffixArray,
    /// Ukkonen suffix tree via [`ServeAdapter`].
    SuffixTree,
    /// Suffix trie via [`ServeAdapter`] (node count is O(n²)-ish, so the
    /// harness builds it over a capped corpus prefix — see
    /// [`ScaleConfig::trie_corpus_len`]).
    Trie,
}

impl EngineKind {
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Spine,
        EngineKind::SpineSeg,
        EngineKind::SuffixArray,
        EngineKind::SuffixTree,
        EngineKind::Trie,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Spine => "spine",
            EngineKind::SpineSeg => "spine-seg",
            EngineKind::SuffixArray => "suffix-array",
            EngineKind::SuffixTree => "suffix-tree",
            EngineKind::Trie => "trie",
        }
    }

    pub fn parse(s: &str) -> Option<EngineKind> {
        Self::ALL.iter().copied().find(|e| e.name() == s)
    }
}

/// Build `kind` over the corpus, type-erased for the harness. The
/// segmented store is built from a fresh [`CorpusStream`] (chunk =
/// document, seal every few documents) — the streamed-ingest path — while
/// whole-text engines read `corpus.text`.
pub fn build_engine(kind: EngineKind, corpus: &Corpus, dir: &std::path::Path) -> BoxedServe {
    match kind {
        EngineKind::Spine => BoxedServe::new(
            Spine::build(corpus.alphabet.clone(), &corpus.text).expect("spine build"),
        ),
        EngineKind::SpineSeg => {
            let cfg = SegmentConfig {
                memtable_max_symbols: corpus.spec.chunk * 2,
                ..SegmentConfig::default()
            };
            let store = SegmentedSpine::create(corpus.alphabet.clone(), dir, cfg)
                .expect("segment store create");
            for chunk in CorpusStream::new(corpus.spec) {
                store.add_document(&chunk).expect("segment add_document");
            }
            store.force_seal().expect("segment seal");
            BoxedServe::new(store)
        }
        EngineKind::SuffixArray => BoxedServe::new(ServeAdapter::new(SaIndex::build(
            corpus.alphabet.clone(),
            &corpus.text,
        ))),
        EngineKind::SuffixTree => BoxedServe::new(ServeAdapter::with_probe(
            SuffixTree::build(corpus.alphabet.clone(), &corpus.text).expect("suffix tree build"),
            |t| t.counters().snapshot(),
        )),
        EngineKind::Trie => BoxedServe::new(ServeAdapter::new(SuffixTrie::build(
            corpus.alphabet.clone(),
            &corpus.text,
        ))),
    }
}

// ---------------------------------------------------------------------------
// The scale sweep.
// ---------------------------------------------------------------------------

/// Parameters of one `exp scale` run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Run seed; every stream derives from it (printed at run start).
    pub seed: u64,
    pub corpus_kind: CorpusKind,
    /// Corpus length for every engine except the trie.
    pub corpus_len: usize,
    /// Capped corpus length for the suffix trie (O(n²)-ish nodes). Its
    /// queries come from its own prefix corpus, so hit mixes still hit —
    /// the `corpus_len` field of each curve records the cap.
    pub trie_corpus_len: usize,
    /// Queries measured per curve point.
    pub queries_per_point: usize,
    /// Engine worker threads.
    pub workers: usize,
    pub engines: Vec<EngineKind>,
    /// Mixes run on *every* engine.
    pub mixes: Vec<MixKind>,
    /// Extra mixes run on SPINE only (adversarial deep-dives).
    pub spine_extra_mixes: Vec<MixKind>,
    /// Closed-loop concurrency levels.
    pub closed_levels: Vec<usize>,
    /// Open-loop offered rates, as fractions of the engine's calibrated
    /// closed-loop capacity (values past 1.0 probe beyond the knee).
    pub open_fractions: Vec<f64>,
    pub quick: bool,
    /// Print per-point progress lines.
    pub verbose: bool,
}

impl ScaleConfig {
    /// The full sweep behind the committed `BENCH_scale.json`.
    pub fn full(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            corpus_kind: CorpusKind::Dna,
            corpus_len: 1 << 20,
            trie_corpus_len: 4_000,
            queries_per_point: 384,
            workers: 4,
            engines: EngineKind::ALL.to_vec(),
            mixes: vec![MixKind::Uniform, MixKind::Zipf],
            spine_extra_mixes: vec![MixKind::NearMiss, MixKind::MissHeavy],
            closed_levels: vec![1, 2, 4, 8],
            open_fractions: vec![0.25, 0.5, 0.75, 0.9, 1.1],
            quick: false,
            verbose: true,
        }
    }

    /// CI-sized: same curve coverage (engine × mix × mode), tiny corpus and
    /// few points, so the run takes seconds.
    pub fn quick(seed: u64) -> ScaleConfig {
        ScaleConfig {
            corpus_len: 64 << 10,
            trie_corpus_len: 1_500,
            queries_per_point: 96,
            closed_levels: vec![1, 4],
            open_fractions: vec![0.5, 1.1],
            quick: true,
            ..ScaleConfig::full(seed)
        }
    }
}

/// One measured point on a throughput-vs-latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Closed-loop concurrency (0 for open-loop points).
    pub concurrency: usize,
    /// Open-loop offered rate (0 for closed-loop points).
    pub offered_qps: f64,
    pub achieved_qps: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub completed: u64,
    pub failed: u64,
    /// p99 generator slip behind the schedule (open-loop; 0 closed).
    pub dispatch_p99_us: u64,
    /// Stage attribution from the engine's shared registry, total
    /// milliseconds over the point's run: where a knee's time went.
    pub admission_ms: f64,
    pub scan_ms: f64,
    pub merge_ms: f64,
}

impl CurvePoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"concurrency\":{},\"offered_qps\":{:.1},\"achieved_qps\":{:.1},\
             \"p50_us\":{},\"p99_us\":{},\"max_us\":{},\"completed\":{},\"failed\":{},\
             \"dispatch_p99_us\":{},\"admission_ms\":{:.3},\"scan_ms\":{:.3},\
             \"merge_ms\":{:.3}}}",
            self.concurrency,
            self.offered_qps,
            self.achieved_qps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.completed,
            self.failed,
            self.dispatch_p99_us,
            self.admission_ms,
            self.scan_ms,
            self.merge_ms,
        )
    }
}

/// One engine × mix × mode throughput-vs-latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCurve {
    pub engine: String,
    pub mix: String,
    pub mode: String,
    /// Corpus length this engine actually indexed (the trie cap shows
    /// here).
    pub corpus_len: usize,
    pub build_s: f64,
    /// Calibrated closed-loop capacity the open fractions refer to.
    pub capacity_qps: f64,
    pub points: Vec<CurvePoint>,
}

impl LoadCurve {
    /// The curve's identity within a report.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.engine, self.mix, self.mode)
    }

    /// Best throughput across the curve's points.
    pub fn peak_qps(&self) -> f64 {
        self.points.iter().map(|p| p.achieved_qps).fold(0.0, f64::max)
    }

    fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(CurvePoint::to_json).collect();
        format!(
            "{{\"engine\":\"{}\",\"mix\":\"{}\",\"mode\":\"{}\",\"corpus_len\":{},\
             \"build_s\":{:.4},\"capacity_qps\":{:.1},\"points\":[{}]}}",
            self.engine,
            self.mix,
            self.mode,
            self.corpus_len,
            self.build_s,
            self.capacity_qps,
            points.join(",")
        )
    }
}

/// The `BENCH_scale.json` payload: run fingerprint + every curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    pub seed: u64,
    pub corpus_kind: String,
    pub corpus_len: usize,
    pub trie_corpus_len: usize,
    pub queries_per_point: usize,
    pub workers: usize,
    pub quick: bool,
    pub curves: Vec<LoadCurve>,
}

/// Throughput may drop to this fraction of a matching baseline's per-curve
/// peak before the check fails. Looser than the serve gate's 0.8: a scale
/// run measures 20+ short curves, so per-curve noise is higher.
pub const SCALE_QPS_FLOOR: f64 = 0.5;

impl ScaleReport {
    pub fn to_json(&self) -> String {
        let curves: Vec<String> = self.curves.iter().map(LoadCurve::to_json).collect();
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"seed\":{},\"corpus_kind\":\"{}\",\
             \"corpus_len\":{},\"trie_corpus_len\":{},\"queries_per_point\":{},\
             \"workers\":{},\"quick\":{},\"curves\":[\n{}\n]}}",
            self.seed,
            self.corpus_kind,
            self.corpus_len,
            self.trie_corpus_len,
            self.queries_per_point,
            self.workers,
            self.quick,
            curves.join(",\n")
        )
    }

    /// Parse a report back out of [`Self::to_json`]'s output. Like the
    /// other snapshots, rejects missing/unknown `schema_version` with a
    /// typed error before touching any field.
    pub fn from_json(text: &str) -> Result<ScaleReport, SnapshotError> {
        check_schema_version(text)?;
        let get = |t: &str, key: &str| {
            json_number(t, key)
                .ok_or_else(|| SnapshotError::Malformed(format!("missing numeric field {key:?}")))
        };
        let mut curves = Vec::new();
        // Each curve object begins at `{"engine":"`; the emitter writes one
        // per line, so splitting on the marker is unambiguous.
        for block in text.split("{\"engine\":\"").skip(1) {
            let engine = block
                .split('"')
                .next()
                .ok_or_else(|| SnapshotError::Malformed("unterminated engine name".into()))?
                .to_string();
            let str_field = |key: &str| -> Result<String, SnapshotError> {
                let needle = format!("\"{key}\":\"");
                let at = block
                    .find(&needle)
                    .ok_or_else(|| SnapshotError::Malformed(format!("missing field {key:?}")))?
                    + needle.len();
                block[at..]
                    .split('"')
                    .next()
                    .map(str::to_string)
                    .ok_or_else(|| SnapshotError::Malformed(format!("unterminated {key:?}")))
            };
            let mut points = Vec::new();
            for pb in block.split("{\"concurrency\":").skip(1) {
                let pb = format!("{{\"concurrency\":{pb}");
                points.push(CurvePoint {
                    concurrency: get(&pb, "concurrency")? as usize,
                    offered_qps: get(&pb, "offered_qps")?,
                    achieved_qps: get(&pb, "achieved_qps")?,
                    p50_us: get(&pb, "p50_us")? as u64,
                    p99_us: get(&pb, "p99_us")? as u64,
                    max_us: get(&pb, "max_us")? as u64,
                    completed: get(&pb, "completed")? as u64,
                    failed: get(&pb, "failed")? as u64,
                    dispatch_p99_us: get(&pb, "dispatch_p99_us")? as u64,
                    admission_ms: get(&pb, "admission_ms")?,
                    scan_ms: get(&pb, "scan_ms")?,
                    merge_ms: get(&pb, "merge_ms")?,
                });
            }
            curves.push(LoadCurve {
                engine,
                mix: str_field("mix")?,
                mode: str_field("mode")?,
                corpus_len: get(block, "corpus_len")? as usize,
                build_s: get(block, "build_s")?,
                capacity_qps: get(block, "capacity_qps")?,
                points,
            });
        }
        Ok(ScaleReport {
            seed: get(text, "seed")? as u64,
            corpus_kind: {
                let needle = "\"corpus_kind\":\"";
                let at = text
                    .find(needle)
                    .ok_or_else(|| SnapshotError::Malformed("missing corpus_kind".into()))?
                    + needle.len();
                text[at..].split('"').next().unwrap_or_default().to_string()
            },
            corpus_len: get(text, "corpus_len")? as usize,
            trie_corpus_len: get(text, "trie_corpus_len")? as usize,
            queries_per_point: get(text, "queries_per_point")? as usize,
            workers: get(text, "workers")? as usize,
            quick: text.contains("\"quick\":true"),
            curves,
        })
    }

    /// Does this run's configuration make its throughput comparable to
    /// `baseline`'s? (Same seed, corpus, sizes — a `--quick` run checked
    /// against the committed full baseline deliberately does not match.)
    pub fn fingerprint_matches(&self, baseline: &ScaleReport) -> bool {
        self.seed == baseline.seed
            && self.corpus_kind == baseline.corpus_kind
            && self.corpus_len == baseline.corpus_len
            && self.trie_corpus_len == baseline.trie_corpus_len
            && self.queries_per_point == baseline.queries_per_point
            && self.workers == baseline.workers
            && self.quick == baseline.quick
    }

    /// The regression gate. Always: every baseline curve (engine × mix ×
    /// mode) must exist in this run with at least as many points — lost
    /// coverage fails even in `--quick`. When the run fingerprint matches
    /// the baseline's, additionally gate each curve's peak throughput at
    /// [`SCALE_QPS_FLOOR`] × baseline.
    pub fn check_against(&self, baseline: &ScaleReport) -> Result<String, String> {
        let comparable = self.fingerprint_matches(baseline);
        for b in &baseline.curves {
            let Some(c) = self.curves.iter().find(|c| c.key() == b.key()) else {
                return Err(format!(
                    "coverage regression: curve {} missing from this run",
                    b.key()
                ));
            };
            if c.points.len() < b.points.len() && comparable {
                return Err(format!(
                    "coverage regression: curve {} has {} points, baseline {}",
                    b.key(),
                    c.points.len(),
                    b.points.len()
                ));
            }
            if comparable {
                let floor = b.peak_qps() * SCALE_QPS_FLOOR;
                if c.peak_qps() < floor {
                    return Err(format!(
                        "throughput regression: curve {} peaks at {:.0} qps < {:.0} \
                         ({}% of baseline {:.0})",
                        b.key(),
                        c.peak_qps(),
                        floor,
                        (SCALE_QPS_FLOOR * 100.0) as u64,
                        b.peak_qps()
                    ));
                }
            }
        }
        Ok(format!(
            "{} curves cover baseline's {}{}",
            self.curves.len(),
            baseline.curves.len(),
            if comparable {
                "; peak-qps floors hold"
            } else {
                "; fingerprints differ, coverage-only check"
            }
        ))
    }
}

/// Run the full sweep: build every engine once, calibrate its closed-loop
/// capacity, then measure every mix × mode × level. `scratch` hosts the
/// segmented store's files.
pub fn run_scale(cfg: &ScaleConfig, scratch: &std::path::Path) -> ScaleReport {
    let main_spec = CorpusSpec::new(cfg.corpus_kind, cfg.corpus_len, cfg.seed);
    let trie_spec = CorpusSpec::new(cfg.corpus_kind, cfg.trie_corpus_len, cfg.seed);
    let main_corpus = Corpus::materialize(main_spec);
    let trie_corpus = Corpus::materialize(trie_spec);
    let mut curves = Vec::new();

    for &engine_kind in &cfg.engines {
        let corpus = if engine_kind == EngineKind::Trie { &trie_corpus } else { &main_corpus };
        let dir = scratch.join(format!("seg-{}", engine_kind.name()));
        let build_start = Instant::now();
        let index = Arc::new(build_engine(engine_kind, corpus, &dir));
        let build_s = build_start.elapsed().as_secs_f64();

        // Calibrate: a closed-loop burst at full worker concurrency puts an
        // upper bound on sustainable throughput; open-loop offered rates
        // are fractions of it. (Machine-dependent by nature — the committed
        // baseline's fingerprint covers the deterministic inputs only.)
        let calib_queries = mix_queries(corpus, MixKind::Uniform, cfg.queries_per_point.min(256));
        let calib_plan = LoadPlan::closed(calib_queries, cfg.workers * 2);
        let calib_engine = QueryEngine::new(Arc::clone(&index), engine_config(cfg, &calib_plan));
        let capacity_qps = run_plan(&calib_engine, &calib_plan, None).achieved_qps;
        drop(calib_engine);
        if cfg.verbose {
            println!(
                "engine {:>12}: built {} symbols in {:.2}s, capacity ≈ {:.0} qps",
                engine_kind.name(),
                corpus.spec.len,
                build_s,
                capacity_qps
            );
        }

        let mut mixes = cfg.mixes.clone();
        if engine_kind == EngineKind::Spine {
            mixes.extend(cfg.spine_extra_mixes.iter().copied());
        }
        for mix in mixes {
            let queries = mix_queries(corpus, mix, cfg.queries_per_point);
            for mode in [ArrivalMode::Closed, ArrivalMode::Open] {
                let mut points = Vec::new();
                match mode {
                    ArrivalMode::Closed => {
                        for &c in &cfg.closed_levels {
                            let plan = LoadPlan::closed(queries.clone(), c);
                            points.push(measure_point(cfg, &index, &plan));
                        }
                    }
                    ArrivalMode::Open => {
                        for &f in &cfg.open_fractions {
                            let offered = (capacity_qps * f).max(50.0);
                            let plan = LoadPlan::open(
                                queries.clone(),
                                offered,
                                ArrivalProcess::Poisson,
                                rng::derive(cfg.seed, "open-plan", points.len() as u64),
                            );
                            points.push(measure_point(cfg, &index, &plan));
                        }
                    }
                }
                if cfg.verbose {
                    let peak = points.iter().map(|p| p.achieved_qps).fold(0.0, f64::max);
                    println!(
                        "  {:>9} × {:>6}: {} points, peak {:.0} qps, worst p99 {} µs",
                        mix.name(),
                        mode.name(),
                        points.len(),
                        peak,
                        points.iter().map(|p| p.p99_us).max().unwrap_or(0)
                    );
                }
                curves.push(LoadCurve {
                    engine: engine_kind.name().to_string(),
                    mix: mix.name().to_string(),
                    mode: mode.name().to_string(),
                    corpus_len: corpus.spec.len,
                    build_s,
                    capacity_qps,
                    points,
                });
            }
        }
    }

    ScaleReport {
        seed: cfg.seed,
        corpus_kind: cfg.corpus_kind.name().to_string(),
        corpus_len: cfg.corpus_len,
        trie_corpus_len: cfg.trie_corpus_len,
        queries_per_point: cfg.queries_per_point,
        workers: cfg.workers,
        quick: cfg.quick,
        curves,
    }
}

fn engine_config(cfg: &ScaleConfig, plan: &LoadPlan) -> EngineConfig {
    EngineConfig {
        workers: cfg.workers,
        batch_max: 64,
        // The open-loop driver must never shed or block on admission — the
        // queue absorbs everything so queue wait lands in latency, not in a
        // shed count.
        queue_capacity: plan.queries.len().max(1),
        shed: ShedPolicy::Block,
    }
}

/// Run one plan with a fresh telemetry-backed engine over `index`, and fold
/// the run + its stage attribution into a [`CurvePoint`].
fn measure_point(cfg: &ScaleConfig, index: &Arc<BoxedServe>, plan: &LoadPlan) -> CurvePoint {
    let registry = Arc::new(MetricsRegistry::new());
    let engine = QueryEngine::with_telemetry(Arc::clone(index), engine_config(cfg, plan), registry);
    let out = run_plan(&engine, plan, None);
    let snap = engine.registry().expect("telemetry enabled").snapshot();
    let stage_ms = |s: Stage| snap.stage(s).map(|h| h.sum as f64 / 1e6).unwrap_or(0.0);
    CurvePoint {
        concurrency: plan.concurrency,
        offered_qps: plan.offered_qps,
        achieved_qps: out.achieved_qps,
        p50_us: out.p50_us(),
        p99_us: out.p99_us(),
        max_us: out.max_us(),
        completed: out.completed,
        failed: out.failed + out.timed_out,
        dispatch_p99_us: out.dispatch_p99_us(),
        admission_ms: stage_ms(Stage::AdmissionWait),
        scan_ms: stage_ms(Stage::IndexScan),
        merge_ms: stage_ms(Stage::ResultMerge),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus(kind: CorpusKind) -> Corpus {
        Corpus::materialize(CorpusSpec::new(kind, 20_000, 7))
    }

    #[test]
    fn corpus_stream_is_deterministic_and_sized() {
        for kind in CorpusKind::ALL {
            let spec = CorpusSpec::new(kind, 50_000, 11);
            let a: Vec<Code> = CorpusStream::new(spec).flatten().collect();
            let b: Vec<Code> = CorpusStream::new(spec).flatten().collect();
            assert_eq!(a, b, "{}", kind.name());
            assert_eq!(a.len(), 50_000, "{}", kind.name());
            let size = kind.alphabet().size();
            assert!(a.iter().all(|&c| (c as usize) < size), "{}", kind.name());
        }
    }

    #[test]
    fn materialized_corpus_matches_restreaming() {
        // The segmented build path relies on a second stream yielding the
        // same bytes the whole-text engines indexed.
        let spec = CorpusSpec::new(CorpusKind::Dna, 40_000, 3);
        let c = Corpus::materialize(spec);
        let restream: Vec<Code> = CorpusStream::new(spec).flatten().collect();
        assert_eq!(c.text, restream);
        assert!(!c.windows.is_empty());
        // Windows are within-chunk, so each must occur in the text.
        for w in c.windows.iter().take(16) {
            assert!(c.text.windows(w.len()).any(|x| x == w.as_slice()));
        }
    }

    #[test]
    fn log_text_looks_like_logs() {
        let c = tiny_corpus(CorpusKind::LogText);
        let bytes = c.alphabet.decode_all(&c.text);
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("/api/v"), "sample: {}", &text[..200.min(text.len())]);
        assert!(text.contains("INFO") || text.contains("WARN") || text.contains("ERROR"));
    }

    #[test]
    fn mixes_are_deterministic_and_in_alphabet() {
        let c = tiny_corpus(CorpusKind::Dna);
        for mix in MixKind::ALL {
            let a = mix_queries(&c, mix, 64);
            let b = mix_queries(&c, mix, 64);
            assert_eq!(a, b, "{}", mix.name());
            assert_eq!(a.len(), 64);
            let size = c.alphabet.size();
            assert!(a.iter().flatten().all(|&x| (x as usize) < size), "{}", mix.name());
            assert!(a.iter().all(|q| !q.is_empty()), "{}", mix.name());
        }
    }

    #[test]
    fn zipf_mix_is_skewed() {
        let c = tiny_corpus(CorpusKind::Dna);
        let qs = mix_queries(&c, MixKind::Zipf, 512);
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            *counts.entry(q.clone()).or_insert(0usize) += 1;
        }
        assert!(counts.len() <= ZIPF_HOT);
        let hottest = counts.values().max().copied().unwrap_or(0);
        // Rank 1 of a 16-entry harmonic distribution carries ~30 % of mass.
        assert!(hottest * 5 >= qs.len(), "hottest {} of {}", hottest, qs.len());
    }

    #[test]
    fn near_miss_patterns_mostly_miss_but_share_prefixes() {
        let c = tiny_corpus(CorpusKind::Dna);
        let spine = Spine::build(c.alphabet.clone(), &c.text).unwrap();
        use strindex::StringIndex;
        let qs = mix_queries(&c, MixKind::NearMiss, 64);
        let mut misses = 0;
        for q in &qs {
            // Prefix (all but the flipped last symbol) is a real substring.
            assert!(spine.contains(&q[..q.len() - 1]), "prefix must be present");
            if !spine.contains(q) {
                misses += 1;
            }
        }
        assert!(misses * 2 > qs.len(), "only {misses}/{} missed", qs.len());
    }

    #[test]
    fn open_plans_derive_deterministic_schedules() {
        let qs = vec![vec![0u8, 1, 2]; 100];
        let a = LoadPlan::open(qs.clone(), 10_000.0, ArrivalProcess::Poisson, 5);
        let b = LoadPlan::open(qs.clone(), 10_000.0, ArrivalProcess::Poisson, 5);
        assert_eq!(a, b);
        assert_eq!(a.summary_json(), b.summary_json());
        let c = LoadPlan::open(qs.clone(), 10_000.0, ArrivalProcess::Poisson, 6);
        assert_ne!(a.arrivals_ns, c.arrivals_ns);
        // Arrivals are monotone and roughly at the offered rate.
        assert!(a.arrivals_ns.windows(2).all(|w| w[0] <= w[1]));
        let constant = LoadPlan::open(qs, 10_000.0, ArrivalProcess::Constant, 0);
        assert_eq!(constant.arrivals_ns[1] - constant.arrivals_ns[0], 100_000);
    }

    #[test]
    fn closed_and_open_drivers_answer_everything() {
        let c = tiny_corpus(CorpusKind::Dna);
        let index = Arc::new(BoxedServe::new(Spine::build(c.alphabet.clone(), &c.text).unwrap()));
        let queries = mix_queries(&c, MixKind::Uniform, 50);

        let plan = LoadPlan::closed(queries.clone(), 4);
        let engine = QueryEngine::new(
            Arc::clone(&index),
            EngineConfig { workers: 2, queue_capacity: 64, ..Default::default() },
        );
        let out = run_plan(&engine, &plan, None);
        assert_eq!(out.completed, 50);
        assert_eq!(out.latencies_us.len(), 50);

        let ledger = Arc::new(LoadLedger::new());
        let plan = LoadPlan::open(queries, 50_000.0, ArrivalProcess::Poisson, 1);
        let engine = QueryEngine::new(
            Arc::clone(&index),
            EngineConfig { workers: 2, queue_capacity: 64, ..Default::default() },
        );
        let out = run_plan(&engine, &plan, Some(Arc::clone(&ledger)));
        assert_eq!(out.completed, 50);
        assert_eq!(out.dispatch_lag_us.len(), 50);
        assert_eq!(ledger.offered(), 50);
        assert_eq!(ledger.dispatched(), 50);
        assert_eq!(ledger.completed(), 50);
        assert_eq!(ledger.engine_backlog(), 0);
    }

    #[test]
    fn serve_adapter_agrees_with_spine() {
        let c = tiny_corpus(CorpusKind::Dna);
        let spine = Spine::build(c.alphabet.clone(), &c.text).unwrap();
        let sa = ServeAdapter::new(SaIndex::build(c.alphabet.clone(), &c.text));
        let queries = mix_queries(&c, MixKind::Uniform, 32);
        let patterns: Vec<&[Code]> = queries.iter().map(|q| q.as_slice()).collect();
        let a = spine.answer_patterns(&patterns);
        let b = sa.answer_patterns(&patterns);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_report_round_trips_and_checks() {
        let point = CurvePoint {
            concurrency: 4,
            offered_qps: 0.0,
            achieved_qps: 1234.5,
            p50_us: 80,
            p99_us: 900,
            max_us: 1500,
            completed: 384,
            failed: 0,
            dispatch_p99_us: 0,
            admission_ms: 1.25,
            scan_ms: 10.5,
            merge_ms: 0.75,
        };
        let report = ScaleReport {
            seed: 0x5915E,
            corpus_kind: "dna".into(),
            corpus_len: 1 << 20,
            trie_corpus_len: 4_000,
            queries_per_point: 384,
            workers: 4,
            quick: false,
            curves: vec![LoadCurve {
                engine: "spine".into(),
                mix: "uniform".into(),
                mode: "closed".into(),
                corpus_len: 1 << 20,
                build_s: 1.5,
                capacity_qps: 2000.0,
                points: vec![point],
            }],
        };
        let text = report.to_json();
        let parsed = ScaleReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
        assert!(parsed.check_against(&report).is_ok());

        // Unknown schema version → typed refusal.
        let future = text.replace("\"schema_version\":1", "\"schema_version\":9");
        assert_eq!(ScaleReport::from_json(&future).unwrap_err(), SnapshotError::UnknownVersion(9));
        assert_eq!(
            ScaleReport::from_json("{\"curves\":[]}").unwrap_err(),
            SnapshotError::MissingVersion
        );

        // Missing curve → coverage failure even with a foreign fingerprint.
        let mut smaller = report.clone();
        smaller.quick = true;
        smaller.curves.clear();
        let err = smaller.check_against(&report).unwrap_err();
        assert!(err.contains("coverage regression"), "{err}");

        // Matching fingerprint gates peak throughput.
        let mut slow = report.clone();
        slow.curves[0].points[0].achieved_qps = 100.0;
        let err = slow.check_against(&report).unwrap_err();
        assert!(err.contains("throughput regression"), "{err}");

        // Differing fingerprint (quick run): same curves pass on coverage.
        let mut quick = slow;
        quick.quick = true;
        let msg = quick.check_against(&report).unwrap();
        assert!(msg.contains("coverage-only"), "{msg}");
    }
}
