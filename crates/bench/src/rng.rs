//! One seed-derivation scheme for the whole harness.
//!
//! Every randomized experiment in this crate draws from a single *run
//! seed*, printed at the top of the run, so any result is reproducible by
//! re-running with that one number. Components never share a raw seed:
//! each derives its own independent stream as `stream(run_seed, tag,
//! index)` — the tag names the component (`"corpus"`, `"mix.zipf"`,
//! `"flaky-device"`), the index splits a component into per-worker /
//! per-shard streams.
//!
//! Derivation: the tag is folded into the run seed with FNV-1a, the index
//! is golden-ratio-mixed in, and the result is finalized with the
//! SplitMix64 mixer before seeding the workspace `rand` shim's generator
//! (which itself seeds xoshiro256++ through SplitMix64 — two layers of the
//! same avalanche, by design). Nearby tags, adjacent indices, and related
//! run seeds therefore yield statistically unrelated streams, while equal
//! inputs yield byte-identical draw sequences on every platform.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Default run seed when the caller passes none (`exp scale` without
/// `--seed`). An arbitrary constant, fixed so committed baselines are
/// regenerated bit-for-bit.
pub const DEFAULT_RUN_SEED: u64 = 0x5915E; // "SPINE", squinting

/// Derive the seed for the stream named (`tag`, `index`) under `run_seed`.
///
/// Pure and stable: this value is part of the committed-baseline contract,
/// so changing the derivation is a re-baseline event.
pub fn derive(run_seed: u64, tag: &str, index: u64) -> u64 {
    // FNV-1a over the tag bytes, offset by the run seed.
    let mut h = run_seed ^ 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Golden-ratio spacing for the index, then a full SplitMix64 finalize
    // so single-bit input differences avalanche across the whole word.
    splitmix(h ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A seeded generator for the stream named (`tag`, `index`) under
/// `run_seed`. The workhorse: `stream(seed, "mix.uniform", worker)` gives
/// every worker its own reproducible sequence.
pub fn stream(run_seed: u64, tag: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive(run_seed, tag, index))
}

/// SplitMix64's finalization mixer (Steele et al.), the same avalanche the
/// `rand` shim applies when expanding a `seed_from_u64` into generator
/// state.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic_and_tag_sensitive() {
        assert_eq!(derive(7, "corpus", 0), derive(7, "corpus", 0));
        assert_ne!(derive(7, "corpus", 0), derive(7, "corpus", 1));
        assert_ne!(derive(7, "corpus", 0), derive(7, "corpu", 0));
        assert_ne!(derive(7, "corpus", 0), derive(8, "corpus", 0));
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let draw = |tag: &str, idx: u64| -> Vec<u64> {
            let mut r = stream(42, tag, idx);
            (0..8).map(|_| r.gen_range(0..1_000_000u64)).collect()
        };
        assert_eq!(draw("mix", 0), draw("mix", 0));
        assert_ne!(draw("mix", 0), draw("mix", 1));
        assert_ne!(draw("mix", 0), draw("arrivals", 0));
    }

    #[test]
    fn adjacent_indices_avalanche() {
        // Adjacent indices must not yield adjacent seeds (the failure mode
        // of naive `seed + worker` schemes).
        let a = derive(0, "w", 0);
        let b = derive(0, "w", 1);
        assert!((a ^ b).count_ones() > 16, "{a:x} vs {b:x}");
    }
}
