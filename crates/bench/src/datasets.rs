//! Dataset construction for the experiments.
//!
//! Every experiment works from a [`Dataset`]: a named synthetic stand-in
//! for one of the paper's genomes/proteomes at a caller-chosen scale, plus
//! (for the matching experiments) a mutated relative playing the query
//! genome of the pair.

use genseq::{mutate, preset, MutationProfile, Preset};
use strindex::{Alphabet, Code};

use crate::rng;

/// A generated dataset: the encoded sequence plus its provenance.
pub struct Dataset {
    /// Preset name (e.g. `eco-sim`).
    pub name: &'static str,
    /// What the preset stands in for.
    pub stands_in_for: &'static str,
    /// The alphabet.
    pub alphabet: Alphabet,
    /// The encoded sequence.
    pub seq: Vec<Code>,
}

impl Dataset {
    /// Generate the named preset at `scale`.
    pub fn generate(name: &str, scale: f64) -> Dataset {
        let p: &Preset = preset(name).unwrap_or_else(|| panic!("unknown preset {name}"));
        Dataset {
            name: p.name,
            stands_in_for: p.stands_in_for,
            alphabet: p.alphabet(),
            seq: p.generate(scale),
        }
    }

    /// Sequence length in megabases/residues (for table headers).
    pub fn mega(&self) -> f64 {
        self.seq.len() as f64 / 1e6
    }
}

/// The paper's four DNA datasets, smallest first (Figure 6 order).
pub fn dna_presets() -> [&'static str; 4] {
    ["eco-sim", "cel-sim", "hc21-sim", "hc19-sim"]
}

/// The paper's three proteome datasets (§5.2).
pub fn protein_presets() -> [&'static str; 3] {
    ["ecor-sim", "yst-sim", "dros-sim"]
}

/// Derive the query side of a matching pair: a mutated relative of `data`
/// (≈1 % divergence, a few rearrangements), deterministic per dataset name
/// via the harness-wide seed-derivation scheme ([`crate::rng`]).
pub fn query_for(data: &Dataset) -> Vec<Code> {
    let mut r = rng::stream(rng::DEFAULT_RUN_SEED, "dataset.query-mutant", fold_name(data.name));
    mutate(&data.seq, data.alphabet.size(), &MutationProfile::default(), &mut r)
}

/// Stable fold of a dataset name into a stream index.
fn fold_name(name: &str) -> u64 {
    name.bytes().fold(0, |h: u64, b| h.wrapping_mul(31).wrapping_add(b as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_all_presets_small() {
        for name in dna_presets().iter().chain(protein_presets().iter()) {
            let d = Dataset::generate(name, 0.0005);
            assert!(!d.seq.is_empty(), "{name}");
            assert!(d.seq.iter().all(|&c| (c as usize) < d.alphabet.size()));
        }
    }

    #[test]
    fn query_shares_material_with_data() {
        let d = Dataset::generate("eco-sim", 0.001);
        let q = query_for(&d);
        // The mutant keeps most 20-mers of the base.
        let window = 20;
        let mut shared = 0usize;
        let mut total = 0usize;
        for w in q.windows(window).step_by(500) {
            total += 1;
            if d.seq.windows(window).any(|x| x == w) {
                shared += 1;
            }
        }
        assert!(shared * 2 > total, "shared {shared}/{total}");
    }

    #[test]
    fn query_is_deterministic() {
        let d = Dataset::generate("cel-sim", 0.0005);
        assert_eq!(query_for(&d), query_for(&d));
    }
}
