//! Benchmark snapshots: the `exp bench-snapshot` deliverable.
//!
//! A [`BenchSnapshot`] is a small flat JSON record of the serving benchmark's
//! headline numbers — throughput, tail latency, and buffer-pool traffic per
//! query — written to `BENCH_serve.json`. CI re-runs the benchmark and
//! compares against the committed baseline with [`BenchSnapshot::check_against`],
//! failing on a >20 % regression in throughput or pages-per-query.
//!
//! The format is deliberately flat (one object, numeric fields) so the
//! parser here can stay a keyed number scan instead of a JSON library.
//!
//! Every `BENCH_*.json` payload carries a `schema_version` field; a parser
//! finding a missing or unknown version refuses with a typed
//! [`SnapshotError`] telling the operator to re-baseline, instead of
//! panicking or silently misreading renamed fields as regressions.

use std::fmt;

/// Format version stamped into every `BENCH_*.json` payload this harness
/// writes (`BENCH_serve.json`, `BENCH_build.json`, `BENCH_scale.json`).
/// Bump it whenever a field changes meaning or name; readers reject any
/// other version so a stale baseline fails loudly.
pub const SCHEMA_VERSION: u64 = 1;

/// Why a committed `BENCH_*.json` baseline could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// No `schema_version` field — a pre-versioning or hand-edited file.
    MissingVersion,
    /// A `schema_version` this build does not understand.
    UnknownVersion(u64),
    /// Versioned correctly but structurally unreadable (missing or
    /// non-numeric field).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::MissingVersion => write!(
                f,
                "snapshot has no schema_version field (expected {SCHEMA_VERSION}); \
                 re-baseline required: regenerate it with `exp bench-snapshot` / `exp scale`"
            ),
            SnapshotError::UnknownVersion(v) => write!(
                f,
                "snapshot schema_version {v} is not the supported {SCHEMA_VERSION}; \
                 re-baseline required: regenerate it with the current binary"
            ),
            SnapshotError::Malformed(what) => write!(f, "snapshot is malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Check the `schema_version` stamp of a snapshot payload: exactly
/// [`SCHEMA_VERSION`] or a typed refusal.
pub fn check_schema_version(text: &str) -> Result<(), SnapshotError> {
    match json_number(text, "schema_version") {
        None => Err(SnapshotError::MissingVersion),
        Some(v) if v as u64 == SCHEMA_VERSION => Ok(()),
        Some(v) => Err(SnapshotError::UnknownVersion(v as u64)),
    }
}

/// Headline numbers of one serving-benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Worker threads in the engine.
    pub workers: u64,
    /// Queries answered in the timed run.
    pub queries: u64,
    /// Wall time of the timed run, seconds.
    pub wall_s: f64,
    /// Throughput, queries per second.
    pub qps: f64,
    /// Median query latency, microseconds, of the *disk-engine* serving
    /// pass (from its `engine.query_latency` histogram) — the hot-page
    /// tier's before/after story lives here. Baselines recorded before the
    /// hot tier measured the in-memory engine instead; re-baseline when
    /// comparing across that change.
    pub p50_us: u64,
    /// 99th-percentile disk-engine query latency, microseconds.
    pub p99_us: u64,
    /// Mean device pages fetched (pool misses) per disk query
    /// (from `disk.pages_per_query`).
    pub pages_per_query: f64,
}

/// Throughput may drop to this fraction of the baseline before CI fails.
pub const QPS_FLOOR: f64 = 0.8;
/// Pages-per-query may grow to this multiple of the baseline before CI fails.
pub const PAGES_CEIL: f64 = 1.2;

impl BenchSnapshot {
    /// Serialize as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\
             \"workers\":{},\"queries\":{},\"wall_s\":{:.6},\"qps\":{:.3},\
             \"p50_us\":{},\"p99_us\":{},\"pages_per_query\":{:.3}}}",
            self.workers,
            self.queries,
            self.wall_s,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.pages_per_query
        )
    }

    /// Parse a snapshot back out of [`Self::to_json`]'s output (or any JSON
    /// text containing the same keys with numeric values). Rejects missing
    /// or unknown `schema_version` stamps before reading any field.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        check_schema_version(text)?;
        let get = |key: &str| {
            json_number(text, key)
                .ok_or_else(|| SnapshotError::Malformed(format!("missing numeric field {key:?}")))
        };
        Ok(BenchSnapshot {
            workers: get("workers")? as u64,
            queries: get("queries")? as u64,
            wall_s: get("wall_s")?,
            qps: get("qps")?,
            p50_us: get("p50_us")? as u64,
            p99_us: get("p99_us")? as u64,
            pages_per_query: get("pages_per_query")?,
        })
    }

    /// The CI regression gate: `Ok` with a summary line when this run is
    /// within tolerance of `baseline`, `Err` describing the first regression
    /// otherwise. Throughput must stay above [`QPS_FLOOR`] × baseline;
    /// pages-per-query must stay below [`PAGES_CEIL`] × baseline (an
    /// absolute +0.5-page slack absorbs tiny baselines). Latency is reported
    /// but not gated: single-run tail latency is too noisy to fail CI on.
    pub fn check_against(&self, baseline: &Self) -> Result<String, String> {
        let qps_floor = baseline.qps * QPS_FLOOR;
        if self.qps < qps_floor {
            return Err(format!(
                "throughput regression: {:.0} qps < {:.0} ({}% of baseline {:.0})",
                self.qps,
                qps_floor,
                (QPS_FLOOR * 100.0) as u64,
                baseline.qps
            ));
        }
        let pages_ceil = baseline.pages_per_query * PAGES_CEIL + 0.5;
        if self.pages_per_query > pages_ceil {
            return Err(format!(
                "pages-per-query regression: {:.2} > {:.2} ({}% of baseline {:.2} + 0.5)",
                self.pages_per_query,
                pages_ceil,
                (PAGES_CEIL * 100.0) as u64,
                baseline.pages_per_query
            ));
        }
        Ok(format!(
            "qps {:.0} vs baseline {:.0} (floor {:.0}); pages/query {:.2} vs {:.2} (ceil {:.2}); \
             p99 {} µs vs {} µs (informational)",
            self.qps,
            baseline.qps,
            qps_floor,
            self.pages_per_query,
            baseline.pages_per_query,
            pages_ceil,
            self.p99_us,
            baseline.p99_us
        ))
    }
}

/// Build-throughput may drop to this fraction of the baseline before CI
/// fails (same 20 % tolerance as [`QPS_FLOOR`]).
pub const NPS_FLOOR: f64 = 0.8;
/// Page-write costs may grow to this multiple of the baseline before CI
/// fails.
pub const BUILD_COST_CEIL: f64 = 1.2;
/// Sealed on-disk bytes/node may grow only to this multiple of the
/// baseline: the layout-v2 footprint is deterministic for a given text
/// (no timing noise), so the space gate is much tighter than the
/// throughput gates.
pub const BUILD_SPACE_CEIL: f64 = 1.05;

/// Headline numbers of one construction-benchmark run, written to
/// `BENCH_build.json` by `exp bench-snapshot` — the build-side counterpart
/// of [`BenchSnapshot`], produced by the `BuildStats` observer.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSnapshot {
    /// Characters inserted (backbone nodes minus the root).
    pub nodes: u64,
    /// Median-of-3 plain (observer-disabled) build wall time, seconds.
    pub build_s: f64,
    /// Build throughput from the plain builds, nodes per second.
    pub nodes_per_sec: f64,
    /// Median observed-build wall time vs `build_s`, percent. Reported but
    /// not gated: single-digit scheduler noise would flap the gate.
    pub observer_overhead_pct: f64,
    /// On-disk bytes per node of the sealed layout-v2 index (file pages ×
    /// page size over backbone nodes) — the figure the varint/packed page
    /// format exists to shrink. Earlier baselines recorded the in-memory
    /// heap figure here; re-baseline when comparing across that change.
    pub bytes_per_node: f64,
    /// Device page writes across the full disk pipeline: the mutable
    /// scratch build plus the seal into layout-v2 pages.
    pub page_writes: u64,
}

impl BuildSnapshot {
    /// Serialize as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\
             \"nodes\":{},\"build_s\":{:.6},\"nodes_per_sec\":{:.1},\
             \"observer_overhead_pct\":{:.2},\"bytes_per_node\":{:.3},\"page_writes\":{}}}",
            self.nodes,
            self.build_s,
            self.nodes_per_sec,
            self.observer_overhead_pct,
            self.bytes_per_node,
            self.page_writes
        )
    }

    /// Parse a snapshot back out of [`Self::to_json`]'s output. Rejects
    /// missing or unknown `schema_version` stamps before reading any field.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        check_schema_version(text)?;
        let get = |key: &str| {
            json_number(text, key)
                .ok_or_else(|| SnapshotError::Malformed(format!("missing numeric field {key:?}")))
        };
        Ok(BuildSnapshot {
            nodes: get("nodes")? as u64,
            build_s: get("build_s")?,
            nodes_per_sec: get("nodes_per_sec")?,
            observer_overhead_pct: get("observer_overhead_pct")?,
            bytes_per_node: get("bytes_per_node")?,
            page_writes: get("page_writes")? as u64,
        })
    }

    /// The CI regression gate, mirroring [`BenchSnapshot::check_against`]:
    /// build throughput must stay above [`NPS_FLOOR`] × baseline; bytes per
    /// node and disk-build page writes must stay below [`BUILD_COST_CEIL`] ×
    /// baseline (with small absolute slacks so near-zero baselines don't
    /// flap). Observer overhead is reported but not gated.
    pub fn check_against(&self, baseline: &Self) -> Result<String, String> {
        let nps_floor = baseline.nodes_per_sec * NPS_FLOOR;
        if self.nodes_per_sec < nps_floor {
            return Err(format!(
                "build-throughput regression: {:.0} nodes/s < {:.0} ({}% of baseline {:.0})",
                self.nodes_per_sec,
                nps_floor,
                (NPS_FLOOR * 100.0) as u64,
                baseline.nodes_per_sec
            ));
        }
        let bytes_ceil = baseline.bytes_per_node * BUILD_SPACE_CEIL + 1.0;
        if self.bytes_per_node > bytes_ceil {
            return Err(format!(
                "space regression: {:.2} bytes/node > {:.2} ({}% of baseline {:.2} + 1)",
                self.bytes_per_node,
                bytes_ceil,
                (BUILD_SPACE_CEIL * 100.0) as u64,
                baseline.bytes_per_node
            ));
        }
        let writes_ceil = baseline.page_writes as f64 * BUILD_COST_CEIL + 16.0;
        if self.page_writes as f64 > writes_ceil {
            return Err(format!(
                "page-write regression: {} writes > {:.0} ({}% of baseline {} + 16)",
                self.page_writes,
                writes_ceil,
                (BUILD_COST_CEIL * 100.0) as u64,
                baseline.page_writes
            ));
        }
        Ok(format!(
            "build {:.0} nodes/s vs baseline {:.0} (floor {:.0}); {:.2} bytes/node vs {:.2} \
             (ceil {:.2}); {} page writes vs {} (ceil {:.0}); observer overhead {:+.1}% \
             (informational)",
            self.nodes_per_sec,
            baseline.nodes_per_sec,
            nps_floor,
            self.bytes_per_node,
            baseline.bytes_per_node,
            bytes_ceil,
            self.page_writes,
            baseline.page_writes,
            writes_ceil,
            self.observer_overhead_pct
        ))
    }
}

/// Extract the numeric value following `"key":` in a flat JSON object.
/// Returns `None` when the key is absent or the value is not a number.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            workers: 4,
            queries: 1280,
            wall_s: 0.25,
            qps: 5120.0,
            p50_us: 180,
            p99_us: 900,
            pages_per_query: 6.4,
        }
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let parsed = BenchSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed.workers, s.workers);
        assert_eq!(parsed.queries, s.queries);
        assert_eq!(parsed.p50_us, s.p50_us);
        assert_eq!(parsed.p99_us, s.p99_us);
        assert!((parsed.qps - s.qps).abs() < 1e-3);
        assert!((parsed.pages_per_query - s.pages_per_query).abs() < 1e-3);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let err = BenchSnapshot::from_json("{\"schema_version\":1,\"workers\":4}").unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("missing numeric field"), "{err}");
    }

    #[test]
    fn from_json_rejects_missing_or_unknown_schema_version() {
        // Version-less payload (pre-versioning baseline): typed refusal with
        // a re-baseline instruction, not a field-level parse error.
        let unversioned = "{\"workers\":4,\"queries\":640}";
        let err = BenchSnapshot::from_json(unversioned).unwrap_err();
        assert_eq!(err, SnapshotError::MissingVersion);
        assert!(err.to_string().contains("re-baseline required"), "{err}");

        let future = "{\"schema_version\":99,\"workers\":4}";
        let err = BenchSnapshot::from_json(future).unwrap_err();
        assert_eq!(err, SnapshotError::UnknownVersion(99));
        assert!(err.to_string().contains("re-baseline required"), "{err}");

        // Both snapshot kinds share the stamp check.
        assert_eq!(
            BuildSnapshot::from_json(unversioned).unwrap_err(),
            SnapshotError::MissingVersion
        );
    }

    #[test]
    fn emitted_json_carries_the_schema_version() {
        assert!(sample().to_json().contains("\"schema_version\":1"));
        assert!(build_sample().to_json().contains("\"schema_version\":1"));
        assert!(check_schema_version(&sample().to_json()).is_ok());
    }

    #[test]
    fn check_passes_within_tolerance() {
        let base = sample();
        let mut run = sample();
        run.qps = base.qps * 0.85; // above the 0.8 floor
        run.pages_per_query = base.pages_per_query * 1.1; // below the 1.2 ceiling
        run.p99_us = base.p99_us * 10; // latency is informational only
        assert!(run.check_against(&base).is_ok());
    }

    #[test]
    fn check_fails_on_throughput_regression() {
        let base = sample();
        let mut run = sample();
        run.qps = base.qps * 0.5;
        let err = run.check_against(&base).unwrap_err();
        assert!(err.contains("throughput regression"), "{err}");
    }

    #[test]
    fn check_fails_on_pages_regression() {
        let base = sample();
        let mut run = sample();
        run.pages_per_query = base.pages_per_query * 2.0;
        let err = run.check_against(&base).unwrap_err();
        assert!(err.contains("pages-per-query regression"), "{err}");
    }

    #[test]
    fn tiny_baseline_pages_get_absolute_slack() {
        let mut base = sample();
        base.pages_per_query = 0.0;
        let mut run = sample();
        run.pages_per_query = 0.4; // within the +0.5 absolute slack
        assert!(run.check_against(&base).is_ok());
        run.pages_per_query = 0.6;
        assert!(run.check_against(&base).is_err());
    }

    fn build_sample() -> BuildSnapshot {
        BuildSnapshot {
            nodes: 100_000,
            build_s: 0.05,
            nodes_per_sec: 2_000_000.0,
            observer_overhead_pct: 1.5,
            bytes_per_node: 38.25,
            page_writes: 420,
        }
    }

    #[test]
    fn build_json_round_trips() {
        let s = build_sample();
        let parsed = BuildSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed.nodes, s.nodes);
        assert_eq!(parsed.page_writes, s.page_writes);
        assert!((parsed.nodes_per_sec - s.nodes_per_sec).abs() < 1e-1);
        assert!((parsed.bytes_per_node - s.bytes_per_node).abs() < 1e-3);
        assert!((parsed.observer_overhead_pct - s.observer_overhead_pct).abs() < 1e-2);
        assert!(BuildSnapshot::from_json("{\"schema_version\":1,\"nodes\":3}").is_err());
    }

    #[test]
    fn build_check_gates_throughput_space_and_writes() {
        let base = build_sample();

        let mut run = build_sample();
        run.nodes_per_sec = base.nodes_per_sec * 0.85;
        run.bytes_per_node = base.bytes_per_node * 1.04; // under the tight space ceiling
        run.page_writes = (base.page_writes as f64 * 1.15) as u64;
        run.observer_overhead_pct = 40.0; // informational only
        assert!(run.check_against(&base).is_ok());

        run = build_sample();
        run.nodes_per_sec = base.nodes_per_sec * 0.5;
        let err = run.check_against(&base).unwrap_err();
        assert!(err.contains("build-throughput regression"), "{err}");

        run = build_sample();
        run.bytes_per_node = base.bytes_per_node * 2.0;
        let err = run.check_against(&base).unwrap_err();
        assert!(err.contains("space regression"), "{err}");

        run = build_sample();
        run.page_writes = base.page_writes * 2;
        let err = run.check_against(&base).unwrap_err();
        assert!(err.contains("page-write regression"), "{err}");
    }

    #[test]
    fn tiny_build_baselines_get_absolute_slack() {
        let mut base = build_sample();
        base.page_writes = 0;
        base.bytes_per_node = 0.0;
        let mut run = build_sample();
        run.page_writes = 16; // within the +16 absolute slack
        run.bytes_per_node = 0.9; // within the +1 absolute slack
        assert!(run.check_against(&base).is_ok());
        run.page_writes = 17;
        assert!(run.check_against(&base).is_err());
    }

    #[test]
    fn json_number_scans_flat_objects() {
        let t = "{\"a\":1,\"b\":-2.5e3,\"c\":\"str\"}";
        assert_eq!(json_number(t, "a"), Some(1.0));
        assert_eq!(json_number(t, "b"), Some(-2500.0));
        assert_eq!(json_number(t, "c"), None);
        assert_eq!(json_number(t, "d"), None);
    }
}
