//! Shared machinery for the experiment harness.
//!
//! The `exp` binary (one subcommand per paper table/figure) and the
//! Criterion benches both build on the helpers here: deterministic dataset
//! construction from the [`genseq`] presets, wall-clock timing, and plain
//! text / JSON result reporting.

pub mod datasets;
pub mod faults;
pub mod flight;
pub mod http;
pub mod load;
pub mod report;
pub mod rng;
pub mod snapshot;

pub use datasets::{dna_presets, protein_presets, query_for, Dataset};
pub use faults::{crashpoint_sweep, SweepReport};
pub use flight::{validate_postmortem, FlightRecorder};
pub use http::{http_get, MonitorRoutes, MonitorServer};
pub use load::{
    ArrivalMode, CorpusKind, CorpusSpec, CurvePoint, EngineKind, LoadCurve, LoadPlan, MixKind,
    ScaleConfig, ScaleReport, ServeAdapter,
};
pub use report::{print_table, MetricsReport, Row};
pub use snapshot::{
    check_schema_version, BenchSnapshot, BuildSnapshot, SnapshotError, SCHEMA_VERSION,
};

use std::time::{Duration, Instant};

/// Run `f`, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Format a duration as fractional seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }
}
