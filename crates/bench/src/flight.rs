//! Postmortem dumps: the write-side of the flight recorder.
//!
//! The serving stack keeps its recent history in memory — the
//! [`TimeSeries`] ring of registry samples and the segment store's
//! on-disk lifecycle journal. This module turns that history into a
//! durable artifact at the moment something goes wrong: a
//! `postmortem-<unix_ms>-<seq>.json` file capturing the metric timeline,
//! the journal tail, a full registry snapshot, and the trigger reason.
//!
//! Two triggers fire automatically once wired up by `exp serve`:
//!
//! * a health transition — the `/health` route flipping healthy→unhealthy
//!   (see [`FlightRecorder::observe_health`]); repeated unhealthy polls do
//!   not re-fire, only the edge does;
//! * a worker panic — the engine's panic hook
//!   ([`QueryEngine::set_panic_hook`](spine::QueryEngine::set_panic_hook))
//!   runs after the worker is accounted dead and before its replacement
//!   spawns.
//!
//! Dumps are written atomically (tmp file + rename in the dump
//! directory) so a crash mid-dump never leaves a half-written
//! `postmortem-*.json` for the postmortem *reader* to choke on — the same
//! discipline the manifest and journal use. [`validate_postmortem`]
//! checks the schema and backs both the unit tests and the
//! `exp serve --flaky` end-to-end assertion.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use strindex::telemetry::{json_escape, MetricsRegistry, TimeSeries};

use crate::snapshot::json_number;

/// Journal events included in a postmortem dump.
const DUMP_JOURNAL_EVENTS: usize = 64;

/// Captures the in-memory flight-recorder state to disk when a trigger
/// fires. Shared across the health route, the engine panic hook, and the
/// serve loop via `Arc`.
pub struct FlightRecorder {
    dump_dir: PathBuf,
    series: Arc<TimeSeries>,
    registry: Arc<MetricsRegistry>,
    /// Returns the newest `n` lifecycle-journal events as a JSON array
    /// (the same closure backing `GET /journal`); recorders without a
    /// segment store report `[]`.
    journal: Box<dyn Fn(usize) -> String + Send + Sync>,
    was_healthy: AtomicBool,
    seq: AtomicU64,
    dumps: AtomicU64,
    last_dump: Mutex<Option<PathBuf>>,
}

impl FlightRecorder {
    /// A recorder dumping into `dump_dir` (created if absent). `journal`
    /// renders the newest `n` lifecycle events as a JSON array.
    pub fn new(
        dump_dir: impl Into<PathBuf>,
        series: Arc<TimeSeries>,
        registry: Arc<MetricsRegistry>,
        journal: impl Fn(usize) -> String + Send + Sync + 'static,
    ) -> Self {
        FlightRecorder {
            dump_dir: dump_dir.into(),
            series,
            registry,
            journal: Box::new(journal),
            was_healthy: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// Where dumps land.
    pub fn dump_dir(&self) -> &Path {
        &self.dump_dir
    }

    /// Dumps written so far.
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Acquire)
    }

    /// Path of the most recent dump, if any.
    pub fn last_dump(&self) -> Option<PathBuf> {
        self.last_dump.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Feed the latest `/health` verdict; fires [`trigger`](Self::trigger)
    /// on the healthy→unhealthy edge only, so a sustained outage produces
    /// one dump, not one per scrape.
    pub fn observe_health(&self, healthy: bool) {
        let was = self.was_healthy.swap(healthy, Ordering::AcqRel);
        if was && !healthy {
            let _ = self.trigger("health: transitioned to 503");
        }
    }

    /// Write a postmortem dump now. Returns the final path. The write is
    /// atomic: the body goes to a `.tmp` sibling which is then renamed
    /// into place, so `postmortem-*.json` files are always complete.
    pub fn trigger(&self, reason: &str) -> io::Result<PathBuf> {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        let body = self.render(reason, seq);
        fs::create_dir_all(&self.dump_dir)?;
        let name = format!("postmortem-{}-{seq}.json", unix_ms());
        let finalp = self.dump_dir.join(&name);
        let tmp = self.dump_dir.join(format!("{name}.tmp"));
        fs::write(&tmp, body.as_bytes())?;
        fs::rename(&tmp, &finalp)?;
        self.dumps.fetch_add(1, Ordering::AcqRel);
        *self.last_dump.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(finalp.clone());
        Ok(finalp)
    }

    /// The dump body: reason, capture time, the metric timeline, the
    /// journal tail, and a full registry snapshot.
    fn render(&self, reason: &str, seq: u64) -> String {
        let timeline = self.series.to_json(None, None);
        let journal = (self.journal)(DUMP_JOURNAL_EVENTS);
        let metrics = self.registry.snapshot().to_json();
        format!(
            "{{\"reason\":\"{}\",\"dump_unix_ms\":{},\"dump_seq\":{seq},\
             \"timeline\":{timeline},\"journal\":{journal},\"metrics\":{metrics}}}",
            json_escape(reason),
            unix_ms()
        )
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Check that `text` is a plausible postmortem dump: the four sections
/// are present, the capture time is a positive number, and the reason is
/// non-empty. Used by the unit tests here and by `exp serve --flaky` to
/// assert end-to-end that a panic actually produced a readable dump.
pub fn validate_postmortem(text: &str) -> Result<(), String> {
    let t = text.trim();
    if !(t.starts_with('{') && t.ends_with('}')) {
        return Err("not a JSON object".to_string());
    }
    if !t.contains("\"reason\":\"") || t.contains("\"reason\":\"\"") {
        return Err("missing or empty \"reason\"".to_string());
    }
    match json_number(t, "dump_unix_ms") {
        Some(ms) if ms > 0.0 => {}
        _ => return Err("missing positive \"dump_unix_ms\"".to_string()),
    }
    if json_number(t, "dump_seq").is_none() {
        return Err("missing \"dump_seq\"".to_string());
    }
    for (key, open) in [("timeline", '{'), ("journal", '['), ("metrics", '{')] {
        let needle = format!("\"{key}\":{open}");
        if !t.contains(&needle) {
            return Err(format!("missing \"{key}\" section"));
        }
    }
    if !t.contains("\"samples\":[") {
        return Err("timeline has no \"samples\" array".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(tag: &str) -> FlightRecorder {
        let dir = std::env::temp_dir().join(format!("spine-flight-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("serve.queries").add(41);
        let series = Arc::new(TimeSeries::new(16));
        series.sample(&registry);
        registry.counter("serve.queries").incr();
        series.sample(&registry);
        FlightRecorder::new(dir, series, registry, |n| {
            format!("[{{\"kind\":\"seal\",\"epoch\":1,\"n_asked\":{n}}}]")
        })
    }

    #[test]
    fn trigger_writes_an_atomic_schema_valid_dump() {
        let fr = recorder("trigger");
        let path = fr.trigger("unit test: forced dump").unwrap();
        assert!(path.exists());
        assert_eq!(fr.dump_count(), 1);
        assert_eq!(fr.last_dump().as_deref(), Some(&*path));

        // No half-written .tmp siblings survive the rename.
        let leftovers: Vec<_> = fs::read_dir(fr.dump_dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");

        let text = fs::read_to_string(&path).unwrap();
        validate_postmortem(&text).unwrap();
        assert!(text.contains("unit test: forced dump"), "reason embedded");
        assert!(text.contains("\"serve.queries\":42"), "timeline carries counters: {text}");
        assert!(text.contains("\"n_asked\":64"), "journal tail asked for the dump depth");
        let _ = fs::remove_dir_all(fr.dump_dir());
    }

    #[test]
    fn health_dump_fires_on_the_edge_not_the_level() {
        let fr = recorder("edge");
        fr.observe_health(true);
        fr.observe_health(true);
        assert_eq!(fr.dump_count(), 0, "healthy polls never dump");
        fr.observe_health(false);
        assert_eq!(fr.dump_count(), 1, "the transition dumps");
        fr.observe_health(false);
        fr.observe_health(false);
        assert_eq!(fr.dump_count(), 1, "a sustained outage dumps once");
        fr.observe_health(true);
        fr.observe_health(false);
        assert_eq!(fr.dump_count(), 2, "recovery re-arms the trigger");
        let reason = fs::read_to_string(fr.last_dump().unwrap()).unwrap();
        validate_postmortem(&reason).unwrap();
        assert!(reason.contains("transitioned to 503"));
        let _ = fs::remove_dir_all(fr.dump_dir());
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        assert!(validate_postmortem("").is_err());
        assert!(validate_postmortem("not json").is_err());
        assert!(validate_postmortem("{}").is_err(), "empty object lacks every section");
        assert!(
            validate_postmortem("{\"reason\":\"\",\"dump_unix_ms\":1,\"dump_seq\":0}").is_err(),
            "empty reason"
        );
        assert!(
            validate_postmortem(
                "{\"reason\":\"x\",\"dump_seq\":0,\
                 \"timeline\":{\"samples\":[]},\"journal\":[],\"metrics\":{}}"
            )
            .is_err(),
            "missing capture time"
        );
    }
}
