//! Exhaustive crashpoint sweep over the disk-resident SPINE (`exp faults`).
//!
//! The drill: record how many device operations a clean build+query+flush
//! trace performs, then re-run the *same* trace once per operation index
//! `k`, with a [`FaultyDevice`] that hard-fails every operation from `k`
//! on. A fault-tolerant stack must turn every such crashpoint into a clean
//! `Err` — no panic, no hang, no silently wrong answer. A second pass
//! checks the *degraded-mode* promise: with transient faults (a burst
//! outage or a seeded per-op failure probability) behind a
//! [`RetryDevice`], the run must succeed and match the in-memory
//! [`Spine`] oracle exactly.
//!
//! Everything here is deterministic: the text comes from a seeded preset,
//! the fault schedules are exact windows or seeded draws, and the retry
//! jitter generator is seeded per device.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use pagestore::{FaultyDevice, FlakyDevice, Lru, MemDevice, PageDevice, RetryDevice, RetryPolicy};
use spine::journal::decode_all;
use spine::{
    DiskSpine, IoGate, JournalEvent, JournalKind, SegmentConfig, SegmentedSpine, Spine,
    JOURNAL_FILE,
};
use strindex::{Alphabet, Code, StringIndex};

use crate::rng;
use crate::Dataset;

/// Seed for the flaky-device failure schedule, derived once from the
/// harness-wide scheme so `exp faults` runs are reproducible from the
/// documented default run seed.
fn flaky_seed() -> u64 {
    rng::derive(rng::DEFAULT_RUN_SEED, "faults.flaky-device", 0)
}

/// Buffer-pool frames for every sweep run: small enough that queries cause
/// real device traffic (evictions and re-reads), so crashpoints land in the
/// query phase too, not only in construction.
const POOL_PAGES: usize = 2;

/// Which phase of the trace an injected fault surfaced in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// During `DiskSpine::build` (page writes and link-walk reads).
    Build,
    /// During `try_find_all` (valid-path walk or backbone scan).
    Query,
    /// During the final `flush` of dirty pages.
    Flush,
}

/// Outcome of the full sweep; `exp faults` prints it and asserts
/// [`Self::holds`].
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Device operations (reads + writes) in the clean trace — the size of
    /// the crashpoint index space.
    pub trace_ops: u64,
    /// Crashpoints actually injected (every index when `stride` is 1).
    pub tested: u64,
    /// Faults that surfaced during construction.
    pub build_faults: u64,
    /// Faults that surfaced during the query phase.
    pub query_faults: u64,
    /// Faults that surfaced during the final flush.
    pub flush_faults: u64,
    /// Crashpoints that panicked instead of returning `Err`. Must be 0.
    pub panics: u64,
    /// Crashpoints below the trace length that nevertheless reported
    /// success — a swallowed fault. Must be 0.
    pub swallowed: u64,
    /// Transient faults the retry layer absorbed across the degraded runs.
    pub retries_absorbed: u64,
    /// Burst-outage run matched the in-memory oracle exactly.
    pub burst_oracle_match: bool,
    /// Probabilistic-fault run matched the in-memory oracle exactly.
    pub probability_oracle_match: bool,
    /// Device operations in one clean seal-to-layout-v2 rebuild — the size
    /// of the seal crashpoint index space.
    pub seal_ops: u64,
    /// Seal crashpoints that degraded to a clean `Err`.
    pub seal_faults: u64,
    /// After every mid-seal crash, the *source* index still answered a
    /// probe query correctly (a failed rebuild must not damage the
    /// committed version).
    pub sealed_source_intact: bool,
    /// A clean seal retried after the crashes matches the in-memory oracle
    /// on every pattern.
    pub sealed_oracle_match: bool,
    /// I/O operations (page ops, manifest and sidecar file ops, syncs) in
    /// one clean segment-store lifecycle — the pass-4 crashpoint space.
    /// Recovery ops are part of it: the sweep crashes recovery too.
    pub segment_ops: u64,
    /// Segment-store crashpoints that degraded to a clean `Err`.
    pub segment_faults: u64,
    /// Post-crash recoveries that landed on a committed manifest epoch
    /// with oracle-exact answers.
    pub segment_recoveries: u64,
    /// Post-crash recoveries that landed anywhere else — a torn store.
    /// Must be 0.
    pub segment_torn: u64,
    /// Recoveries that found orphan files (evidence of the crash, left for
    /// inspection) — informational.
    pub segment_orphaned: u64,
    /// Post-crash journals that failed the lifecycle contract: a torn
    /// record (strict decode error), an event the script never committed,
    /// an epoch ahead of the recovered manifest, or recovery failing to
    /// journal itself. Must be 0.
    pub segment_journal_divergences: u64,
}

impl SweepReport {
    /// The sweep's acceptance predicate: every crashpoint degraded to a
    /// clean `Err`, every retry-wrapped run matched the oracle, and every
    /// mid-seal crash left the source index committed and rebuildable.
    pub fn holds(&self) -> bool {
        self.panics == 0
            && self.swallowed == 0
            && self.burst_oracle_match
            && self.probability_oracle_match
            && self.tested > 0
            && self.seal_faults > 0
            && self.sealed_source_intact
            && self.sealed_oracle_match
            && self.segment_ops > 0
            && self.segment_faults > 0
            && self.segment_torn == 0
            && self.segment_journal_divergences == 0
    }
}

/// One build+query+flush trace over `device`. On success returns the
/// per-pattern answers and the number of device operations consumed; on
/// failure reports which phase the error surfaced in.
#[allow(clippy::type_complexity)]
fn run_trace(
    alphabet: &Alphabet,
    text: &[Code],
    patterns: &[Vec<Code>],
    device: Box<dyn PageDevice>,
) -> Result<(Vec<Vec<usize>>, u64), (Phase, strindex::Error)> {
    let spine = DiskSpine::build(alphabet.clone(), text, device, POOL_PAGES, Box::<Lru>::default())
        .map_err(|e| (Phase::Build, e))?;
    let mut answers = Vec::with_capacity(patterns.len());
    for p in patterns {
        answers.push(spine.try_find_all(p).map_err(|e| (Phase::Query, e))?);
    }
    spine.flush().map_err(|e| (Phase::Flush, e))?;
    let (reads, writes) = spine.io_counts();
    Ok((answers, reads + writes))
}

/// Deterministic workload: a seeded DNA text plus a pattern mix of present
/// substrings, a guaranteed miss, an overlong pattern, and the empty
/// pattern.
fn workload(text_len: usize) -> (Alphabet, Vec<Code>, Vec<Vec<Code>>) {
    // Any positive scale is clamped to ≥ 1 000 symbols; truncate from there.
    let d = Dataset::generate("eco-sim", 1e-9);
    let alphabet = d.alphabet.clone();
    let mut text = d.seq;
    text.truncate(text_len);
    let mut patterns: Vec<Vec<Code>> = (0..6)
        .map(|i| {
            let start = (i * 131) % (text.len().saturating_sub(12).max(1));
            text[start..(start + 4 + i * 2).min(text.len())].to_vec()
        })
        .collect();
    patterns.push(alphabet.encode(b"GGGGGGGGGGGGGGGGGGGG").unwrap()); // likely miss
    patterns.push(text.iter().chain(text.iter()).copied().collect()); // longer than text
    patterns.push(Vec::new()); // empty
    (alphabet, text, patterns)
}

/// Run the full sweep. `quick` strides the crashpoint space (CI-sized);
/// the full sweep injects at *every* operation index.
pub fn crashpoint_sweep(quick: bool) -> SweepReport {
    let text_len = if quick { 200 } else { 600 };
    let (alphabet, text, patterns) = workload(text_len);

    // In-memory oracle: the reference Spine answers every pattern.
    let oracle_index = Spine::build(alphabet.clone(), &text).unwrap();
    // try_find_all mirrors find_all's empty-pattern convention (both return
    // an empty answer), so the oracle needs no special-casing.
    let oracle: Vec<Vec<usize>> = patterns.iter().map(|p| oracle_index.find_all(p)).collect();

    // Clean run: establishes the trace length and double-checks answers.
    let (clean_answers, trace_ops) =
        run_trace(&alphabet, &text, &patterns, Box::new(MemDevice::new()))
            .expect("clean trace must not fail");
    assert_eq!(clean_answers, oracle, "clean disk trace diverges from in-memory oracle");

    let mut report = SweepReport { trace_ops, ..Default::default() };

    // ---- pass 1: hard fault at every (strided) crashpoint ------------------
    let stride = if quick { (trace_ops / 48).max(1) } else { 1 };
    // Panics are the bug being hunted; silence the default hook so a
    // regression doesn't spray hundreds of backtraces mid-table.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut k = 0;
    while k < trace_ops {
        let device = Box::new(FaultyDevice::new(MemDevice::new(), k));
        match catch_unwind(AssertUnwindSafe(|| run_trace(&alphabet, &text, &patterns, device))) {
            Ok(Ok(_)) => report.swallowed += 1,
            Ok(Err((phase, e))) => {
                debug_assert!(!e.is_transient(), "hard faults must classify as permanent: {e}");
                match phase {
                    Phase::Build => report.build_faults += 1,
                    Phase::Query => report.query_faults += 1,
                    Phase::Flush => report.flush_faults += 1,
                }
            }
            Err(_) => report.panics += 1,
        }
        report.tested += 1;
        k += stride;
    }
    std::panic::set_hook(prev_hook);

    // ---- pass 2: transient faults behind the retry layer -------------------
    // A burst outage mid-trace: every attempt in the window fails
    // transiently; 8 immediate retries must ride out the 3-op burst.
    let burst = FlakyDevice::with_burst(MemDevice::new(), trace_ops / 2, 3);
    let retry = RetryDevice::new(burst, RetryPolicy::immediate(8));
    match run_trace(&alphabet, &text, &patterns, Box::new(retry)) {
        Ok((answers, _)) => report.burst_oracle_match = answers == oracle,
        Err(_) => report.burst_oracle_match = false,
    }

    // Seeded per-op failure probability: each op fails 5% of the time, so
    // a budget of 8 retries makes overall failure vanishingly unlikely —
    // and the seed makes this run exactly reproducible.
    let flaky = FlakyDevice::with_probability(MemDevice::new(), 0.05, flaky_seed());
    let retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    match run_trace(&alphabet, &text, &patterns, Box::new(retry)) {
        Ok((answers, _)) => report.probability_oracle_match = answers == oracle,
        Err(_) => report.probability_oracle_match = false,
    }

    // ---- pass 3: crashpoints during the seal-to-layout-v2 rebuild ----------
    // The format-v2 migration path: build the mutable (v1) index once on a
    // clean device, then crash the *target* device at every (strided)
    // operation index during `seal_to`. Each crash must surface as a clean
    // `Err`, must leave the source index answering queries (the committed
    // version survives), and a clean retry must produce a sealed index that
    // matches the oracle.
    let src = DiskSpine::build(
        alphabet.clone(),
        &text,
        Box::new(MemDevice::new()),
        POOL_PAGES.max(8),
        Box::<Lru>::default(),
    )
    .expect("clean source build must not fail");
    let sealed = src
        .seal_to(Box::new(MemDevice::new()), POOL_PAGES, Box::<Lru>::default())
        .expect("clean seal must not fail");
    let (seal_reads, seal_writes) = sealed.io_counts();
    // Syncs spend fault budget too (the barrier can fail like any op), so
    // they belong to the crashpoint index space.
    report.seal_ops = seal_reads + seal_writes + sealed.io_syncs();

    let stride = if quick { (report.seal_ops / 24).max(1) } else { 1 };
    report.sealed_source_intact = true;
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut k = 0;
    while k < report.seal_ops {
        let device = Box::new(FaultyDevice::new(MemDevice::new(), k));
        match catch_unwind(AssertUnwindSafe(|| {
            src.seal_to(device, POOL_PAGES, Box::<Lru>::default())
        })) {
            Ok(Ok(_)) => report.swallowed += 1,
            Ok(Err(_)) => report.seal_faults += 1,
            Err(_) => report.panics += 1,
        }
        // The committed (source) version must still answer after the crash;
        // probe with a rotating pattern so the sweep covers the whole mix.
        let probe = (k as usize) % patterns.len();
        if src.try_find_all(&patterns[probe]).ok().as_deref() != Some(&oracle[probe]) {
            report.sealed_source_intact = false;
        }
        k += stride;
    }
    std::panic::set_hook(prev_hook);

    // Recovery: a clean retry of the rebuild answers every pattern exactly.
    match src.seal_to(Box::new(MemDevice::new()), POOL_PAGES, Box::<Lru>::default()) {
        Ok(resealed) => {
            let answers: Result<Vec<_>, _> =
                patterns.iter().map(|p| resealed.try_find_all(p)).collect();
            report.sealed_oracle_match = answers.map(|a| a == oracle).unwrap_or(false);
        }
        Err(_) => report.sealed_oracle_match = false,
    }

    // ---- pass 4: crashpoints across segment commit, merge, and recovery ----
    // A scripted segment-store lifecycle (adds, seals, a durable retire, a
    // merge) is first run clean to count its I/O operations — page ops,
    // manifest commits, sidecar writes, syncs, deletions, and the recovery
    // reads of the initial open all charge one shared IoGate. Then the
    // same lifecycle runs once per (strided) operation index with the gate
    // armed: everything from that index on fails, like a crash. Recovery
    // must land on a committed manifest epoch (the last acknowledged one,
    // or the in-flight commit when the crash hit between its rename and
    // directory sync) and answer every probe pattern oracle-exactly.
    {
        let base =
            std::env::temp_dir().join(format!("spine-faults-segments-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        let clean_dir = base.join("clean");
        init_segment_store(&clean_dir);
        let gate = IoGate::unarmed();
        let clean = run_segment_script(&clean_dir, Some(gate.clone()));
        assert!(clean.result.is_ok(), "clean segment lifecycle must not fail");
        report.segment_ops = gate.ops();
        let (exact, _, journal_ok) = verify_segment_recovery(&clean_dir, &clean);
        assert!(exact, "clean segment lifecycle diverges from the per-document oracle");
        assert!(journal_ok, "clean segment lifecycle must satisfy the journal contract");
        let _ = std::fs::remove_dir_all(&clean_dir);

        let stride = if quick { (report.segment_ops / 32).max(1) } else { 1 };
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut k = 0;
        while k < report.segment_ops {
            let dir = base.join(format!("k{k}"));
            init_segment_store(&dir);
            match catch_unwind(AssertUnwindSafe(|| {
                run_segment_script(&dir, Some(IoGate::armed(k)))
            })) {
                Ok(outcome) => {
                    if outcome.result.is_ok() {
                        report.swallowed += 1;
                    } else {
                        report.segment_faults += 1;
                    }
                    let (exact, orphans, journal_ok) = verify_segment_recovery(&dir, &outcome);
                    if exact {
                        report.segment_recoveries += 1;
                    } else {
                        report.segment_torn += 1;
                    }
                    if orphans {
                        report.segment_orphaned += 1;
                    }
                    if !journal_ok {
                        report.segment_journal_divergences += 1;
                    }
                }
                Err(_) => report.panics += 1,
            }
            let _ = std::fs::remove_dir_all(&dir);
            k += stride;
        }
        std::panic::set_hook(prev_hook);
        let _ = std::fs::remove_dir_all(&base);
    }

    // Count absorbed retries with a dedicated instrumented run (the boxed
    // runs above erase the concrete device type).
    let flaky = FlakyDevice::with_probability(MemDevice::new(), 0.05, flaky_seed());
    let mut retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    let mut probe = [0u8; pagestore::PAGE_SIZE];
    for i in 0..64u32 {
        retry.write_page(i % 4, &probe).unwrap();
        retry.read_page(i % 4, &mut probe).unwrap();
    }
    report.retries_absorbed = retry.retries();

    report
}

/// The pass-4 document set, indexed by global document id (the script
/// assigns ids 0.. in this order).
const SEG_DOCS: [&[u8]; 5] = [b"ACGTACGTAC", b"GGGGTTTT", b"ACACACAC", b"TTGGCCAA", b"CAGTCAGT"];

/// Probe patterns for post-recovery verification: hits across several
/// documents, a repeat, a single-doc hit, a two-symbol pattern, and the
/// empty pattern.
const SEG_PROBES: [&[u8]; 5] = [b"ACGT", b"GGGG", b"CAGT", b"AC", b""];

/// Adds never auto-seal (threshold `usize::MAX`), so commits happen only
/// at the script's explicit seal/retire/merge steps — the crashpoint
/// accounting stays readable.
fn seg_config(gate: Option<IoGate>) -> SegmentConfig {
    // hot_pin_pages: 0 — pinning issues extra gated reads at open time,
    // which would shift every crashpoint index in the sweep.
    SegmentConfig {
        memtable_max_symbols: usize::MAX,
        pool_pages: 4,
        merge_min_segments: 2,
        gate,
        hot_pin_pages: 0,
    }
}

/// Create the (ungated) empty store each pass-4 run starts from.
fn init_segment_store(dir: &Path) {
    std::fs::create_dir_all(dir).expect("create segment sweep dir");
    SegmentedSpine::create(Alphabet::dna(), dir, seg_config(None))
        .expect("ungated segment-store create must not fail");
}

/// What a pass-4 run observed: every acknowledged commit's
/// `(epoch, live sealed doc ids)`, plus the commit that was in flight if
/// the run crashed mid-operation.
struct SegScriptOutcome {
    committed: Vec<(u64, Vec<u64>)>,
    pending: Option<(u64, Vec<u64>)>,
    result: Result<(), strindex::Error>,
}

/// The scripted lifecycle: two sealed batches, a durable retire, a
/// volatile add, a merge, a final seal. Aborts at the first error (the
/// injected crash), recording the in-flight commit's target state.
fn run_segment_script(dir: &Path, gate: Option<IoGate>) -> SegScriptOutcome {
    let alphabet = Alphabet::dna();
    let enc = |b: &[u8]| alphabet.encode(b).expect("probe docs are valid DNA");
    let mut out =
        SegScriptOutcome { committed: vec![(0, Vec::new())], pending: None, result: Ok(()) };
    let s = match SegmentedSpine::open(alphabet.clone(), dir, seg_config(gate)) {
        Ok(s) => s,
        Err(e) => {
            out.result = Err(e);
            return out;
        }
    };
    let mut epoch = s.epoch();

    macro_rules! volatile {
        ($call:expr) => {
            if let Err(e) = $call {
                out.result = Err(e);
                return out;
            }
        };
    }
    macro_rules! commit {
        ($live:expr, $call:expr) => {
            out.pending = Some((epoch + 1, $live));
            match $call {
                Ok(_) => {
                    epoch = s.epoch();
                    let (_, live) = out.pending.take().expect("pending set above");
                    out.committed.push((epoch, live));
                }
                Err(e) => {
                    out.result = Err(e);
                    return out;
                }
            }
        };
    }

    volatile!(s.add_document(&enc(SEG_DOCS[0])));
    volatile!(s.add_document(&enc(SEG_DOCS[1])));
    commit!(vec![0, 1], s.force_seal());
    volatile!(s.add_document(&enc(SEG_DOCS[2])));
    volatile!(s.add_document(&enc(SEG_DOCS[3])));
    commit!(vec![0, 1, 2, 3], s.force_seal());
    commit!(vec![0, 2, 3], s.retire_document(1));
    volatile!(s.add_document(&enc(SEG_DOCS[4])));
    commit!(vec![0, 2, 3], s.merge_once());
    commit!(vec![0, 2, 3, 4], s.force_seal());
    out
}

/// Naive per-document oracle: every occurrence of `pattern` in the given
/// live documents, as sorted `(doc, offset)` pairs. The empty pattern
/// occurs at every position, boundaries included.
fn seg_oracle(live: &[u64], pattern: &[u8]) -> Vec<(usize, usize)> {
    let mut hits = Vec::new();
    for &d in live {
        let content = SEG_DOCS[d as usize];
        if pattern.is_empty() {
            hits.extend((0..=content.len()).map(|off| (d as usize, off)));
            continue;
        }
        if pattern.len() > content.len() {
            continue;
        }
        for off in 0..=content.len() - pattern.len() {
            if &content[off..off + pattern.len()] == pattern {
                hits.push((d as usize, off));
            }
        }
    }
    hits
}

/// The commit kinds the pass-4 script journals, in epoch order (epochs
/// 1..=5; recover events interleave with whatever epoch was current).
const SEG_SCRIPT_KINDS: [JournalKind; 5] = [
    JournalKind::Seal,
    JournalKind::Seal,
    JournalKind::Retire,
    JournalKind::Merge,
    JournalKind::Seal,
];

/// The lifecycle-journal contract at a crashpoint, checked against the
/// journal bytes as the crash left them (read *before* recovery, which
/// truncates torn tails and appends its own event) plus the recovered
/// store: no torn records (the gate model is fail-stop — an append either
/// happened or it didn't), the commit events form an exact prefix of the
/// script's schedule missing at most the final commit, no event is ahead
/// of the recovered manifest epoch, and recovery journaled itself.
fn verify_segment_journal(
    pre_crash: Result<Vec<JournalEvent>, strindex::Error>,
    s: &SegmentedSpine,
) -> bool {
    let epoch = s.epoch();
    let Ok(events) = pre_crash else {
        return false; // torn record — impossible under fail-stop injection
    };
    let commits: Vec<&JournalEvent> =
        events.iter().filter(|e| e.kind != JournalKind::Recover).collect();
    let prefix_ok = commits
        .iter()
        .enumerate()
        .all(|(i, e)| e.epoch == i as u64 + 1 && SEG_SCRIPT_KINDS.get(i) == Some(&e.kind));
    let k = commits.len() as u64;
    // An event is journaled right after its commit is durable, and a
    // journal failure aborts the script — so the journal contains every
    // acknowledged commit except possibly the last one, and never leads
    // the manifest.
    prefix_ok
        && events.iter().all(|e| e.epoch <= epoch)
        && (k == epoch || k + 1 == epoch)
        && s.recent_journal(1).is_ok_and(|evs| {
            evs.last().is_some_and(|e| e.kind == JournalKind::Recover && e.epoch == epoch)
        })
}

/// Recover `dir` ungated and check the crash-safety contract: the store
/// opens, lands on an epoch the run committed (or had in flight), reports
/// exactly that epoch's live documents, and answers every probe pattern
/// like the naive oracle. Returns
/// `(contract holds, orphans found, journal contract holds)`.
fn verify_segment_recovery(dir: &Path, run: &SegScriptOutcome) -> (bool, bool, bool) {
    // Snapshot the journal exactly as the crash left it: the recovery
    // below truncates torn tails and appends a recover event.
    let journal_bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap_or_default();
    let pre_crash = decode_all(&journal_bytes);
    let alphabet = Alphabet::dna();
    let s = match SegmentedSpine::open(alphabet.clone(), dir, seg_config(None)) {
        Ok(s) => s,
        Err(_) => return (false, false, false),
    };
    let journal_ok = verify_segment_journal(pre_crash, &s);
    let orphans = s.orphan_count() > 0;
    let epoch = s.epoch();
    let expected_live = run
        .committed
        .iter()
        .chain(run.pending.as_ref())
        .find(|(e, _)| *e == epoch)
        .map(|(_, live)| live.clone());
    let Some(expected_live) = expected_live else {
        return (false, orphans, journal_ok);
    };
    if s.live_doc_ids() != expected_live {
        return (false, orphans, journal_ok);
    }
    for probe in SEG_PROBES {
        let pattern = alphabet.encode(probe).expect("probes are valid DNA");
        let got: Vec<(usize, usize)> = match s.try_find_all(&pattern) {
            Ok(ms) => ms.into_iter().map(|m| (m.doc, m.offset)).collect(),
            Err(_) => return (false, orphans, journal_ok),
        };
        if got != seg_oracle(&expected_live, probe) {
            return (false, orphans, journal_ok);
        }
    }
    (true, orphans, journal_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_holds() {
        let r = crashpoint_sweep(true);
        assert!(r.holds(), "sweep violated fault-tolerance contract: {r:?}");
        assert!(r.trace_ops > 0);
        assert!(r.seal_ops > 0, "the seal pass must issue device operations");
        assert!(r.build_faults > 0, "some crashpoints must land in build");
        assert!(
            r.query_faults + r.flush_faults > 0,
            "some crashpoints must land after build: {r:?}"
        );
        assert!(r.segment_ops > 0, "the segment pass must charge I/O operations");
        assert!(r.segment_faults > 0, "segment crashpoints must surface as clean errors");
        assert_eq!(r.segment_torn, 0, "every recovery must land on a committed epoch: {r:?}");
        assert_eq!(
            r.segment_recoveries,
            r.segment_faults + r.swallowed,
            "every crashed run must recover: {r:?}"
        );
        assert_eq!(
            r.segment_journal_divergences, 0,
            "the journal must contain each event or cleanly lack it: {r:?}"
        );
    }

    #[test]
    fn fault_at_zero_fails_immediately_and_cleanly() {
        let (alphabet, text, patterns) = workload(80);
        let device = Box::new(FaultyDevice::new(MemDevice::new(), 0));
        let err = run_trace(&alphabet, &text, &patterns, device);
        assert!(matches!(err, Err((Phase::Build, _))));
    }
}
