//! Exhaustive crashpoint sweep over the disk-resident SPINE (`exp faults`).
//!
//! The drill: record how many device operations a clean build+query+flush
//! trace performs, then re-run the *same* trace once per operation index
//! `k`, with a [`FaultyDevice`] that hard-fails every operation from `k`
//! on. A fault-tolerant stack must turn every such crashpoint into a clean
//! `Err` — no panic, no hang, no silently wrong answer. A second pass
//! checks the *degraded-mode* promise: with transient faults (a burst
//! outage or a seeded per-op failure probability) behind a
//! [`RetryDevice`], the run must succeed and match the in-memory
//! [`Spine`] oracle exactly.
//!
//! Everything here is deterministic: the text comes from a seeded preset,
//! the fault schedules are exact windows or seeded draws, and the retry
//! jitter generator is seeded per device.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pagestore::{FaultyDevice, FlakyDevice, Lru, MemDevice, PageDevice, RetryDevice, RetryPolicy};
use spine::{DiskSpine, Spine};
use strindex::{Alphabet, Code, StringIndex};

use crate::Dataset;

/// Buffer-pool frames for every sweep run: small enough that queries cause
/// real device traffic (evictions and re-reads), so crashpoints land in the
/// query phase too, not only in construction.
const POOL_PAGES: usize = 2;

/// Which phase of the trace an injected fault surfaced in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// During `DiskSpine::build` (page writes and link-walk reads).
    Build,
    /// During `try_find_all` (valid-path walk or backbone scan).
    Query,
    /// During the final `flush` of dirty pages.
    Flush,
}

/// Outcome of the full sweep; `exp faults` prints it and asserts
/// [`Self::holds`].
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Device operations (reads + writes) in the clean trace — the size of
    /// the crashpoint index space.
    pub trace_ops: u64,
    /// Crashpoints actually injected (every index when `stride` is 1).
    pub tested: u64,
    /// Faults that surfaced during construction.
    pub build_faults: u64,
    /// Faults that surfaced during the query phase.
    pub query_faults: u64,
    /// Faults that surfaced during the final flush.
    pub flush_faults: u64,
    /// Crashpoints that panicked instead of returning `Err`. Must be 0.
    pub panics: u64,
    /// Crashpoints below the trace length that nevertheless reported
    /// success — a swallowed fault. Must be 0.
    pub swallowed: u64,
    /// Transient faults the retry layer absorbed across the degraded runs.
    pub retries_absorbed: u64,
    /// Burst-outage run matched the in-memory oracle exactly.
    pub burst_oracle_match: bool,
    /// Probabilistic-fault run matched the in-memory oracle exactly.
    pub probability_oracle_match: bool,
    /// Device operations in one clean seal-to-layout-v2 rebuild — the size
    /// of the seal crashpoint index space.
    pub seal_ops: u64,
    /// Seal crashpoints that degraded to a clean `Err`.
    pub seal_faults: u64,
    /// After every mid-seal crash, the *source* index still answered a
    /// probe query correctly (a failed rebuild must not damage the
    /// committed version).
    pub sealed_source_intact: bool,
    /// A clean seal retried after the crashes matches the in-memory oracle
    /// on every pattern.
    pub sealed_oracle_match: bool,
}

impl SweepReport {
    /// The sweep's acceptance predicate: every crashpoint degraded to a
    /// clean `Err`, every retry-wrapped run matched the oracle, and every
    /// mid-seal crash left the source index committed and rebuildable.
    pub fn holds(&self) -> bool {
        self.panics == 0
            && self.swallowed == 0
            && self.burst_oracle_match
            && self.probability_oracle_match
            && self.tested > 0
            && self.seal_faults > 0
            && self.sealed_source_intact
            && self.sealed_oracle_match
    }
}

/// One build+query+flush trace over `device`. On success returns the
/// per-pattern answers and the number of device operations consumed; on
/// failure reports which phase the error surfaced in.
#[allow(clippy::type_complexity)]
fn run_trace(
    alphabet: &Alphabet,
    text: &[Code],
    patterns: &[Vec<Code>],
    device: Box<dyn PageDevice>,
) -> Result<(Vec<Vec<usize>>, u64), (Phase, strindex::Error)> {
    let spine = DiskSpine::build(alphabet.clone(), text, device, POOL_PAGES, Box::<Lru>::default())
        .map_err(|e| (Phase::Build, e))?;
    let mut answers = Vec::with_capacity(patterns.len());
    for p in patterns {
        answers.push(spine.try_find_all(p).map_err(|e| (Phase::Query, e))?);
    }
    spine.flush().map_err(|e| (Phase::Flush, e))?;
    let (reads, writes) = spine.io_counts();
    Ok((answers, reads + writes))
}

/// Deterministic workload: a seeded DNA text plus a pattern mix of present
/// substrings, a guaranteed miss, an overlong pattern, and the empty
/// pattern.
fn workload(text_len: usize) -> (Alphabet, Vec<Code>, Vec<Vec<Code>>) {
    // Any positive scale is clamped to ≥ 1 000 symbols; truncate from there.
    let d = Dataset::generate("eco-sim", 1e-9);
    let alphabet = d.alphabet.clone();
    let mut text = d.seq;
    text.truncate(text_len);
    let mut patterns: Vec<Vec<Code>> = (0..6)
        .map(|i| {
            let start = (i * 131) % (text.len().saturating_sub(12).max(1));
            text[start..(start + 4 + i * 2).min(text.len())].to_vec()
        })
        .collect();
    patterns.push(alphabet.encode(b"GGGGGGGGGGGGGGGGGGGG").unwrap()); // likely miss
    patterns.push(text.iter().chain(text.iter()).copied().collect()); // longer than text
    patterns.push(Vec::new()); // empty
    (alphabet, text, patterns)
}

/// Run the full sweep. `quick` strides the crashpoint space (CI-sized);
/// the full sweep injects at *every* operation index.
pub fn crashpoint_sweep(quick: bool) -> SweepReport {
    let text_len = if quick { 200 } else { 600 };
    let (alphabet, text, patterns) = workload(text_len);

    // In-memory oracle: the reference Spine answers every pattern.
    let oracle_index = Spine::build(alphabet.clone(), &text).unwrap();
    // try_find_all mirrors find_all's empty-pattern convention (both return
    // an empty answer), so the oracle needs no special-casing.
    let oracle: Vec<Vec<usize>> = patterns.iter().map(|p| oracle_index.find_all(p)).collect();

    // Clean run: establishes the trace length and double-checks answers.
    let (clean_answers, trace_ops) =
        run_trace(&alphabet, &text, &patterns, Box::new(MemDevice::new()))
            .expect("clean trace must not fail");
    assert_eq!(clean_answers, oracle, "clean disk trace diverges from in-memory oracle");

    let mut report = SweepReport { trace_ops, ..Default::default() };

    // ---- pass 1: hard fault at every (strided) crashpoint ------------------
    let stride = if quick { (trace_ops / 48).max(1) } else { 1 };
    // Panics are the bug being hunted; silence the default hook so a
    // regression doesn't spray hundreds of backtraces mid-table.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut k = 0;
    while k < trace_ops {
        let device = Box::new(FaultyDevice::new(MemDevice::new(), k));
        match catch_unwind(AssertUnwindSafe(|| run_trace(&alphabet, &text, &patterns, device))) {
            Ok(Ok(_)) => report.swallowed += 1,
            Ok(Err((phase, e))) => {
                debug_assert!(!e.is_transient(), "hard faults must classify as permanent: {e}");
                match phase {
                    Phase::Build => report.build_faults += 1,
                    Phase::Query => report.query_faults += 1,
                    Phase::Flush => report.flush_faults += 1,
                }
            }
            Err(_) => report.panics += 1,
        }
        report.tested += 1;
        k += stride;
    }
    std::panic::set_hook(prev_hook);

    // ---- pass 2: transient faults behind the retry layer -------------------
    // A burst outage mid-trace: every attempt in the window fails
    // transiently; 8 immediate retries must ride out the 3-op burst.
    let burst = FlakyDevice::with_burst(MemDevice::new(), trace_ops / 2, 3);
    let retry = RetryDevice::new(burst, RetryPolicy::immediate(8));
    match run_trace(&alphabet, &text, &patterns, Box::new(retry)) {
        Ok((answers, _)) => report.burst_oracle_match = answers == oracle,
        Err(_) => report.burst_oracle_match = false,
    }

    // Seeded per-op failure probability: each op fails 5% of the time, so
    // a budget of 8 retries makes overall failure vanishingly unlikely —
    // and the seed makes this run exactly reproducible.
    let flaky = FlakyDevice::with_probability(MemDevice::new(), 0.05, 0xFA017);
    let retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    match run_trace(&alphabet, &text, &patterns, Box::new(retry)) {
        Ok((answers, _)) => report.probability_oracle_match = answers == oracle,
        Err(_) => report.probability_oracle_match = false,
    }

    // ---- pass 3: crashpoints during the seal-to-layout-v2 rebuild ----------
    // The format-v2 migration path: build the mutable (v1) index once on a
    // clean device, then crash the *target* device at every (strided)
    // operation index during `seal_to`. Each crash must surface as a clean
    // `Err`, must leave the source index answering queries (the committed
    // version survives), and a clean retry must produce a sealed index that
    // matches the oracle.
    let src = DiskSpine::build(
        alphabet.clone(),
        &text,
        Box::new(MemDevice::new()),
        POOL_PAGES.max(8),
        Box::<Lru>::default(),
    )
    .expect("clean source build must not fail");
    let sealed = src
        .seal_to(Box::new(MemDevice::new()), POOL_PAGES, Box::<Lru>::default())
        .expect("clean seal must not fail");
    let (seal_reads, seal_writes) = sealed.io_counts();
    report.seal_ops = seal_reads + seal_writes;

    let stride = if quick { (report.seal_ops / 24).max(1) } else { 1 };
    report.sealed_source_intact = true;
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut k = 0;
    while k < report.seal_ops {
        let device = Box::new(FaultyDevice::new(MemDevice::new(), k));
        match catch_unwind(AssertUnwindSafe(|| {
            src.seal_to(device, POOL_PAGES, Box::<Lru>::default())
        })) {
            Ok(Ok(_)) => report.swallowed += 1,
            Ok(Err(_)) => report.seal_faults += 1,
            Err(_) => report.panics += 1,
        }
        // The committed (source) version must still answer after the crash;
        // probe with a rotating pattern so the sweep covers the whole mix.
        let probe = (k as usize) % patterns.len();
        if src.try_find_all(&patterns[probe]).ok().as_deref() != Some(&oracle[probe]) {
            report.sealed_source_intact = false;
        }
        k += stride;
    }
    std::panic::set_hook(prev_hook);

    // Recovery: a clean retry of the rebuild answers every pattern exactly.
    match src.seal_to(Box::new(MemDevice::new()), POOL_PAGES, Box::<Lru>::default()) {
        Ok(resealed) => {
            let answers: Result<Vec<_>, _> =
                patterns.iter().map(|p| resealed.try_find_all(p)).collect();
            report.sealed_oracle_match = answers.map(|a| a == oracle).unwrap_or(false);
        }
        Err(_) => report.sealed_oracle_match = false,
    }

    // Count absorbed retries with a dedicated instrumented run (the boxed
    // runs above erase the concrete device type).
    let flaky = FlakyDevice::with_probability(MemDevice::new(), 0.05, 0xFA017);
    let mut retry = RetryDevice::new(flaky, RetryPolicy::immediate(8));
    let mut probe = [0u8; pagestore::PAGE_SIZE];
    for i in 0..64u32 {
        retry.write_page(i % 4, &probe).unwrap();
        retry.read_page(i % 4, &mut probe).unwrap();
    }
    report.retries_absorbed = retry.retries();

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_holds() {
        let r = crashpoint_sweep(true);
        assert!(r.holds(), "sweep violated fault-tolerance contract: {r:?}");
        assert!(r.trace_ops > 0);
        assert!(r.seal_ops > 0, "the seal pass must issue device operations");
        assert!(r.build_faults > 0, "some crashpoints must land in build");
        assert!(
            r.query_faults + r.flush_faults > 0,
            "some crashpoints must land after build: {r:?}"
        );
    }

    #[test]
    fn fault_at_zero_fails_immediately_and_cleanly() {
        let (alphabet, text, patterns) = workload(80);
        let device = Box::new(FaultyDevice::new(MemDevice::new(), 0));
        let err = run_trace(&alphabet, &text, &patterns, device);
        assert!(matches!(err, Err((Phase::Build, _))));
    }
}
