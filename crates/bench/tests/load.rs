//! Load-harness contract tests: the determinism guarantees the committed
//! `BENCH_scale.json` relies on, and the coordinated-omission behavior the
//! open-loop driver exists for.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use spine::engine::{EngineConfig, QueryEngine, QueryOutcome, ServeIndex, ShedPolicy};
use spine_bench::load::{
    build_engine, mix_queries, run_plan, ArrivalProcess, Corpus, CorpusKind, CorpusSpec,
    EngineKind, LoadPlan, MixKind,
};
use strindex::{Code, CountersSnapshot};

fn corpus(kind: CorpusKind, len: usize, seed: u64) -> Corpus {
    Corpus::materialize(CorpusSpec::new(kind, len, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed → byte-identical query sequences for every mix, and
    /// byte-identical plan fingerprints; different seeds diverge.
    #[test]
    fn query_generation_is_a_pure_function_of_the_seed(
        seed in 0u64..1_000,
        count in 16usize..80,
    ) {
        let a = corpus(CorpusKind::Dna, 24_000, seed);
        let b = corpus(CorpusKind::Dna, 24_000, seed);
        prop_assert_eq!(&a.text, &b.text);
        prop_assert_eq!(&a.windows, &b.windows);
        for mix in MixKind::ALL {
            let qa = mix_queries(&a, mix, count);
            let qb = mix_queries(&b, mix, count);
            prop_assert_eq!(&qa, &qb, "{}", mix.name());
        }
        let other = corpus(CorpusKind::Dna, 24_000, seed + 1);
        prop_assert_ne!(&a.text, &other.text);
    }

    /// Same seed → byte-identical arrival schedules and summary JSON, in
    /// both arrival modes and both open-loop processes.
    #[test]
    fn plans_are_reproducible_from_one_seed(
        seed in 0u64..1_000,
        qps_k in 1u64..100,
        concurrency in 1usize..16,
    ) {
        let qps = qps_k as f64 * 1_000.0;
        let c = corpus(CorpusKind::Dna, 24_000, seed);
        let queries = mix_queries(&c, MixKind::Uniform, 48);

        let closed_a = LoadPlan::closed(queries.clone(), concurrency);
        let closed_b = LoadPlan::closed(queries.clone(), concurrency);
        prop_assert_eq!(closed_a.summary_json(), closed_b.summary_json());

        for process in [ArrivalProcess::Poisson, ArrivalProcess::Constant] {
            let a = LoadPlan::open(queries.clone(), qps, process, seed);
            let b = LoadPlan::open(queries.clone(), qps, process, seed);
            prop_assert_eq!(&a.arrivals_ns, &b.arrivals_ns);
            prop_assert_eq!(a.summary_json(), b.summary_json());
            // Schedules are monotone non-decreasing offsets from zero.
            prop_assert!(a.arrivals_ns.windows(2).all(|w| w[0] <= w[1]));
        }

        // The fingerprint separates modes and parameters.
        let poisson = LoadPlan::open(queries.clone(), qps, ArrivalProcess::Poisson, seed);
        let constant = LoadPlan::open(queries, qps, ArrivalProcess::Constant, seed);
        prop_assert_ne!(poisson.summary_json(), closed_a.summary_json());
        prop_assert_ne!(poisson.summary_json(), constant.summary_json());
    }
}

/// Every engine kind answers the uniform mix identically to SPINE when
/// driven through the harness's own builders (trie included — its corpus is
/// just smaller, so it gets its own queries here).
#[test]
fn all_engine_builders_agree_under_load() {
    let c = corpus(CorpusKind::Dna, 3_000, 13);
    let scratch = std::env::temp_dir().join(format!("spine-load-it-agree-{}", std::process::id()));
    let queries = mix_queries(&c, MixKind::Uniform, 40);
    let mut reference: Option<Vec<QueryOutcome>> = None;
    for kind in EngineKind::ALL {
        let index = Arc::new(build_engine(kind, &c, &scratch.join(kind.name())));
        let engine = QueryEngine::new(
            Arc::clone(&index),
            EngineConfig { workers: 2, queue_capacity: 64, ..Default::default() },
        );
        let plan = LoadPlan::closed(queries.clone(), 4);
        let out = run_plan(&engine, &plan, None);
        assert_eq!(out.completed, queries.len() as u64, "{}", kind.name());
        // Compare answers across engines: re-ask the index directly. The
        // segmented store answers in document space, so compare the
        // flat-text engines only.
        if kind != EngineKind::SpineSeg {
            let patterns: Vec<&[Code]> = queries.iter().map(|q| q.as_slice()).collect();
            let answers = index.answer_patterns(&patterns);
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(r, &answers, "{} disagrees", kind.name()),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A [`ServeIndex`] that stalls hard on the first batch it sees: the
/// coordinated-omission probe. A closed-loop driver would only charge the
/// stall to the single in-flight query; the open-loop driver must charge
/// every query scheduled *during* the stall for its full queue wait.
struct StalledIndex {
    stall: Duration,
    stalled: AtomicBool,
}

impl StalledIndex {
    fn new(stall: Duration) -> StalledIndex {
        StalledIndex { stall, stalled: AtomicBool::new(false) }
    }
}

impl ServeIndex for StalledIndex {
    fn answer_patterns(&self, patterns: &[&[Code]]) -> Vec<QueryOutcome> {
        if !self.stalled.swap(true, Relaxed) {
            std::thread::sleep(self.stall);
        }
        patterns.iter().map(|_| QueryOutcome::Done(Vec::new())).collect()
    }

    fn counters_snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            nodes_checked: 0,
            edges_traversed: 0,
            links_followed: 0,
            extribs_scanned: 0,
        }
    }
}

/// ISSUE acceptance: an open-loop run against an artificially stalled
/// engine reports p99 ≥ the stall duration, because latency is measured
/// from the *intended* arrival time and queries keep arriving while the
/// engine is stuck.
#[test]
fn open_loop_charges_queue_wait_during_a_stall() {
    const STALL: Duration = Duration::from_millis(100);
    let index = Arc::new(StalledIndex::new(STALL));
    let engine = QueryEngine::new(
        Arc::clone(&index),
        EngineConfig { workers: 1, batch_max: 1, queue_capacity: 256, shed: ShedPolicy::Block },
    );
    let queries: Vec<Vec<Code>> = (0..40).map(|i| vec![(i % 4) as Code]).collect();
    // Constant 1 ms spacing: the whole schedule (40 ms) fits inside the
    // 100 ms stall, so every query queues behind it.
    let plan = LoadPlan::open(queries, 1_000.0, ArrivalProcess::Constant, 0);
    let out = run_plan(&engine, &plan, None);
    assert_eq!(out.completed, 40);
    let stall_us = STALL.as_micros() as u64;
    assert!(
        out.p99_us() >= stall_us,
        "open-loop p99 {} µs must charge the {} µs stall",
        out.p99_us(),
        stall_us
    );
    // The first query entered the engine on time; the generator itself
    // never fell materially behind its schedule (it only submits, never
    // waits for answers), so dispatch lag stays well under the stall.
    assert!(
        out.dispatch_p99_us() < stall_us / 2,
        "dispatch lag {} µs should not absorb the stall",
        out.dispatch_p99_us()
    );
}

/// The closed-loop driver on the same stalled engine reports a *lower*
/// p99 — the omission the open-loop mode exists to correct. (One client:
/// only the first query observes the stall, and the other 39 samples are
/// fast, so p50 hides it entirely.)
#[test]
fn closed_loop_understates_the_same_stall() {
    const STALL: Duration = Duration::from_millis(100);
    let index = Arc::new(StalledIndex::new(STALL));
    let engine = QueryEngine::new(
        Arc::clone(&index),
        EngineConfig { workers: 1, batch_max: 1, queue_capacity: 256, shed: ShedPolicy::Block },
    );
    let queries: Vec<Vec<Code>> = (0..40).map(|i| vec![(i % 4) as Code]).collect();
    let plan = LoadPlan::closed(queries, 1);
    let out = run_plan(&engine, &plan, None);
    assert_eq!(out.completed, 40);
    let stall_us = STALL.as_micros() as u64;
    assert!(out.p99_us() >= stall_us, "one sample still sees the stall");
    assert!(
        out.p50_us() < stall_us / 10,
        "closed-loop p50 {} µs hides the stall entirely — the omission itself",
        out.p50_us()
    );
}
