//! End-to-end smoke tests: every experiment subcommand runs at a tiny scale
//! and produces the expected table header and rows.

use std::process::Command;

fn run_exp(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_exp")).args(args).output().expect("exp binary runs");
    assert!(
        out.status.success(),
        "exp {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const TINY: &str = "0.001";

#[test]
fn table2_reports_paper_constant() {
    let out = run_exp(&["table2", "--scale", TINY]);
    assert!(out.contains("48.25"), "missing the 48.25 B worst case:\n{out}");
}

#[test]
fn table3_labels_fit_u16() {
    let out = run_exp(&["table3", "--scale", TINY]);
    for name in ["eco-sim", "cel-sim", "hc21-sim", "hc19-sim"] {
        assert!(out.contains(name), "{name} row missing:\n{out}");
    }
    assert!(out.contains("fits-u16"));
}

#[test]
fn table4_and_fig8_structure() {
    let out = run_exp(&["table4", "--scale", TINY]);
    assert!(out.contains("total-%"));
    let out = run_exp(&["fig8", "--scale", TINY]);
    assert!(out.contains("upstream-heavy"));
}

#[test]
fn timing_experiments_run() {
    for cmd in ["fig6", "table5", "table6", "fig7", "table7"] {
        let out = run_exp(&[cmd, "--scale", TINY, "--threshold", "12"]);
        assert!(out.contains("eco-sim"), "{cmd} lost its rows:\n{out}");
    }
}

#[test]
fn protein_space_buffering_run() {
    let out = run_exp(&["protein", "--scale", TINY]);
    assert!(out.contains("dros-sim"));
    let out = run_exp(&["space", "--scale", TINY]);
    assert!(out.contains("SPINE-compact-B/c"));
    let out = run_exp(&["buffering", "--scale", "0.004"]);
    assert!(out.contains("prefix-priority"));
}

#[test]
fn json_mode_emits_objects() {
    let out = run_exp(&["table3", "--scale", TINY, "--json"]);
    let lines: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(lines.len(), 4, "one JSON object per dataset:\n{out}");
    for l in lines {
        assert!(l.contains("\"label\":"), "row {l}");
        assert!(l.ends_with('}'));
    }
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_exp")).arg("nonsense").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn sync_file_device_path_works() {
    let out = run_exp(&["fig7", "--scale", "0.0005", "--sync-file"]);
    assert!(out.contains("SPINE-kIO"), "fig7 with file device:\n{out}");
}
