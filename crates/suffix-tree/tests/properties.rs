//! Property tests: the suffix tree against the brute-force oracle, and the
//! disk-resident variant against the in-memory one.

use pagestore::{Lru, MemDevice};
use proptest::prelude::*;
use strindex::{Alphabet, Code, MatchingIndex, StringIndex};
use suffix_tree::{DiskSuffixTree, SuffixTree};
use suffix_trie::NaiveIndex;

fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec(0u8..4, 0..=max_len)
}

fn binary_codes(max_len: usize) -> impl Strategy<Value = Vec<Code>> {
    prop::collection::vec(0u8..2, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn find_all_matches_oracle(text in binary_codes(60), pat in binary_codes(6)) {
        let a = Alphabet::dna();
        let t = SuffixTree::build(a.clone(), &text).unwrap();
        let n = NaiveIndex::new(a, &text);
        if !pat.is_empty() {
            prop_assert_eq!(t.find_all(&pat), n.find_all(&pat));
            prop_assert_eq!(t.find_first(&pat), n.find_first(&pat));
        }
    }

    #[test]
    fn every_window_is_found(text in dna_codes(50)) {
        let a = Alphabet::dna();
        let t = SuffixTree::build(a.clone(), &text).unwrap();
        let n = NaiveIndex::new(a, &text);
        for start in 0..text.len() {
            let end = (start + 9).min(text.len());
            let w = &text[start..end];
            prop_assert_eq!(t.find_all(w), n.find_all(w), "window {}..{}", start, end);
        }
    }

    #[test]
    fn matching_statistics_match_oracle(text in dna_codes(50), query in dna_codes(35)) {
        let a = Alphabet::dna();
        let t = SuffixTree::build(a.clone(), &text).unwrap();
        let n = NaiveIndex::new(a, &text);
        prop_assert_eq!(t.matching_statistics(&query), n.matching_statistics(&query));
    }

    #[test]
    fn node_count_is_linear(text in dna_codes(80)) {
        // With an explicit terminator, node count ≤ 2(n+1): leaves n+1,
        // internal < n+1, plus root.
        let a = Alphabet::dna();
        let t = SuffixTree::build(a.clone(), &text).unwrap();
        prop_assert!(t.node_count() <= 2 * (text.len() + 1) + 1);
    }

    #[test]
    fn disk_tree_equals_memory_tree(text in binary_codes(60)) {
        let a = Alphabet::dna();
        let mem = SuffixTree::build(a.clone(), &text).unwrap();
        let disk = DiskSuffixTree::build(
            a.clone(),
            &text,
            Box::new(MemDevice::new()),
            2,
            Box::<Lru>::default(),
        )
        .unwrap();
        prop_assert_eq!(mem.node_count(), disk.node_count());
        for len in 1..=4usize {
            for bits in 0..(1u32 << len) {
                let p: Vec<Code> = (0..len).map(|i| ((bits >> i) & 1) as Code).collect();
                prop_assert_eq!(mem.find_all(&p), disk.find_all(&p), "pattern {:?}", p);
            }
        }
    }
}
