//! Exact-match queries over the suffix tree.

use crate::tree::{StNodeId, SuffixTree, ST_ROOT};
use strindex::{Alphabet, Code, StringIndex};

/// A position in the tree: either exactly at `node` (`off == 0`) or `off`
/// characters down the edge into `below`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TreePos {
    pub node: StNodeId,
    pub below: StNodeId,
    pub off: usize,
}

impl TreePos {
    pub(crate) const ROOT: TreePos = TreePos { node: ST_ROOT, below: ST_ROOT, off: 0 };

    /// The root of the subtree containing everything that extends the
    /// matched string.
    pub(crate) fn locus(&self) -> StNodeId {
        if self.off == 0 {
            self.node
        } else {
            self.below
        }
    }
}

impl SuffixTree {
    /// Advance `pos` by one character; `None` on mismatch.
    pub(crate) fn step(&self, pos: TreePos, c: Code) -> Option<TreePos> {
        self.counters.count_node_check();
        if pos.off == 0 {
            let child = self.nodes[pos.node as usize].child(c)?;
            self.counters.count_edge();
            let mut p = TreePos { node: pos.node, below: child, off: 1 };
            if self.edge_len(child) == 1 {
                p = TreePos { node: child, below: child, off: 0 };
            }
            Some(p)
        } else {
            let n = &self.nodes[pos.below as usize];
            if self.text[n.start as usize + pos.off] != c {
                return None;
            }
            self.counters.count_edge();
            let mut p = TreePos { node: pos.node, below: pos.below, off: pos.off + 1 };
            if p.off == self.edge_len(pos.below) {
                p = TreePos { node: pos.below, below: pos.below, off: 0 };
            }
            Some(p)
        }
    }

    /// Walk `pattern` from the root; `None` if it is not a substring.
    pub(crate) fn walk(&self, pattern: &[Code]) -> Option<TreePos> {
        let mut pos = TreePos::ROOT;
        for &c in pattern {
            pos = self.step(pos, c)?;
        }
        Some(pos)
    }

    /// Leaf suffix starts under `node`, unsorted.
    fn leaves_under(&self, node: StNodeId) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes[node as usize].leaf_count as usize);
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            let nd = &self.nodes[n as usize];
            if nd.is_leaf() {
                out.push(nd.suffix_start as usize);
            }
            stack.extend(nd.children.iter().map(|&(_, ch)| ch));
        }
        out
    }
}

impl StringIndex for SuffixTree {
    fn alphabet(&self) -> &Alphabet {
        self.alphabet_ref()
    }

    fn text_len(&self) -> usize {
        self.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.text[pos]
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        assert!(self.is_finished(), "finish() the tree before querying");
        let pos = self.walk(pattern)?;
        Some(self.nodes[pos.locus() as usize].min_start as usize)
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        assert!(self.is_finished(), "finish() the tree before querying");
        if pattern.is_empty() {
            return Vec::new();
        }
        let Some(pos) = self.walk(pattern) else {
            return Vec::new();
        };
        let mut starts = self.leaves_under(pos.locus());
        starts.sort_unstable();
        starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suffix_trie::NaiveIndex;

    fn engines(text: &[u8]) -> (Alphabet, SuffixTree, NaiveIndex) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        (a.clone(), SuffixTree::build(a.clone(), &codes).unwrap(), NaiveIndex::new(a, &codes))
    }

    #[test]
    fn paper_string_queries() {
        let (a, t, _) = engines(b"AACCACAACA");
        let enc = |p: &[u8]| a.encode(p).unwrap();
        assert_eq!(t.find_first(&enc(b"CA")), Some(3));
        assert_eq!(t.find_all(&enc(b"CA")), vec![3, 5, 8]);
        assert_eq!(t.find_all(&enc(b"AC")), vec![1, 4, 7]);
        assert!(!t.contains(&enc(b"ACCAA")));
        assert!(t.contains(&enc(b"ACCA")));
        assert_eq!(t.find_first(&enc(b"G")), None);
    }

    #[test]
    fn agrees_with_naive_exhaustively() {
        let (_, t, n) = engines(b"ACGGTACGTTACGACCGTA");
        // All patterns up to length 3 plus all windows.
        let mut pats: Vec<Vec<Code>> = Vec::new();
        for l in 1..=3usize {
            for mut x in 0..(4usize.pow(l as u32)) {
                let mut p = Vec::new();
                for _ in 0..l {
                    p.push((x % 4) as Code);
                    x /= 4;
                }
                pats.push(p);
            }
        }
        let text = n.text().to_vec();
        for s in 0..text.len() {
            pats.push(text[s..(s + 6).min(text.len())].to_vec());
        }
        for p in pats {
            assert_eq!(t.find_all(&p), n.find_all(&p), "pattern {p:?}");
            assert_eq!(t.find_first(&p), n.find_first(&p), "pattern {p:?}");
        }
    }

    #[test]
    fn overlapping_matches() {
        let (a, t, _) = engines(b"AAAAAA");
        assert_eq!(t.find_all(&a.encode(b"AAA").unwrap()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn full_text_match() {
        let (a, t, _) = engines(b"ACGT");
        assert_eq!(t.find_all(&a.encode(b"ACGT").unwrap()), vec![0]);
    }
}
