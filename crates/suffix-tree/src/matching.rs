//! Matching statistics and maximal matches over the suffix tree.
//!
//! The classical suffix-link algorithm (as used by MUMmer and described in
//! §4.1 of the SPINE paper): on a mismatch, hop the suffix link of the
//! deepest node on the match path and *rescan* the remainder with skip/count.
//! Each hop shortens the match by exactly **one** character — suffixes are
//! processed one at a time — whereas SPINE's links jump over whole sets of
//! suffix lengths. The counters make this difference measurable; the
//! experiment harness turns it into the Table 6 comparison.

use crate::search::TreePos;
use crate::tree::{SuffixTree, ST_ROOT};
use strindex::{Code, FxHashMap, MatchingIndex, MatchingStats, MaximalMatch};

impl SuffixTree {
    /// Skip/count rescan: walk `q` from `node`, assuming the path exists.
    fn rescan(&self, mut node: u32, q: &[Code]) -> TreePos {
        let mut i = 0usize;
        while i < q.len() {
            self.counters.count_node_check();
            let child = self.nodes[node as usize]
                .child(q[i])
                .expect("rescan path must exist for a known substring");
            let el = self.edge_len(child);
            if q.len() - i >= el {
                node = child;
                i += el;
            } else {
                return TreePos { node, below: child, off: q.len() - i };
            }
        }
        TreePos { node, below: node, off: 0 }
    }

    /// Longest match ending at every query position (see
    /// [`strindex::MatchingStats`]), via suffix links.
    pub fn matching_statistics_impl(&self, query: &[Code]) -> MatchingStats {
        assert!(self.is_finished(), "finish() the tree before querying");
        let m = query.len();
        let mut lengths = vec![0u32; m + 1];
        let mut first_end = vec![0u32; m + 1];
        let mut pos = TreePos::ROOT;
        let mut matched = 0usize;
        for (e, &c) in query.iter().enumerate() {
            loop {
                if let Some(p) = self.step(pos, c) {
                    pos = p;
                    matched += 1;
                    break;
                }
                if matched == 0 {
                    break;
                }
                // Shrink by exactly one character: suffix-link hop + rescan.
                self.counters.count_link();
                let off = pos.off;
                if pos.node != ST_ROOT {
                    let v = self.nodes[pos.node as usize].slink;
                    pos = if off > 0 {
                        self.rescan(v, &query[e - off..e])
                    } else {
                        TreePos { node: v, below: v, off: 0 }
                    };
                } else {
                    // At the root: drop the match's first character and
                    // rescan what remains of the partial edge.
                    debug_assert!(off > 0);
                    pos = self.rescan(ST_ROOT, &query[e - off + 1..e]);
                }
                matched -= 1;
            }
            lengths[e + 1] = matched as u32;
            first_end[e + 1] = if matched > 0 {
                self.nodes[pos.locus() as usize].min_start + matched as u32
            } else {
                0
            };
        }
        MatchingStats { lengths, first_end }
    }
}

impl MatchingIndex for SuffixTree {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        self.matching_statistics_impl(query)
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        use strindex::StringIndex;
        let stats = self.matching_statistics_impl(query);
        let reports = stats.right_maximal(min_len);
        // Deduplicate occurrence scans per distinct substring.
        let mut cache: FxHashMap<(usize, usize), Vec<usize>> = FxHashMap::default();
        let mut out = Vec::new();
        for (qs, len, fe) in reports {
            let occs = cache
                .entry((fe, len))
                .or_insert_with(|| self.find_all(&query[qs..qs + len]))
                .clone();
            for ds in occs {
                out.push(MaximalMatch { query_start: qs, data_start: ds, len });
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strindex::Alphabet;
    use suffix_trie::NaiveIndex;

    fn engines(text: &[u8]) -> (Alphabet, SuffixTree, NaiveIndex) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        (a.clone(), SuffixTree::build(a.clone(), &codes).unwrap(), NaiveIndex::new(a, &codes))
    }

    #[test]
    fn statistics_match_naive() {
        let (a, t, n) = engines(b"ACACCGACGATACGAGATTACGAGACGAGA");
        for q in
            [&b"CATAGAGAGACGATTACGAGAAAACGGG"[..], b"ACACCGACGATACGAGATTACGAGACGAGA", b"TTTT", b"A"]
        {
            let q = a.encode(q).unwrap();
            assert_eq!(t.matching_statistics(&q), n.matching_statistics(&q), "query {q:?}");
        }
    }

    #[test]
    fn maximal_matches_match_naive() {
        let (a, t, n) = engines(b"ACACCGACGATACGAGATTACGAGACGAGA");
        let q = a.encode(b"CATAGAGAGACGATTACGAGAAAACGGG").unwrap();
        for threshold in [1usize, 3, 6] {
            assert_eq!(
                t.maximal_matches(&q, threshold),
                n.maximal_matches(&q, threshold),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn empty_query() {
        let (_, t, _) = engines(b"ACGT");
        let ms = t.matching_statistics(&[]);
        assert_eq!(ms.lengths, vec![0]);
    }

    #[test]
    fn disjoint_alphabets() {
        let (a, t, _) = engines(b"AAAA");
        let q = a.encode(b"GGGG").unwrap();
        assert!(t.matching_statistics(&q).lengths.iter().all(|&l| l == 0));
    }

    #[test]
    fn counters_register_link_hops() {
        let (a, t, _) = engines(b"ACGTACGTACGT");
        t.counters().reset();
        let q = a.encode(b"ACGTTTACGA").unwrap();
        t.matching_statistics(&q);
        assert!(t.counters().links_followed() > 0);
        assert!(t.counters().nodes_checked() > 0);
    }
}
