//! Ukkonen's online suffix-tree construction with suffix links.
//!
//! Classic linear-time construction (active point + remainder). A unique
//! terminator (the alphabet's separator code) is appended by
//! [`SuffixTree::finish`], turning the implicit tree explicit so that every
//! suffix ends in a leaf; queries require a finished tree.

use strindex::{Alphabet, Code, Counters, Error, OnlineIndex, Result};

/// Node id inside the tree arena. 0 is the root.
pub type StNodeId = u32;

/// The root node.
pub const ST_ROOT: StNodeId = 0;

/// Sentinel for "leaf edge: grows with the text".
const OPEN_END: u32 = u32::MAX;
/// Sentinel for "not a leaf".
const NOT_LEAF: u32 = u32::MAX;

/// One suffix-tree node. The edge *into* the node is `text[start..end)`.
#[derive(Debug, Clone)]
pub struct StNode {
    /// Edge label start (index into the text).
    pub start: u32,
    /// Edge label end (exclusive); `u32::MAX` (open) while the tree is growing.
    pub end: u32,
    /// Suffix link (internal nodes; root for the rest).
    pub slink: StNodeId,
    /// Children as (first edge character, node), unordered, linear-scanned
    /// (alphabets here are ≤ 21 symbols).
    pub children: Vec<(Code, StNodeId)>,
    /// For leaves: the start position of the suffix this leaf represents;
    /// `u32::MAX` otherwise.
    pub suffix_start: u32,
    /// Smallest suffix start in this node's subtree = start offset of the
    /// first occurrence of the node's path string (filled by `finish`).
    pub min_start: u32,
    /// Number of leaves below (= occurrence count; filled by `finish`).
    pub leaf_count: u32,
}

impl StNode {
    fn new(start: u32, end: u32, suffix_start: u32) -> Self {
        StNode {
            start,
            end,
            slink: ST_ROOT,
            children: Vec::new(),
            suffix_start,
            min_start: u32::MAX,
            leaf_count: 0,
        }
    }

    /// Child whose edge begins with `c`.
    #[inline]
    pub fn child(&self, c: Code) -> Option<StNodeId> {
        self.children.iter().find(|&&(cc, _)| cc == c).map(|&(_, n)| n)
    }

    /// Is this node a leaf?
    pub fn is_leaf(&self) -> bool {
        self.suffix_start != NOT_LEAF
    }
}

/// An online suffix tree over one text.
///
/// ```
/// use suffix_tree::SuffixTree;
/// use strindex::{Alphabet, StringIndex};
///
/// let alphabet = Alphabet::dna();
/// let tree = SuffixTree::build_from_bytes(alphabet.clone(), b"AACCACAACA").unwrap();
/// assert_eq!(tree.find_all(&alphabet.encode(b"CA").unwrap()), vec![3, 5, 8]);
/// ```
pub struct SuffixTree {
    alphabet: Alphabet,
    pub(crate) text: Vec<Code>,
    pub(crate) nodes: Vec<StNode>,
    // Ukkonen state.
    active_node: StNodeId,
    active_edge: usize,
    active_len: usize,
    remainder: usize,
    need_sl: StNodeId,
    finished: bool,
    pub(crate) counters: Counters,
}

impl SuffixTree {
    /// An empty tree over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        SuffixTree {
            alphabet,
            text: Vec::new(),
            nodes: vec![StNode::new(0, 0, NOT_LEAF)],
            active_node: ST_ROOT,
            active_edge: 0,
            active_len: 0,
            remainder: 0,
            need_sl: ST_ROOT,
            finished: false,
            counters: Counters::new(),
        }
    }

    /// Build a finished tree from an encoded text.
    pub fn build(alphabet: Alphabet, text: &[Code]) -> Result<Self> {
        let mut t = SuffixTree::new(alphabet);
        t.extend_from(text)?;
        t.finish();
        Ok(t)
    }

    /// Convenience: encode `text` and build.
    pub fn build_from_bytes(alphabet: Alphabet, text: &[u8]) -> Result<Self> {
        let codes = alphabet.encode(text)?;
        Self::build(alphabet, &codes)
    }

    /// Number of indexed characters (terminator excluded).
    pub fn len(&self) -> usize {
        if self.finished {
            self.text.len() - 1
        } else {
            self.text.len()
        }
    }

    /// Is the indexed text empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tree's alphabet.
    pub fn alphabet_ref(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Total node count (root, internal nodes, leaves). The paper's
    /// observation: may reach ~2n, vs exactly n+1 for SPINE.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Work counters shared with the search/matching paths.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Has [`finish`](Self::finish) been called?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Edge length of `node` given the current text end.
    #[inline]
    pub(crate) fn edge_len(&self, node: StNodeId) -> usize {
        let n = &self.nodes[node as usize];
        let end = if n.end == OPEN_END { self.text.len() as u32 } else { n.end };
        (end - n.start) as usize
    }

    fn add_slink(&mut self, to: StNodeId) {
        if self.need_sl != ST_ROOT {
            self.nodes[self.need_sl as usize].slink = to;
        }
        self.need_sl = to;
    }

    /// One Ukkonen phase: extend the tree with `text[pos]` (already pushed).
    fn extend(&mut self, pos: usize) {
        let c = self.text[pos];
        self.need_sl = ST_ROOT;
        self.remainder += 1;
        while self.remainder > 0 {
            if self.active_len == 0 {
                self.active_edge = pos;
            }
            let edge_c = self.text[self.active_edge];
            match self.nodes[self.active_node as usize].child(edge_c) {
                None => {
                    // Rule 2: new leaf hangs off the active node.
                    let suffix_start = (pos + 1 - self.remainder) as u32;
                    let leaf = self.push_node(StNode::new(pos as u32, OPEN_END, suffix_start));
                    self.nodes[self.active_node as usize].children.push((edge_c, leaf));
                    let an = self.active_node;
                    self.add_slink(an);
                }
                Some(nxt) => {
                    // Observation 2: walk down if the active point passes the
                    // whole edge.
                    let el = self.edge_len(nxt);
                    if self.active_len >= el {
                        self.active_edge += el;
                        self.active_len -= el;
                        self.active_node = nxt;
                        continue;
                    }
                    // Observation 1: next character already present.
                    if self.text[self.nodes[nxt as usize].start as usize + self.active_len] == c {
                        self.active_len += 1;
                        let an = self.active_node;
                        self.add_slink(an);
                        break;
                    }
                    // Rule 2 with split.
                    let split_start = self.nodes[nxt as usize].start;
                    let split = self.push_node(StNode::new(
                        split_start,
                        split_start + self.active_len as u32,
                        NOT_LEAF,
                    ));
                    let suffix_start = (pos + 1 - self.remainder) as u32;
                    let leaf = self.push_node(StNode::new(pos as u32, OPEN_END, suffix_start));
                    // Rewire: active_node -> split -> {nxt, leaf}.
                    let slot = self.nodes[self.active_node as usize]
                        .children
                        .iter_mut()
                        .find(|(cc, _)| *cc == edge_c)
                        .expect("child must exist");
                    slot.1 = split;
                    self.nodes[nxt as usize].start += self.active_len as u32;
                    let nxt_c = self.text[self.nodes[nxt as usize].start as usize];
                    self.nodes[split as usize].children.push((nxt_c, nxt));
                    self.nodes[split as usize].children.push((c, leaf));
                    self.add_slink(split);
                }
            }
            self.remainder -= 1;
            if self.active_node == ST_ROOT && self.active_len > 0 {
                // Rule 1.
                self.active_len -= 1;
                self.active_edge = pos - self.remainder + 1;
            } else if self.active_node != ST_ROOT {
                // Rule 3.
                self.active_node = self.nodes[self.active_node as usize].slink;
            }
        }
    }

    fn push_node(&mut self, n: StNode) -> StNodeId {
        self.nodes.push(n);
        (self.nodes.len() - 1) as StNodeId
    }

    /// Append the terminator, close all leaf edges, and annotate nodes with
    /// first-occurrence starts and leaf counts. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        let sep = self.alphabet.separator();
        self.text.push(sep);
        let pos = self.text.len() - 1;
        self.extend(pos);
        self.finished = true;
        let end = self.text.len() as u32;
        for n in &mut self.nodes {
            if n.end == OPEN_END {
                n.end = end;
            }
        }
        self.annotate();
    }

    /// Iterative post-order DFS filling `min_start` and `leaf_count`.
    fn annotate(&mut self) {
        let mut stack: Vec<(StNodeId, bool)> = vec![(ST_ROOT, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                let (mut mn, mut lc) = (u32::MAX, 0u32);
                if self.nodes[node as usize].is_leaf() {
                    mn = self.nodes[node as usize].suffix_start;
                    lc = 1;
                }
                // Children were annotated first (post-order).
                let children = self.nodes[node as usize].children.clone();
                for (_, ch) in children {
                    mn = mn.min(self.nodes[ch as usize].min_start);
                    lc += self.nodes[ch as usize].leaf_count;
                }
                let n = &mut self.nodes[node as usize];
                n.min_start = mn;
                n.leaf_count = lc;
            } else {
                stack.push((node, true));
                for &(_, ch) in &self.nodes[node as usize].children {
                    stack.push((ch, false));
                }
            }
        }
    }

    /// Heap bytes of this representation (node arena + child vectors +
    /// text).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<StNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(Code, StNodeId)>())
                .sum::<usize>()
            + self.text.capacity()
    }

    /// Bytes per indexed character of the *measured Rust representation*.
    pub fn bytes_per_char(&self) -> f64 {
        self.heap_bytes() as f64 / self.len().max(1) as f64
    }

    /// Bytes per indexed character of a reasonable *packed* suffix-tree
    /// layout: per node, edge start/end (8), suffix link (4), one
    /// first-occurrence annotation (4), plus 5 bytes per child edge and the
    /// text itself (2 bits/char for DNA). This is the figure comparable to
    /// the ≈17 B/char the paper quotes for standard implementations (Kurtz's
    /// engineering gets to 12.5; MUMmer sits higher).
    pub fn layout_bytes_per_char(&self) -> f64 {
        let nodes = self.nodes.len() as f64;
        let edges = (self.nodes.len() - 1) as f64;
        let label_bits = self.alphabet.label_bits() as f64;
        let bytes = nodes * 16.0 + edges * 5.0 + self.text.len() as f64 * label_bits / 8.0;
        bytes / self.len().max(1) as f64
    }
}

impl OnlineIndex for SuffixTree {
    fn push(&mut self, code: Code) -> Result<()> {
        if self.finished {
            return Err(Error::NotFinished); // cannot grow a sealed tree
        }
        if (code as usize) >= self.alphabet.size() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.text.len() });
        }
        self.text.push(code);
        let pos = self.text.len() - 1;
        self.extend(pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The load harness serves this tree from a worker pool behind a
    /// shared reference; the serving contract is thread-safety plus sorted
    /// occurrence lists (its work counters are atomics, so `&self` queries
    /// may race freely).
    #[test]
    fn upholds_the_serving_contract() {
        use strindex::StringIndex;
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SuffixTree>();
        let a = Alphabet::dna();
        let text = a.encode(b"ACACACACGTACAC").unwrap();
        let t = SuffixTree::build(a.clone(), &text).unwrap();
        let hits = t.find_all(&a.encode(b"AC").unwrap());
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "occurrences must be sorted: {hits:?}");
    }

    #[test]
    fn node_count_small_example() {
        // Suffix tree of "aaccacaaca$": counted by the paper (Figure 2,
        // without terminator) as 13 nodes; with an explicit terminator the
        // count grows by the leaves the terminator makes explicit.
        let t = SuffixTree::build_from_bytes(Alphabet::dna(), b"AACCACAACA").unwrap();
        assert!(t.is_finished());
        assert_eq!(t.len(), 10);
        // n+1 leaves (each suffix incl. lone terminator) plus internals.
        let leaves = t.nodes.iter().filter(|n| n.is_leaf()).count();
        assert_eq!(leaves, 11);
    }

    #[test]
    fn all_suffixes_are_reachable() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACGTACGTAC").unwrap();
        let t = SuffixTree::build(a, &text).unwrap();
        // Walk each suffix from the root; it must end at a leaf with the
        // right suffix_start.
        for s in 0..text.len() {
            let mut node = ST_ROOT;
            let mut i = s;
            while i < text.len() {
                let ch = t.nodes[node as usize].child(text[i]).expect("edge exists");
                let (es, ee) =
                    (t.nodes[ch as usize].start as usize, t.nodes[ch as usize].end as usize);
                for k in es..ee.min(es + text.len() - i) {
                    if t.text[k] != text[i] {
                        panic!("suffix {s} mismatched at text pos {i}");
                    }
                    i += 1;
                    if i == text.len() {
                        break;
                    }
                }
                node = ch;
            }
        }
    }

    #[test]
    fn annotation_counts_leaves() {
        let a = Alphabet::dna();
        let t = SuffixTree::build_from_bytes(a, b"AAAA").unwrap();
        // Root subtree holds all 5 leaves (4 suffixes + terminator).
        assert_eq!(t.nodes[ST_ROOT as usize].leaf_count, 5);
        assert_eq!(t.nodes[ST_ROOT as usize].min_start, 0);
    }

    #[test]
    fn push_after_finish_fails() {
        let a = Alphabet::dna();
        let mut t = SuffixTree::new(a);
        t.push(0).unwrap();
        t.finish();
        assert!(t.push(1).is_err());
    }

    #[test]
    fn online_growth_matches_batch() {
        let a = Alphabet::dna();
        let text = a.encode(b"ACGGTACGTTACG").unwrap();
        let batch = SuffixTree::build(a.clone(), &text).unwrap();
        let mut online = SuffixTree::new(a);
        online.extend_from(&text).unwrap();
        online.finish();
        assert_eq!(batch.node_count(), online.node_count());
        assert_eq!(batch.nodes[0].leaf_count, online.nodes[0].leaf_count);
    }

    #[test]
    fn empty_text_tree() {
        let t = SuffixTree::build(Alphabet::dna(), &[]).unwrap();
        assert_eq!(t.len(), 0);
        // Just root + terminator leaf.
        assert_eq!(t.node_count(), 2);
    }
}
