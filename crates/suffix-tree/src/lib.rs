//! Suffix tree baseline for the SPINE reproduction.
//!
//! The paper compares SPINE against "an industrial-strength implementation"
//! of suffix trees taken from MUMmer. This crate plays that role: an online
//! Ukkonen construction with suffix links, exact search, and the same
//! matching-statistics / maximal-match operations SPINE implements, behind
//! the same [`strindex`] traits — so every experiment and equivalence test
//! can swap the two engines freely.
//!
//! Structure:
//! * [`tree`] — node arena, Ukkonen's algorithm, post-construction
//!   annotation (first-occurrence starts, leaf counts), space accounting;
//! * [`search`] — [`StringIndex`](strindex::StringIndex) implementation;
//! * [`matching`] — [`MatchingIndex`](strindex::MatchingIndex)
//!   implementation using suffix links, instrumented with the same counters
//!   as SPINE so the Table 6 "nodes checked" comparison can be reproduced.

pub mod disk;
pub mod matching;
pub mod search;
pub mod tree;

pub use disk::DiskSuffixTree;
pub use tree::SuffixTree;
