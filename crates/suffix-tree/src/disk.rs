//! Page-resident suffix tree (the §6.2 comparison baseline).
//!
//! Same "generic on-disk layout, no disk-specific optimization" treatment as
//! `spine::disk`: one fixed-size record per tree node behind a bounded
//! buffer pool. Ukkonen's active point hops all over the tree — old nodes
//! are revisited and *split* arbitrarily late — so, unlike SPINE (whose
//! writes go to the tail and whose reads concentrate upstream), the suffix
//! tree has no exploitable locality. The Figure 7 / Table 7 experiments
//! quantify exactly this difference via page-I/O counts.
//!
//! The text itself stays in memory: a suffix tree needs the data string for
//! its edge labels (the paper points out SPINE does not).

use crate::tree::ST_ROOT;
use pagestore::{EvictionPolicy, PageDevice, PagedVec};
use parking_lot::Mutex;
use strindex::{
    Alphabet, Code, Counters, Error, MatchingIndex, MatchingStats, MaximalMatch, OnlineIndex,
    Result, StringIndex,
};

const OPEN_END: u32 = u32::MAX;
const NOT_LEAF: u32 = u32::MAX;

/// Record layout: `start:4 | end:4 | slink:4 | suffix_start:4 | min_start:4 |
/// leaf_count:4 | child_count:1 | children: C×(first_char 1, node 4)`.
struct Layout {
    child_slots: usize,
}

impl Layout {
    fn new(alphabet: &Alphabet) -> Self {
        Layout { child_slots: alphabet.code_space() }
    }

    fn record_size(&self) -> usize {
        24 + 1 + self.child_slots * 5
    }

    fn child_off(&self, i: usize) -> usize {
        25 + i * 5
    }
}

fn get_u32(r: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(r[off..off + 4].try_into().unwrap())
}

fn put_u32(r: &mut [u8], off: usize, v: u32) {
    r[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// A suffix tree whose node table lives on a page device.
pub struct DiskSuffixTree {
    alphabet: Alphabet,
    layout: Layout,
    records: Mutex<PagedVec>,
    text: Vec<Code>,
    node_count: usize,
    // Ukkonen state.
    active_node: u32,
    active_edge: usize,
    active_len: usize,
    remainder: usize,
    need_sl: u32,
    finished: bool,
    counters: Counters,
}

impl DiskSuffixTree {
    /// An empty disk tree over `alphabet`.
    pub fn new(
        alphabet: Alphabet,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let layout = Layout::new(&alphabet);
        let mut records = PagedVec::new(device, pool_pages, policy, layout.record_size());
        records.push_zeroed()?; // root
        let mut t = DiskSuffixTree {
            alphabet,
            layout,
            records: Mutex::new(records),
            text: Vec::new(),
            node_count: 1,
            active_node: ST_ROOT,
            active_edge: 0,
            active_len: 0,
            remainder: 0,
            need_sl: ST_ROOT,
            finished: false,
            counters: Counters::new(),
        };
        t.init_node(0, 0, 0, NOT_LEAF)?;
        Ok(t)
    }

    /// Build a finished disk tree from an encoded text.
    pub fn build(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let mut t = Self::new(alphabet, device, pool_pages, policy)?;
        t.extend_from(text)?;
        t.finish()?;
        Ok(t)
    }

    /// Number of indexed characters (terminator excluded).
    pub fn len(&self) -> usize {
        if self.finished {
            self.text.len() - 1
        } else {
            self.text.len()
        }
    }

    /// Is the indexed text empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total tree nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Buffer-pool hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.records.lock().pool().hit_rate()
    }

    /// (reads, writes) page counts at the device.
    pub fn io_counts(&self) -> (u64, u64) {
        let r = self.records.lock();
        (r.io_stats().reads(), r.io_stats().writes())
    }

    /// Work counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    // ----- record access ----------------------------------------------------

    fn init_node(&mut self, id: u32, start: u32, end: u32, suffix_start: u32) -> Result<()> {
        self.records.lock().write(id as usize, |r| {
            put_u32(r, 0, start);
            put_u32(r, 4, end);
            put_u32(r, 8, ST_ROOT);
            put_u32(r, 12, suffix_start);
            put_u32(r, 16, u32::MAX); // min_start
            put_u32(r, 20, 0); // leaf_count
            r[24] = 0;
        })
    }

    fn new_node(&mut self, start: u32, end: u32, suffix_start: u32) -> Result<u32> {
        let id = self.records.lock().push_zeroed()? as u32;
        self.node_count += 1;
        self.init_node(id, start, end, suffix_start)?;
        Ok(id)
    }

    fn node_start(&self, id: u32) -> u32 {
        self.records.lock().read(id as usize, |r| get_u32(r, 0)).expect("read")
    }

    fn set_start(&self, id: u32, v: u32) {
        self.records.lock().write(id as usize, |r| put_u32(r, 0, v)).expect("write");
    }

    fn node_end(&self, id: u32) -> u32 {
        self.records.lock().read(id as usize, |r| get_u32(r, 4)).expect("read")
    }

    fn set_end(&self, id: u32, v: u32) {
        self.records.lock().write(id as usize, |r| put_u32(r, 4, v)).expect("write");
    }

    fn slink(&self, id: u32) -> u32 {
        self.records.lock().read(id as usize, |r| get_u32(r, 8)).expect("read")
    }

    fn set_slink(&self, id: u32, v: u32) {
        self.records.lock().write(id as usize, |r| put_u32(r, 8, v)).expect("write");
    }

    fn suffix_start(&self, id: u32) -> u32 {
        self.records.lock().read(id as usize, |r| get_u32(r, 12)).expect("read")
    }

    fn min_start(&self, id: u32) -> u32 {
        self.records.lock().read(id as usize, |r| get_u32(r, 16)).expect("read")
    }

    fn child(&self, id: u32, c: Code) -> Option<u32> {
        let l = &self.layout;
        self.records
            .lock()
            .read(id as usize, |r| {
                let n = r[24] as usize;
                for i in 0..n {
                    let off = l.child_off(i);
                    if r[off] == c {
                        return Some(get_u32(r, off + 1));
                    }
                }
                None
            })
            .expect("read")
    }

    fn set_child(&self, id: u32, c: Code, node: u32) {
        let l = &self.layout;
        self.records
            .lock()
            .write(id as usize, |r| {
                let n = r[24] as usize;
                for i in 0..n {
                    let off = l.child_off(i);
                    if r[off] == c {
                        put_u32(r, off + 1, node);
                        return;
                    }
                }
                assert!(n < l.child_slots, "child slots exhausted");
                let off = l.child_off(n);
                r[off] = c;
                put_u32(r, off + 1, node);
                r[24] = (n + 1) as u8;
            })
            .expect("write");
    }

    fn children(&self, id: u32) -> Vec<(Code, u32)> {
        let l = &self.layout;
        self.records
            .lock()
            .read(id as usize, |r| {
                let n = r[24] as usize;
                (0..n)
                    .map(|i| {
                        let off = l.child_off(i);
                        (r[off], get_u32(r, off + 1))
                    })
                    .collect()
            })
            .expect("read")
    }

    fn edge_len(&self, id: u32) -> usize {
        let (s, e) = (self.node_start(id), self.node_end(id));
        let e = if e == OPEN_END { self.text.len() as u32 } else { e };
        (e - s) as usize
    }

    // ----- Ukkonen ----------------------------------------------------------

    fn add_slink(&mut self, to: u32) {
        if self.need_sl != ST_ROOT {
            self.set_slink(self.need_sl, to);
        }
        self.need_sl = to;
    }

    fn extend(&mut self, pos: usize) -> Result<()> {
        let c = self.text[pos];
        self.need_sl = ST_ROOT;
        self.remainder += 1;
        while self.remainder > 0 {
            if self.active_len == 0 {
                self.active_edge = pos;
            }
            let edge_c = self.text[self.active_edge];
            match self.child(self.active_node, edge_c) {
                None => {
                    let suffix_start = (pos + 1 - self.remainder) as u32;
                    let leaf = self.new_node(pos as u32, OPEN_END, suffix_start)?;
                    self.set_child(self.active_node, edge_c, leaf);
                    let an = self.active_node;
                    self.add_slink(an);
                }
                Some(nxt) => {
                    let el = self.edge_len(nxt);
                    if self.active_len >= el {
                        self.active_edge += el;
                        self.active_len -= el;
                        self.active_node = nxt;
                        continue;
                    }
                    if self.text[self.node_start(nxt) as usize + self.active_len] == c {
                        self.active_len += 1;
                        let an = self.active_node;
                        self.add_slink(an);
                        break;
                    }
                    let split_start = self.node_start(nxt);
                    let split =
                        self.new_node(split_start, split_start + self.active_len as u32, NOT_LEAF)?;
                    let suffix_start = (pos + 1 - self.remainder) as u32;
                    let leaf = self.new_node(pos as u32, OPEN_END, suffix_start)?;
                    self.set_child(self.active_node, edge_c, split);
                    self.set_start(nxt, split_start + self.active_len as u32);
                    let nxt_c = self.text[self.node_start(nxt) as usize];
                    self.set_child(split, nxt_c, nxt);
                    self.set_child(split, c, leaf);
                    self.add_slink(split);
                }
            }
            self.remainder -= 1;
            if self.active_node == ST_ROOT && self.active_len > 0 {
                self.active_len -= 1;
                self.active_edge = pos - self.remainder + 1;
            } else if self.active_node != ST_ROOT {
                self.active_node = self.slink(self.active_node);
            }
        }
        Ok(())
    }

    /// Seal the tree: append the terminator, close leaf edges, annotate.
    pub fn finish(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        let sep = self.alphabet.separator();
        self.text.push(sep);
        let pos = self.text.len() - 1;
        self.extend(pos)?;
        self.finished = true;
        // Close open leaf edges.
        let end = self.text.len() as u32;
        for id in 0..self.node_count as u32 {
            if self.node_end(id) == OPEN_END {
                self.set_end(id, end);
            }
        }
        // Post-order annotation of min_start / leaf_count.
        let mut stack: Vec<(u32, bool)> = vec![(ST_ROOT, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                let mut mn = u32::MAX;
                let mut lc = 0u32;
                if self.suffix_start(node) != NOT_LEAF {
                    mn = self.suffix_start(node);
                    lc = 1;
                }
                for (_, ch) in self.children(node) {
                    let (cm, cl) = self
                        .records
                        .lock()
                        .read(ch as usize, |r| (get_u32(r, 16), get_u32(r, 20)))
                        .expect("read");
                    mn = mn.min(cm);
                    lc += cl;
                }
                self.records
                    .lock()
                    .write(node as usize, |r| {
                        put_u32(r, 16, mn);
                        put_u32(r, 20, lc);
                    })
                    .expect("write");
            } else {
                stack.push((node, true));
                for (_, ch) in self.children(node) {
                    stack.push((ch, false));
                }
            }
        }
        Ok(())
    }

    // ----- queries ----------------------------------------------------------

    /// Position = (node, below, off): see the in-memory engine.
    fn step(&self, pos: (u32, u32, usize), c: Code) -> Option<(u32, u32, usize)> {
        self.counters.count_node_check();
        let (node, below, off) = pos;
        if off == 0 {
            let child = self.child(node, c)?;
            self.counters.count_edge();
            if self.edge_len(child) == 1 {
                Some((child, child, 0))
            } else {
                Some((node, child, 1))
            }
        } else {
            if self.text[self.node_start(below) as usize + off] != c {
                return None;
            }
            self.counters.count_edge();
            if off + 1 == self.edge_len(below) {
                Some((below, below, 0))
            } else {
                Some((node, below, off + 1))
            }
        }
    }

    fn walk(&self, pattern: &[Code]) -> Option<(u32, u32, usize)> {
        let mut pos = (ST_ROOT, ST_ROOT, 0usize);
        for &c in pattern {
            pos = self.step(pos, c)?;
        }
        Some(pos)
    }

    fn locus(&self, pos: (u32, u32, usize)) -> u32 {
        if pos.2 == 0 {
            pos.0
        } else {
            pos.1
        }
    }

    fn rescan(&self, mut node: u32, q: &[Code]) -> (u32, u32, usize) {
        let mut i = 0usize;
        while i < q.len() {
            self.counters.count_node_check();
            let child = self.child(node, q[i]).expect("rescan path exists");
            let el = self.edge_len(child);
            if q.len() - i >= el {
                node = child;
                i += el;
            } else {
                return (node, child, q.len() - i);
            }
        }
        (node, node, 0)
    }
}

impl OnlineIndex for DiskSuffixTree {
    fn push(&mut self, code: Code) -> Result<()> {
        if self.finished {
            return Err(Error::NotFinished);
        }
        if (code as usize) >= self.alphabet.size() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.text.len() });
        }
        self.text.push(code);
        let pos = self.text.len() - 1;
        self.extend(pos)
    }
}

impl StringIndex for DiskSuffixTree {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.text[pos]
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        assert!(self.finished, "finish() the tree before querying");
        let pos = self.walk(pattern)?;
        Some(self.min_start(self.locus(pos)) as usize)
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        assert!(self.finished, "finish() the tree before querying");
        if pattern.is_empty() {
            return Vec::new();
        }
        let Some(pos) = self.walk(pattern) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![self.locus(pos)];
        while let Some(n) = stack.pop() {
            if self.suffix_start(n) != NOT_LEAF {
                out.push(self.suffix_start(n) as usize);
            }
            stack.extend(self.children(n).into_iter().map(|(_, ch)| ch));
        }
        out.sort_unstable();
        out
    }
}

impl MatchingIndex for DiskSuffixTree {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        assert!(self.finished, "finish() the tree before querying");
        let m = query.len();
        let mut lengths = vec![0u32; m + 1];
        let mut first_end = vec![0u32; m + 1];
        let mut pos = (ST_ROOT, ST_ROOT, 0usize);
        let mut matched = 0usize;
        for (e, &c) in query.iter().enumerate() {
            loop {
                if let Some(p) = self.step(pos, c) {
                    pos = p;
                    matched += 1;
                    break;
                }
                if matched == 0 {
                    break;
                }
                self.counters.count_link();
                let off = pos.2;
                if pos.0 != ST_ROOT {
                    let v = self.slink(pos.0);
                    pos = if off > 0 { self.rescan(v, &query[e - off..e]) } else { (v, v, 0) };
                } else {
                    debug_assert!(off > 0);
                    pos = self.rescan(ST_ROOT, &query[e - off + 1..e]);
                }
                matched -= 1;
            }
            lengths[e + 1] = matched as u32;
            first_end[e + 1] =
                if matched > 0 { self.min_start(self.locus(pos)) + matched as u32 } else { 0 };
        }
        MatchingStats { lengths, first_end }
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        let stats = self.matching_statistics(query);
        let mut out = Vec::new();
        for (qs, len, _) in stats.right_maximal(min_len) {
            for ds in self.find_all(&query[qs..qs + len]) {
                out.push(MaximalMatch { query_start: qs, data_start: ds, len });
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SuffixTree;
    use pagestore::{Lru, MemDevice};

    fn both(text: &[u8], pool: usize) -> (Alphabet, SuffixTree, DiskSuffixTree) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let mem = SuffixTree::build(a.clone(), &codes).unwrap();
        let disk = DiskSuffixTree::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            pool,
            Box::<Lru>::default(),
        )
        .unwrap();
        (a, mem, disk)
    }

    #[test]
    fn same_shape_as_memory_tree() {
        let (_, mem, disk) = both(b"AACCACAACAGGTTACG", 8);
        assert_eq!(mem.node_count(), disk.node_count());
    }

    #[test]
    fn queries_match_memory_tree() {
        let (a, mem, disk) = both(&b"AACCACAACAGGTTACGACGACCA".repeat(4), 2);
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG", b"A"] {
            let p = a.encode(p).unwrap();
            assert_eq!(mem.find_all(&p), disk.find_all(&p), "pattern {p:?}");
            assert_eq!(mem.find_first(&p), disk.find_first(&p));
        }
    }

    #[test]
    fn matching_matches_memory_tree() {
        let (a, mem, disk) = both(b"ACACCGACGATACGAGATTACGAGACGAGA", 2);
        let q = a.encode(b"CATAGAGAGACGATTACGAGAAAACGGG").unwrap();
        assert_eq!(mem.matching_statistics(&q), disk.matching_statistics(&q));
        assert_eq!(mem.maximal_matches(&q, 4), disk.maximal_matches(&q, 4));
    }

    #[test]
    fn construction_does_page_io_under_pressure() {
        let (_, _, disk) = both(&b"ACGTACGGTACGTTTACG".repeat(16), 1);
        let (reads, writes) = disk.io_counts();
        assert!(reads > 0 && writes > 0);
    }
}
