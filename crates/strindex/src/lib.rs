//! Shared kernel for the SPINE reproduction workspace.
//!
//! Every index engine in this workspace (SPINE, the suffix-tree baseline, the
//! naive suffix trie oracle, and the suffix array) speaks the same small
//! vocabulary defined here:
//!
//! * [`Alphabet`] — a runtime description of the symbol set being indexed
//!   (DNA, protein, ASCII, raw bytes), mapping external bytes to dense
//!   internal codes;
//! * [`StringIndex`] / [`MatchingIndex`] / [`OnlineIndex`] — the behavioural
//!   contracts the engines implement, so experiments and cross-engine
//!   equivalence tests can be written once;
//! * [`Match`], [`MaximalMatch`], [`MatchingStats`] — result types for exact
//!   and maximal-substring search;
//! * [`Counters`] — the instrumentation used to reproduce the paper's
//!   Table 6 ("number of nodes checked");
//! * [`telemetry`] — the serving stack's unified observability layer
//!   (metrics registry, log-scale latency histograms, tracing spans);
//! * [`FxHashMap`] — an in-tree FxHash so no external hashing crate is
//!   needed.

pub mod algo;
pub mod alphabet;
pub mod counters;
pub mod error;
pub mod hash;
pub mod packed;
pub mod telemetry;
pub mod traits;

pub use algo::{longest_common_substring, maximal_unique_matches};
pub use alphabet::{Alphabet, AlphabetKind, Code};
pub use counters::{Counters, CountersSnapshot};
pub use error::{Error, IoContext, IoOp, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use packed::{window_match_len, PackedText};
pub use telemetry::{
    Counter, Histogram, HistogramSnapshot, LoadLedger, MetricsRegistry, RegistrySnapshot,
    SpanRecord, Stage,
};
pub use traits::{Match, MatchingIndex, MatchingStats, MaximalMatch, OnlineIndex, StringIndex};
