//! In-tree FxHash.
//!
//! The workspace is restricted to a fixed set of external crates, so the
//! well-known Fx hashing scheme (as used by rustc) is reimplemented here in
//! ~40 lines. It is a non-cryptographic multiply-rotate hash that is very
//! fast for the small integer keys the suffix-tree child maps use.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<(u32, u8), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 7) as u8), i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(500, (500 % 7) as u8)], 1000);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut s = FxHasher::default();
            s.write_u64(x);
            s.finish()
        };
        assert_eq!(h(42), h(42));
        // Adjacent keys should hash far apart.
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(h(i) >> 48); // top bits should still vary
        }
        assert!(seen.len() > 1000, "poor spread: {}", seen.len());
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a byte stream");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a byte stream");
        assert_eq!(a.finish(), b.finish());
    }
}
