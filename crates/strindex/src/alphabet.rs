//! Runtime alphabets.
//!
//! Index engines work over dense symbol codes `0..size` rather than raw
//! bytes: DNA uses 4 codes (2 bits of character-label storage in the compact
//! SPINE layout, exactly as in the paper), proteins use 20 codes (5 bits),
//! and a raw byte alphabet is available for generic text.
//!
//! One extra code, [`Alphabet::separator`], is reserved directly after the
//! ordinary symbols. It never appears in encoded user data and is used by the
//! generalized (multi-string) indexes as a document terminator, mirroring the
//! terminator trick of Generalized Suffix Trees that the paper points to for
//! multi-string SPINE indexes.

use crate::error::{Error, Result};

/// A dense symbol code. `0..alphabet.size()` are ordinary symbols;
/// `alphabet.separator()` is the reserved document separator.
pub type Code = u8;

const INVALID: u8 = 0xFF;

/// Which built-in alphabet an [`Alphabet`] value describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlphabetKind {
    /// `A C G T` (case-insensitive on input). 4 symbols, 2-bit labels.
    Dna,
    /// The 20 standard amino-acid letters (case-insensitive). 5-bit labels.
    Protein,
    /// Printable ASCII plus whitespace (codes 9, 10, 13, 32..=126).
    Ascii,
    /// All 256 byte values.
    Bytes,
}

/// A runtime alphabet: a bijection between a subset of byte values and the
/// dense code range `0..size`.
///
/// Engines store the alphabet by value; it is 520 bytes and copied rarely
/// (once per index).
#[derive(Clone)]
pub struct Alphabet {
    kind: AlphabetKind,
    size: u16,
    to_code: [u8; 256],
    from_code: [u8; 256],
}

impl std::fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Alphabet").field("kind", &self.kind).field("size", &self.size).finish()
    }
}

impl PartialEq for Alphabet {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}
impl Eq for Alphabet {}

impl Alphabet {
    fn from_symbols(kind: AlphabetKind, symbols: &[u8]) -> Self {
        assert!(!symbols.is_empty() && symbols.len() <= 254);
        let mut to_code = [INVALID; 256];
        let mut from_code = [0u8; 256];
        for (code, &byte) in symbols.iter().enumerate() {
            assert_eq!(to_code[byte as usize], INVALID, "duplicate symbol");
            to_code[byte as usize] = code as u8;
            from_code[code] = byte;
        }
        Alphabet { kind, size: symbols.len() as u16, to_code, from_code }
    }

    /// The DNA alphabet `ACGT`. Lower-case input letters are accepted and
    /// normalised to upper case.
    pub fn dna() -> Self {
        let mut a = Self::from_symbols(AlphabetKind::Dna, b"ACGT");
        for (lo, up) in b"acgt".iter().zip(b"ACGT") {
            a.to_code[*lo as usize] = a.to_code[*up as usize];
        }
        a
    }

    /// The 20-letter amino-acid alphabet (`ACDEFGHIKLMNPQRSTVWY`),
    /// case-insensitive on input.
    pub fn protein() -> Self {
        let letters = b"ACDEFGHIKLMNPQRSTVWY";
        let mut a = Self::from_symbols(AlphabetKind::Protein, letters);
        for &up in letters {
            a.to_code[(up as char).to_ascii_lowercase() as usize] = a.to_code[up as usize];
        }
        a
    }

    /// Printable ASCII plus tab/newline/carriage-return/space.
    pub fn ascii() -> Self {
        let mut symbols = vec![9u8, 10, 13];
        symbols.extend(32u8..=126);
        Self::from_symbols(AlphabetKind::Ascii, &symbols)
    }

    /// All byte values 0..=253 plus 254 and 255 remapped is not possible with
    /// a reserved separator, so the byte alphabet covers codes 0..=253 and
    /// rejects bytes 254 and 255 (rare in text workloads; the FASTA and
    /// generator substrates never produce them).
    pub fn bytes() -> Self {
        let symbols: Vec<u8> = (0u8..=253).collect();
        Self::from_symbols(AlphabetKind::Bytes, &symbols)
    }

    /// Which built-in alphabet this is.
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// Number of ordinary symbols (excluding the separator).
    pub fn size(&self) -> usize {
        self.size as usize
    }

    /// Total number of codes an engine must be able to label edges with:
    /// `size() + 1` (the separator).
    pub fn code_space(&self) -> usize {
        self.size as usize + 1
    }

    /// The reserved separator code (== `size()`).
    pub fn separator(&self) -> Code {
        self.size as Code
    }

    /// Bits needed to store one character label (2 for DNA, 5 for protein —
    /// the figures quoted in §5 of the paper). Includes the separator code.
    pub fn label_bits(&self) -> u32 {
        usize::BITS - (self.code_space() - 1).leading_zeros()
    }

    /// Bits per symbol for *word-packed* comparison, or `None` for
    /// alphabets where packing buys nothing over byte-at-a-time scanning.
    ///
    /// Unlike [`label_bits`](Self::label_bits) this need only cover the
    /// ordinary symbols `0..size` — 2 bits for DNA, 5 for protein, the
    /// densities quoted by the packed-trie literature. The separator code
    /// happens to fit the protein packing (20 < 32) but not the DNA one
    /// (4 > 3); packing callers handle both by storing codes verbatim and
    /// self-disabling (scalar fallback) on any code `try_push` rejects —
    /// see `strindex::packed`.
    pub fn pack_bits(&self) -> Option<u32> {
        match self.kind {
            AlphabetKind::Dna => Some(2),
            AlphabetKind::Protein => Some(5),
            AlphabetKind::Ascii | AlphabetKind::Bytes => None,
        }
    }

    /// Encode one byte, or `None` if it is not in the alphabet.
    #[inline]
    pub fn encode_byte(&self, byte: u8) -> Option<Code> {
        let c = self.to_code[byte as usize];
        (c != INVALID).then_some(c)
    }

    /// Decode one code back to its canonical byte. The separator decodes to
    /// `b'#'` for display purposes.
    #[inline]
    pub fn decode(&self, code: Code) -> u8 {
        if code == self.separator() {
            b'#'
        } else {
            debug_assert!((code as usize) < self.size());
            self.from_code[code as usize]
        }
    }

    /// Encode a byte string to a code vector, failing on the first byte that
    /// is not in the alphabet.
    pub fn encode(&self, text: &[u8]) -> Result<Vec<Code>> {
        let mut out = Vec::with_capacity(text.len());
        for (pos, &b) in text.iter().enumerate() {
            match self.encode_byte(b) {
                Some(c) => out.push(c),
                None => return Err(Error::InvalidSymbol { byte: b, pos }),
            }
        }
        Ok(out)
    }

    /// Decode a code slice back to bytes.
    pub fn decode_all(&self, codes: &[Code]) -> Vec<u8> {
        codes.iter().map(|&c| self.decode(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_round_trip() {
        let a = Alphabet::dna();
        assert_eq!(a.size(), 4);
        assert_eq!(a.label_bits(), 3); // 5 codes incl. separator need 3 bits
        let codes = a.encode(b"ACGTacgt").unwrap();
        assert_eq!(codes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(a.decode_all(&codes[..4]), b"ACGT");
    }

    #[test]
    fn dna_rejects_unknown() {
        let a = Alphabet::dna();
        let err = a.encode(b"ACGN").unwrap_err();
        match err {
            Error::InvalidSymbol { byte: b'N', pos: 3 } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn protein_has_20_symbols() {
        let a = Alphabet::protein();
        assert_eq!(a.size(), 20);
        assert_eq!(a.separator(), 20);
        assert_eq!(a.label_bits(), 5);
        let codes = a.encode(b"MKV").unwrap();
        assert_eq!(a.decode_all(&codes), b"MKV");
    }

    #[test]
    fn ascii_covers_text() {
        let a = Alphabet::ascii();
        let text = b"Hello, world!\n";
        let codes = a.encode(text).unwrap();
        assert_eq!(a.decode_all(&codes), text);
    }

    #[test]
    fn bytes_alphabet_covers_low_bytes() {
        let a = Alphabet::bytes();
        assert_eq!(a.size(), 254);
        assert!(a.encode_byte(0).is_some());
        assert!(a.encode_byte(253).is_some());
        assert!(a.encode_byte(254).is_none());
        assert!(a.encode_byte(255).is_none());
    }

    #[test]
    fn pack_bits_covers_every_ordinary_symbol() {
        for a in [Alphabet::dna(), Alphabet::protein()] {
            let bits = a.pack_bits().unwrap();
            assert!(a.size() - 1 < (1 << bits), "all ordinary codes must fit");
            assert!(bits <= a.label_bits());
        }
        assert_eq!(Alphabet::dna().pack_bits(), Some(2));
        // The DNA separator (code 4) does not fit 2 bits — generalized DNA
        // indexes self-disable packing. The protein separator (20) fits 5.
        assert!(Alphabet::dna().separator() as u64 > 0b11);
        assert!((Alphabet::protein().separator() as u64) < 32);
        assert_eq!(Alphabet::protein().pack_bits(), Some(5));
        assert_eq!(Alphabet::ascii().pack_bits(), None);
        assert_eq!(Alphabet::bytes().pack_bits(), None);
    }

    #[test]
    fn separator_is_not_encodable() {
        for a in [Alphabet::dna(), Alphabet::protein(), Alphabet::ascii()] {
            let sep = a.separator();
            // No input byte maps to the separator code.
            for b in 0..=255u8 {
                assert_ne!(a.encode_byte(b), Some(sep));
            }
        }
    }
}
