//! Workspace-wide error type, with a transient/permanent I/O taxonomy.
//!
//! Storage failures carry an [`IoContext`] (which operation, which page) so
//! a fault injected deep inside a buffer pool is diagnosable from the error
//! message alone, and they classify as *transient* (worth retrying: an
//! interrupted syscall, a timeout) or *permanent* (retrying cannot help: a
//! missing file, corrupt metadata). The retry layer in `pagestore` keys off
//! [`Error::is_transient`].

/// The I/O operation a storage error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
    /// A dirty-page flush (write-back of cached state).
    Flush,
    /// An explicit durability sync (fsync).
    Sync,
    /// Sidecar metadata I/O (open, serialize, reopen).
    Meta,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Flush => "flush",
            IoOp::Sync => "sync",
            IoOp::Meta => "meta",
        })
    }
}

/// Where an I/O failure happened: the operation and (when page-granular)
/// the page id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoContext {
    /// The failing operation.
    pub op: IoOp,
    /// The page being operated on, if the failure is page-granular.
    pub page: Option<u32>,
}

impl std::fmt::Display for IoContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.page {
            Some(p) => write!(f, "{} of page {p}", self.op),
            None => write!(f, "{}", self.op),
        }
    }
}

/// Errors shared by the index engines and substrates.
#[derive(Debug)]
pub enum Error {
    /// A byte in the input is not part of the index's alphabet.
    InvalidSymbol {
        /// The offending byte.
        byte: u8,
        /// Its position in the input.
        pos: usize,
    },
    /// The input is longer than the engine's node-id space (u32).
    TooLong {
        /// Requested length.
        len: usize,
        /// Maximum supported length.
        max: usize,
    },
    /// The operation needs a finished (terminated) index.
    NotFinished,
    /// The two sides of an operation use different alphabets.
    AlphabetMismatch,
    /// A malformed input file (e.g. FASTA).
    Parse(String),
    /// A persisted index uses an on-disk format version this build does not
    /// read. The data is intact but must be rebuilt (re-indexed) into the
    /// current format — distinct from [`Error::Parse`], which means the
    /// bytes themselves are garbage.
    FormatVersion {
        /// Version stamped in the file.
        found: u16,
        /// Version this engine reads and writes.
        expected: u16,
    },
    /// The operation is not supported in the engine's current state (e.g.
    /// appending to a sealed read-only index).
    Unsupported(&'static str),
    /// A document id that names no document in the collection — never
    /// assigned, or assigned by a different collection. Distinct from
    /// retiring an *already retired* document, which is an idempotent no-op.
    UnknownDocument {
        /// The offending document id.
        doc: u64,
    },
    /// An underlying I/O failure, with operation context when known.
    Io {
        /// The operating-system (or injected) failure.
        source: std::io::Error,
        /// The operation and page it occurred in, when known.
        ctx: Option<IoContext>,
    },
}

impl Error {
    /// An I/O error with full operation context attached up front.
    pub fn io(source: std::io::Error, op: IoOp, page: Option<u32>) -> Self {
        Error::Io { source, ctx: Some(IoContext { op, page }) }
    }

    /// A *transient* injected/synthetic I/O error (`ErrorKind::Interrupted`),
    /// i.e. one the retry layer will re-attempt.
    pub fn transient_io(msg: impl Into<String>) -> Self {
        Error::Io {
            source: std::io::Error::new(std::io::ErrorKind::Interrupted, msg.into()),
            ctx: None,
        }
    }

    /// Attach `op`/`page` context to an I/O error that lacks it. Errors that
    /// already carry context, and non-I/O errors, pass through unchanged —
    /// so the innermost (most precise) annotation wins.
    pub fn with_io_context(self, op: IoOp, page: u32) -> Self {
        match self {
            Error::Io { source, ctx: None } => {
                Error::Io { source, ctx: Some(IoContext { op, page: Some(page) }) }
            }
            other => other,
        }
    }

    /// The taxonomy split: is retrying this error worthwhile?
    ///
    /// Transient failures are the I/O kinds that name a momentary condition
    /// — an interrupted syscall, a timeout, a would-block. Everything else
    /// (including every non-I/O error) is permanent: retrying replays the
    /// same failure.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Io { source, .. } => matches!(
                source.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// The I/O context, if this is an I/O error that carries one.
    pub fn io_context(&self) -> Option<IoContext> {
        match self {
            Error::Io { ctx, .. } => *ctx,
            _ => None,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidSymbol { byte, pos } => {
                write!(f, "byte {byte:#04x} at position {pos} is not in the alphabet")
            }
            Error::TooLong { len, max } => {
                write!(f, "input of length {len} exceeds the maximum supported length {max}")
            }
            Error::NotFinished => write!(f, "index is not finished; call finish() first"),
            Error::AlphabetMismatch => write!(f, "operands use different alphabets"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::FormatVersion { found, expected } => write!(
                f,
                "on-disk format version {found} is not readable by this build \
                 (expects version {expected}); rebuild required"
            ),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::UnknownDocument { doc } => {
                write!(f, "document id {doc} names no document in this collection")
            }
            Error::Io { source, ctx: Some(ctx) } => {
                let class = if self.is_transient() { "transient" } else { "permanent" };
                write!(f, "{class} I/O error during {ctx}: {source}")
            }
            Error::Io { source, ctx: None } => {
                let class = if self.is_transient() { "transient" } else { "permanent" };
                write!(f, "{class} I/O error: {source}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io { source: e, ctx: None }
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidSymbol { byte: b'N', pos: 7 };
        assert!(e.to_string().contains("position 7"));
        let e = Error::TooLong { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn format_version_says_rebuild_required() {
        let e = Error::FormatVersion { found: 1, expected: 2 };
        let msg = e.to_string();
        assert!(msg.contains("version 1"), "{msg}");
        assert!(msg.contains("version 2"), "{msg}");
        assert!(msg.contains("rebuild required"), "{msg}");
    }

    #[test]
    fn unknown_document_names_the_id() {
        let e = Error::UnknownDocument { doc: 17 };
        assert!(e.to_string().contains("17"), "{e}");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io { .. }));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_context_appears_in_message() {
        let e = Error::io(std::io::Error::other("disk gone"), IoOp::Write, Some(42));
        let msg = e.to_string();
        assert!(msg.contains("write of page 42"), "{msg}");
        assert!(msg.contains("permanent"), "{msg}");
        assert!(msg.contains("disk gone"), "{msg}");
    }

    #[test]
    fn with_io_context_fills_only_missing() {
        let e: Error = std::io::Error::other("x").into();
        let e = e.with_io_context(IoOp::Read, 3);
        assert_eq!(e.io_context(), Some(IoContext { op: IoOp::Read, page: Some(3) }));
        // Innermost annotation wins: re-annotating does not overwrite.
        let e = e.with_io_context(IoOp::Flush, 9);
        assert_eq!(e.io_context().unwrap().op, IoOp::Read);
        // Non-I/O errors pass through untouched.
        assert!(Error::NotFinished.with_io_context(IoOp::Read, 0).io_context().is_none());
    }

    #[test]
    fn taxonomy_splits_transient_from_permanent() {
        assert!(Error::transient_io("flaky").is_transient());
        let timeout: Error = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow disk").into();
        assert!(timeout.is_transient());
        let hard: Error = std::io::Error::other("injected device fault").into();
        assert!(!hard.is_transient());
        assert!(!Error::NotFinished.is_transient());
        assert!(!Error::Parse("junk".into()).is_transient());
        assert!(!Error::FormatVersion { found: 1, expected: 2 }.is_transient());
        assert!(!Error::Unsupported("x").is_transient());
        assert!(!Error::UnknownDocument { doc: 9 }.is_transient());
        // Transience survives context attachment.
        assert!(Error::transient_io("flaky").with_io_context(IoOp::Write, 1).is_transient());
    }
}
