//! Workspace-wide error type.

/// Errors shared by the index engines and substrates.
#[derive(Debug)]
pub enum Error {
    /// A byte in the input is not part of the index's alphabet.
    InvalidSymbol {
        /// The offending byte.
        byte: u8,
        /// Its position in the input.
        pos: usize,
    },
    /// The input is longer than the engine's node-id space (u32).
    TooLong {
        /// Requested length.
        len: usize,
        /// Maximum supported length.
        max: usize,
    },
    /// The operation needs a finished (terminated) index.
    NotFinished,
    /// The two sides of an operation use different alphabets.
    AlphabetMismatch,
    /// A malformed input file (e.g. FASTA).
    Parse(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidSymbol { byte, pos } => {
                write!(f, "byte {byte:#04x} at position {pos} is not in the alphabet")
            }
            Error::TooLong { len, max } => {
                write!(f, "input of length {len} exceeds the maximum supported length {max}")
            }
            Error::NotFinished => write!(f, "index is not finished; call finish() first"),
            Error::AlphabetMismatch => write!(f, "operands use different alphabets"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidSymbol { byte: b'N', pos: 7 };
        assert!(e.to_string().contains("position 7"));
        let e = Error::TooLong { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
