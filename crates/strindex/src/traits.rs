//! Behavioural contracts implemented by every index engine in the workspace.
//!
//! The experiments (and the cross-engine equivalence tests) are written
//! against these traits, so SPINE, the suffix tree, the suffix array, and the
//! naive trie oracle are interchangeable.

use crate::alphabet::{Alphabet, Code};
use crate::error::Result;

/// One exact occurrence of a pattern in the indexed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Start offset of the occurrence in the indexed text (0-based).
    pub start: usize,
    /// Pattern length.
    pub len: usize,
}

/// One maximal matching substring between a query string and the indexed
/// text (the paper's Section 4 "complex matching operation", used for the
/// Table 5/6/7 experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MaximalMatch {
    /// Start offset in the query (0-based).
    pub query_start: usize,
    /// Start offset of this occurrence in the indexed text (0-based).
    pub data_start: usize,
    /// Match length (≥ the caller's threshold).
    pub len: usize,
}

/// Matching statistics of a query against the indexed text.
///
/// For each query position `e` (0-based, exclusive end), `lengths[e]` is the
/// length of the longest suffix of `query[..e]` that occurs in the text, and
/// `first_end[e]` is the (0-based, exclusive) end offset of the *first*
/// occurrence of that suffix in the text (0 when `lengths[e] == 0`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MatchingStats {
    /// `lengths[e]`: longest match ending at query offset `e` (entry 0 is
    /// always 0, for the empty prefix).
    pub lengths: Vec<u32>,
    /// `first_end[e]`: end offset of the first text occurrence of that match.
    pub first_end: Vec<u32>,
}

impl MatchingStats {
    /// Enumerate right-maximal matches of length ≥ `min_len`.
    ///
    /// A match ending at query offset `e` is *right-maximal* when it cannot
    /// be extended by the next query character (`lengths[e+1] < lengths[e]+1`)
    /// or the query ends at `e`. This is exactly the point at which the
    /// paper's search procedure "reports the length matched till now".
    ///
    /// Returns `(query_start, len, first_text_end)` triples in query order.
    pub fn right_maximal(&self, min_len: usize) -> Vec<(usize, usize, usize)> {
        let m = self.lengths.len();
        let mut out = Vec::new();
        for e in 1..m {
            let len = self.lengths[e] as usize;
            if len < min_len.max(1) {
                continue;
            }
            let extends = e + 1 < m && self.lengths[e + 1] as usize == len + 1;
            if !extends {
                out.push((e - len, len, self.first_end[e] as usize));
            }
        }
        out
    }
}

/// Read-only exact-match queries over one indexed text.
pub trait StringIndex {
    /// The alphabet the text was encoded with.
    fn alphabet(&self) -> &Alphabet;

    /// Length of the indexed text, in symbols.
    fn text_len(&self) -> usize;

    /// The symbol at text position `pos` (0-based). Engines that do not
    /// retain the text (SPINE recovers it from vertebra labels) still answer
    /// this in O(1).
    fn symbol_at(&self, pos: usize) -> Code;

    /// Does `pattern` (already encoded) occur in the text?
    fn contains(&self, pattern: &[Code]) -> bool {
        self.find_first(pattern).is_some()
    }

    /// Start offset of the first (leftmost) occurrence of `pattern`.
    fn find_first(&self, pattern: &[Code]) -> Option<usize>;

    /// All occurrence start offsets of `pattern`, sorted ascending.
    fn find_all(&self, pattern: &[Code]) -> Vec<usize>;
}

/// Cross-string matching operations (the paper's alignment workload).
pub trait MatchingIndex: StringIndex {
    /// Compute matching statistics of `query` against the indexed text.
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats;

    /// All maximal matching substrings between `query` and the text with
    /// length ≥ `min_len`, *including repetitions* (every text occurrence of
    /// each right-maximal match), as in the paper's Section 4 operation.
    ///
    /// The default implementation combines [`matching_statistics`] with
    /// [`StringIndex::find_all`]-style occurrence expansion; engines override
    /// it with their native batched scans.
    ///
    /// [`matching_statistics`]: MatchingIndex::matching_statistics
    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch>;
}

/// Engines that support the paper's *online* construction: the index for a
/// prefix of the input is always a valid index.
pub trait OnlineIndex {
    /// Append one symbol to the indexed text.
    fn push(&mut self, code: Code) -> Result<()>;

    /// Append many symbols.
    fn extend_from(&mut self, codes: &[Code]) -> Result<()> {
        for &c in codes {
            self.push(c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn right_maximal_reports_mismatch_points() {
        // query len 6; matches: lengths grow 1,2,3 then reset to 1,2,3.
        let ms = MatchingStats {
            lengths: vec![0, 1, 2, 3, 1, 2, 3],
            first_end: vec![0, 5, 6, 7, 2, 3, 4],
        };
        let reps = ms.right_maximal(2);
        // Match of length 3 ends at e=3 (start 0), and length 3 at e=6 (start 3).
        assert_eq!(reps, vec![(0, 3, 7), (3, 3, 4)]);
        // With a higher threshold nothing shorter is reported.
        assert_eq!(ms.right_maximal(4), vec![]);
    }

    #[test]
    fn right_maximal_ignores_zero_lengths() {
        let ms = MatchingStats { lengths: vec![0, 0, 0], first_end: vec![0, 0, 0] };
        assert!(ms.right_maximal(0).is_empty());
    }

    #[test]
    fn match_ordering_is_by_position() {
        let a = Match { start: 1, len: 5 };
        let b = Match { start: 2, len: 1 };
        assert!(a < b);
    }
}
