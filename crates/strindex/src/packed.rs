//! Word-packed symbol sequences for word-at-a-time comparison.
//!
//! Small alphabets waste most of a byte per symbol: DNA needs 2 bits,
//! proteins 5. Packing codes into `u64` words lets the backbone scan of the
//! SPINE engines compare runs of labels one word at a time instead of one
//! character at a time — the technique of Takagi et al.'s packed compact
//! tries and Kolpakov–Kucherov's word-level string matching.
//!
//! Layout: `per_word = 64 / bits` symbols per word, symbol `i` at bit
//! `(i % per_word) * bits` of word `i / per_word`, little-endian within the
//! word. Any bits above `per_word * bits` (protein packs 12×5 = 60 bits)
//! are always zero. Symbols never straddle a word boundary, so a window of
//! up to `per_word` symbols starting at *any* offset can be assembled from
//! two words with two shifts — see [`PackedText::window`].
//!
//! The byte and ASCII alphabets gain nothing from packing and use the
//! scalar comparison path ([`crate::Alphabet::pack_bits`] returns `None`).

use crate::alphabet::Code;

/// Mask covering the low `bits` bits (`bits <= 64`).
#[inline]
fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Length of the common prefix of two windows holding up to `n` symbols of
/// `bits` bits each (`n * bits <= 64`). Bits above `n * bits` are ignored.
#[inline]
pub fn window_match_len(a: u64, b: u64, bits: u32, n: u32) -> u32 {
    debug_assert!(n * bits <= 64);
    let diff = (a ^ b) & low_mask(n * bits);
    if diff == 0 {
        n
    } else {
        diff.trailing_zeros() / bits
    }
}

/// A sequence of symbol codes packed `64 / bits` to the machine word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedText {
    bits: u32,
    per_word: u32,
    len: usize,
    words: Vec<u64>,
}

impl PackedText {
    /// An empty packed sequence storing `bits` bits per symbol
    /// (`1 <= bits <= 8`).
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "pack bits out of range: {bits}");
        PackedText { bits, per_word: 64 / bits, len: 0, words: Vec::new() }
    }

    /// Pack `codes` at `bits` bits per symbol, or `None` if any code does
    /// not fit (e.g. a document separator in a 2-bit DNA packing) — the
    /// caller then falls back to the scalar path.
    pub fn from_codes(bits: u32, codes: &[Code]) -> Option<Self> {
        let mut p = PackedText::new(bits);
        p.words.reserve(codes.len() / p.per_word as usize + 1);
        for &c in codes {
            if !p.try_push(c) {
                return None;
            }
        }
        Some(p)
    }

    /// Bits per symbol.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Symbols per 64-bit word.
    pub fn per_word(&self) -> u32 {
        self.per_word
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the sequence empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (dead bits above `per_word * bits` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Append one symbol; `false` (sequence unchanged) if `c` needs more
    /// than `bits` bits.
    #[inline]
    pub fn try_push(&mut self, c: Code) -> bool {
        if (c as u64) > low_mask(self.bits) {
            return false;
        }
        let phase = (self.len as u64 % self.per_word as u64) as u32;
        if phase == 0 {
            self.words.push(c as u64);
        } else {
            *self.words.last_mut().unwrap() |= (c as u64) << (phase * self.bits);
        }
        self.len += 1;
        true
    }

    /// Symbol `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Code {
        debug_assert!(i < self.len);
        let w = self.words[i / self.per_word as usize];
        ((w >> ((i % self.per_word as usize) as u32 * self.bits)) & low_mask(self.bits)) as Code
    }

    /// Up to `per_word` symbols starting at `i`, packed into the low bits
    /// of one word (two shifts; symbols past `len` read as zero).
    #[inline]
    pub fn window(&self, i: usize) -> u64 {
        let pw = self.per_word as usize;
        let w = i / pw;
        let phase = (i % pw) as u32;
        let lo = self.words.get(w).copied().unwrap_or(0) >> (phase * self.bits);
        let win = if phase == 0 {
            lo
        } else {
            // `(pw - phase) * bits <= (pw - 1) * bits < 64`, so no shift UB.
            let hi = self.words.get(w + 1).copied().unwrap_or(0);
            lo | (hi << ((self.per_word - phase) * self.bits))
        };
        win & low_mask(self.per_word * self.bits)
    }

    /// Length of the longest common prefix of `self[i..]` and `other[j..]`,
    /// capped at `max`, compared one word-window at a time.
    pub fn lcp(&self, i: usize, other: &PackedText, j: usize, max: usize) -> usize {
        debug_assert_eq!(self.bits, other.bits, "lcp needs matching packings");
        let max = max.min(self.len.saturating_sub(i)).min(other.len.saturating_sub(j));
        let pw = self.per_word as usize;
        let mut k = 0usize;
        while k < max {
            let n = (max - k).min(pw) as u32;
            let m = window_match_len(self.window(i + k), other.window(j + k), self.bits, n);
            k += m as usize;
            if m < n {
                break;
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_lcp(a: &[Code], i: usize, b: &[Code], j: usize, max: usize) -> usize {
        let max = max.min(a.len() - i).min(b.len() - j);
        (0..max).take_while(|&k| a[i + k] == b[j + k]).count()
    }

    #[test]
    fn push_get_round_trip_all_bit_widths() {
        for bits in 1..=8u32 {
            let n = 3 * (64 / bits) as usize + 5;
            let codes: Vec<Code> =
                (0..n).map(|i| (i as u64 % (low_mask(bits) + 1)) as Code).collect();
            let p = PackedText::from_codes(bits, &codes).unwrap();
            assert_eq!(p.len(), n);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(p.get(i), c, "bits {bits}, index {i}");
            }
        }
    }

    #[test]
    fn push_rejects_oversized_code() {
        let mut p = PackedText::new(2);
        assert!(p.try_push(3));
        assert!(!p.try_push(4)); // separator-sized code does not fit 2 bits
        assert_eq!(p.len(), 1);
        assert!(PackedText::from_codes(2, &[0, 1, 4]).is_none());
    }

    #[test]
    fn window_covers_every_phase() {
        // 5-bit packing has dead bits (12 × 5 = 60): the straddling windows
        // must still read contiguous symbols.
        for bits in [2u32, 3, 5] {
            let pw = (64 / bits) as usize;
            let codes: Vec<Code> =
                (0..3 * pw).map(|i| (i as u64 % (low_mask(bits) + 1)) as Code).collect();
            let p = PackedText::from_codes(bits, &codes).unwrap();
            for start in 0..2 * pw {
                let win = p.window(start);
                for k in 0..pw.min(codes.len() - start) {
                    let got = ((win >> (k as u32 * bits)) & low_mask(bits)) as Code;
                    assert_eq!(got, codes[start + k], "bits {bits}, start {start}, k {k}");
                }
            }
        }
    }

    #[test]
    fn lcp_exhaustive_at_every_word_boundary_offset() {
        // Every (text offset, pattern length) pair around word boundaries,
        // pattern lengths 0..=2·word_len — the alignment cases where the
        // two-shift window assembly could go wrong.
        for bits in [2u32, 5] {
            let pw = (64 / bits) as usize;
            let text: Vec<Code> = (0..3 * pw + 7)
                .map(|i| ((i * 7 + i / 3) as u64 % (low_mask(bits) + 1)) as Code)
                .collect();
            let pt = PackedText::from_codes(bits, &text).unwrap();
            for start in 0..text.len() {
                for plen in 0..=(2 * pw).min(text.len() - start) {
                    let mut pattern = text[start..start + plen].to_vec();
                    // Exact match at every offset…
                    let pp = PackedText::from_codes(bits, &pattern).unwrap();
                    assert_eq!(
                        pt.lcp(start, &pp, 0, plen),
                        plen,
                        "bits {bits} start {start} len {plen}"
                    );
                    // …and a mismatch planted at the last symbol.
                    if plen > 0 {
                        let last = pattern.len() - 1;
                        pattern[last] = (pattern[last] + 1) & low_mask(bits) as Code;
                        let pp = PackedText::from_codes(bits, &pattern).unwrap();
                        assert_eq!(
                            pt.lcp(start, &pp, 0, plen),
                            scalar_lcp(&text, start, &pattern, 0, plen),
                            "bits {bits} start {start} len {plen} (mismatch case)"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn lcp_equals_scalar(
            a in prop::collection::vec(0u8..4, 0..130),
            b in prop::collection::vec(0u8..4, 0..130),
            i in 0usize..130,
            j in 0usize..130,
        ) {
            let pa = PackedText::from_codes(2, &a).unwrap();
            let pb = PackedText::from_codes(2, &b).unwrap();
            let i = i.min(a.len());
            let j = j.min(b.len());
            prop_assert_eq!(pa.lcp(i, &pb, j, usize::MAX), scalar_lcp(&a, i, &b, j, usize::MAX));
        }

        #[test]
        fn protein_lcp_equals_scalar(
            a in prop::collection::vec(0u8..21, 0..60),
            i in 0usize..60,
            cut in 0usize..60,
        ) {
            let pa = PackedText::from_codes(5, &a).unwrap();
            let i = i.min(a.len());
            // Compare a against its own suffix: long internal matches.
            let suffix = a[i.min(a.len())..].to_vec();
            let ps = PackedText::from_codes(5, &suffix).unwrap();
            let max = cut.min(suffix.len());
            prop_assert_eq!(pa.lcp(i, &ps, 0, max), scalar_lcp(&a, i, &suffix, 0, max));
        }
    }
}
