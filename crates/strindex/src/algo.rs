//! Engine-independent algorithms built on the index traits.
//!
//! These run identically over SPINE, the suffix tree, or any other engine
//! implementing [`MatchingIndex`] / [`StringIndex`]:
//!
//! * [`maximal_unique_matches`] — MUMs, the anchors MUMmer's whole-genome
//!   alignment is named after (the paper's introduction: "searching for
//!   maximal unique matches across the genomic strings");
//! * [`longest_common_substring`] — the longest string shared by the indexed
//!   text and a query.

use crate::alphabet::Code;
use crate::traits::{MatchingIndex, MaximalMatch, StringIndex};

/// All *maximal unique matches* (MUMs) of length ≥ `min_len` between the
/// text behind `data` and the text behind `query_idx` (which must index
/// exactly `query`).
///
/// A MUM is a shared substring that occurs exactly once in each string and
/// cannot be extended on either side. MUMs are computed from the matching
/// statistics: every MUM is the longest match ending at its query position
/// (a longer co-terminal match would contradict left-maximality), so the
/// right-maximal entries are a complete candidate set; uniqueness and
/// left-maximality are then checked directly.
///
/// `query_idx` must be an index over exactly `query` (any engine works —
/// e.g. a second SPINE index).
pub fn maximal_unique_matches<D, Q>(
    data: &D,
    query_idx: &Q,
    query: &[Code],
    min_len: usize,
) -> Vec<MaximalMatch>
where
    D: MatchingIndex + ?Sized,
    Q: StringIndex + ?Sized,
{
    debug_assert_eq!(query_idx.text_len(), query.len(), "query_idx must index `query`");
    let stats = data.matching_statistics(query);
    let mut out = Vec::new();
    for (qs, len, _) in stats.right_maximal(min_len) {
        let w = &query[qs..qs + len];
        let occs_data = data.find_all(w);
        if occs_data.len() != 1 {
            continue;
        }
        if query_idx.find_all(w).len() != 1 {
            continue;
        }
        let ds = occs_data[0];
        // Left-maximality: the preceding characters must differ (or a string
        // boundary must stop the extension).
        if qs > 0 && ds > 0 && query[qs - 1] == data.symbol_at(ds - 1) {
            continue;
        }
        out.push(MaximalMatch { query_start: qs, data_start: ds, len });
    }
    out.sort();
    out
}

/// The longest substring shared by the indexed text and `query` (leftmost
/// in the query on ties); `None` if they share nothing.
pub fn longest_common_substring<D>(data: &D, query: &[Code]) -> Option<MaximalMatch>
where
    D: MatchingIndex + ?Sized,
{
    let stats = data.matching_statistics(query);
    let (e, &len) =
        stats.lengths.iter().enumerate().max_by_key(|&(e, &l)| (l, std::cmp::Reverse(e)))?;
    if len == 0 {
        return None;
    }
    let len = len as usize;
    Some(MaximalMatch { query_start: e - len, data_start: stats.first_end[e] as usize - len, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::traits::MatchingStats;

    /// Minimal brute-force index for testing the generic algorithms without
    /// depending on the engine crates (they depend on us).
    struct Brute {
        alphabet: Alphabet,
        text: Vec<Code>,
    }

    impl Brute {
        fn new(text: &[u8]) -> Self {
            let alphabet = Alphabet::dna();
            let text = alphabet.encode(text).unwrap();
            Brute { alphabet, text }
        }
    }

    impl StringIndex for Brute {
        fn alphabet(&self) -> &Alphabet {
            &self.alphabet
        }
        fn text_len(&self) -> usize {
            self.text.len()
        }
        fn symbol_at(&self, pos: usize) -> Code {
            self.text[pos]
        }
        fn find_first(&self, pattern: &[Code]) -> Option<usize> {
            if pattern.is_empty() || pattern.len() > self.text.len() {
                return if pattern.is_empty() { Some(0) } else { None };
            }
            (0..=self.text.len() - pattern.len())
                .find(|&i| &self.text[i..i + pattern.len()] == pattern)
        }
        fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
            if pattern.is_empty() || pattern.len() > self.text.len() {
                return Vec::new();
            }
            (0..=self.text.len() - pattern.len())
                .filter(|&i| &self.text[i..i + pattern.len()] == pattern)
                .collect()
        }
    }

    impl MatchingIndex for Brute {
        fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
            let m = query.len();
            let mut lengths = vec![0u32; m + 1];
            let mut first_end = vec![0u32; m + 1];
            for e in 1..=m {
                for len in (1..=e).rev() {
                    if let Some(s) = self.find_first(&query[e - len..e]) {
                        lengths[e] = len as u32;
                        first_end[e] = (s + len) as u32;
                        break;
                    }
                }
            }
            MatchingStats { lengths, first_end }
        }

        fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
            let stats = self.matching_statistics(query);
            let mut out = Vec::new();
            for (qs, len, _) in stats.right_maximal(min_len) {
                for ds in self.find_all(&query[qs..qs + len]) {
                    out.push(MaximalMatch { query_start: qs, data_start: ds, len });
                }
            }
            out.sort();
            out
        }
    }

    fn enc(s: &[u8]) -> Vec<Code> {
        Alphabet::dna().encode(s).unwrap()
    }

    #[test]
    fn mum_basic() {
        // data:  ACGAACGA TTT GGG
        // query: TTT CCCC GGG
        // "TTT" and "GGG" are unique in both and maximal → MUMs.
        let data = Brute::new(b"ACGAACGATTTGGG");
        let qtext = enc(b"TTTCCCCGGG");
        let qidx = Brute { alphabet: Alphabet::dna(), text: qtext.clone() };
        let mums = maximal_unique_matches(&data, &qidx, &qtext, 3);
        assert_eq!(
            mums,
            vec![
                MaximalMatch { query_start: 0, data_start: 8, len: 3 },
                MaximalMatch { query_start: 7, data_start: 11, len: 3 },
            ]
        );
    }

    #[test]
    fn repeated_match_is_not_unique() {
        // "ACGT" occurs twice in the data → not a MUM even though maximal.
        let data = Brute::new(b"ACGTACGT");
        let qtext = enc(b"ACGT");
        let qidx = Brute { alphabet: Alphabet::dna(), text: qtext.clone() };
        assert!(maximal_unique_matches(&data, &qidx, &qtext, 2).is_empty());
    }

    #[test]
    fn non_left_maximal_is_rejected() {
        // The candidate "CGT" at query position 1 extends left with 'A' on
        // both sides (the full "ACGT" is the real MUM).
        let data = Brute::new(b"TTACGTGG");
        let qtext = enc(b"ACGT");
        let qidx = Brute { alphabet: Alphabet::dna(), text: qtext.clone() };
        let mums = maximal_unique_matches(&data, &qidx, &qtext, 3);
        assert_eq!(mums, vec![MaximalMatch { query_start: 0, data_start: 2, len: 4 }]);
    }

    #[test]
    fn lcs_finds_longest() {
        let data = Brute::new(b"GGGACGTACGGG");
        let q = enc(b"TTTTACGTACTT");
        let m = longest_common_substring(&data, &q).unwrap();
        assert_eq!(m.len, 6); // ACGTAC
        assert_eq!(&q[m.query_start..m.query_start + 6], &enc(b"ACGTAC")[..]);
        assert_eq!(m.data_start, 3);
    }

    #[test]
    fn lcs_none_when_disjoint() {
        let data = Brute::new(b"AAAA");
        assert!(longest_common_substring(&data, &enc(b"GGGG")).is_none());
        assert!(longest_common_substring(&data, &[]).is_none());
    }
}
