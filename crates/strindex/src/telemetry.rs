//! Unified observability: a metrics registry, log-scale latency histograms,
//! and lightweight tracing spans.
//!
//! The serving stack built in this workspace (engine worker pool, buffer
//! pool, retry layer, disk-resident index) each kept private counters; this
//! module gives them one shared, dependency-free home so a single snapshot
//! describes a whole serving run:
//!
//! * [`MetricsRegistry`] — named [`Histogram`]s, [`Counter`]s, and gauge
//!   callbacks, plus a bounded ring of [`SpanRecord`]s. Cheap to share
//!   (`Arc`), cheap to record into (relaxed atomics on the hot paths).
//! * [`Histogram`] — fixed-bucket log-scale value histogram (2 significand
//!   bits per power of two, ≤ 25 % relative error) with p50/p95/p99/max
//!   quantile estimates. Values are nanoseconds for latencies, but any
//!   `u64` works (page counts, batch sizes).
//! * [`Stage`] — the per-stage timing vocabulary of the query engine
//!   (admission wait, batch formation, index scan, result merge, retry
//!   backoff), so every layer records under the same names.
//! * Spans — `registry.record_span(name, start, dur)` appends to a bounded
//!   ring buffer (oldest entries overwritten); [`RegistrySnapshot::to_text`]
//!   renders a readable trace.
//!
//! Everything is `Send + Sync`; recording never blocks except for span
//! recording and registration, which take a short mutex.
//!
//! ```
//! use strindex::telemetry::{MetricsRegistry, Stage};
//! use std::time::{Duration, Instant};
//!
//! let reg = MetricsRegistry::new();
//! let h = reg.stage(Stage::IndexScan);
//! let t0 = Instant::now();
//! // ... do the work ...
//! h.record(t0.elapsed());
//! reg.record_span("scan", t0, t0.elapsed());
//! reg.counter("scans").incr();
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("scans"), Some(1));
//! assert_eq!(snap.histogram("stage.index_scan").unwrap().count, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Number of histogram buckets: values 0–3 exactly, then 4 sub-buckets per
/// power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Default capacity of a registry's span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

/// A fixed-bucket log-scale histogram of `u64` values (latency nanoseconds,
/// page counts, batch sizes).
///
/// Buckets keep the top two bits below the leading one, so each power of two
/// is split into 4 sub-buckets and any recorded value's bucket bound is
/// within 25 % of the value. Recording is wait-free (relaxed atomics);
/// quantiles come from [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value < 4 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize; // ≥ 2
        let sub = ((value >> (msb - 2)) & 3) as usize;
        4 * (msb - 1) + sub
    }

    /// The inclusive `(low, high)` value range of bucket `index`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
        if index < 4 {
            return (index as u64, index as u64);
        }
        let msb = index / 4 + 1;
        let sub = (index % 4) as u64;
        let width = 1u64 << (msb - 2);
        let lo = (1u64 << msb) + sub * width;
        (lo, lo.saturating_add(width - 1))
    }

    /// Record one value.
    pub fn record_value(&self, value: u64) {
        // Max first: a snapshot reads buckets before max, so every bucketed
        // entry it sees already has its max applied (quantiles are capped
        // at max and must never undercut a recorded value's bucket).
        self.max.fetch_max(value, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Relaxed);
    }

    /// Record a duration as nanoseconds.
    pub fn record(&self, d: Duration) {
        self.record_value(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// A self-consistent point-in-time copy (bucket counts are read first,
    /// so the derived count always equals the bucket sum).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

/// Plain-value copy of a [`Histogram`]; the quantile surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded (sum of all bucket counts).
    pub count: u64,
    /// Sum of all recorded values (for means and stage-time totals).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts ([`Histogram::bucket_range`] gives each range).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Nothing recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// values: the high edge of the bucket holding the rank-`⌈q·count⌉`
    /// value, capped at the recorded max. Monotone in `q`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_range(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Counter.
// ---------------------------------------------------------------------------

/// A named monotonic counter handle ([`MetricsRegistry::counter`]).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Stages.
// ---------------------------------------------------------------------------

/// The serving pipeline's per-stage timing vocabulary. Every layer records
/// into the stage histogram of the *same shared registry*, so one snapshot
/// attributes a run's time across the whole path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Submit → batch pick: time a request sat in the admission queue.
    AdmissionWait,
    /// Lock-held time a worker spent coalescing requests into one batch.
    BatchFormation,
    /// Time answering a coalesced batch with backbone scans.
    IndexScan,
    /// Time publishing/merging answers (worker publish, shard merge).
    ResultMerge,
    /// Backoff slept by the storage retry layer riding out transient faults.
    RetryBackoff,
    /// Open-loop load generation: intended arrival → actual submit. A
    /// saturated generator that cannot keep up with its own schedule records
    /// growing dispatch lag here — the tell that measured latencies are
    /// about to understate queue delay (coordinated omission).
    DispatchLag,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::AdmissionWait,
        Stage::BatchFormation,
        Stage::IndexScan,
        Stage::ResultMerge,
        Stage::RetryBackoff,
        Stage::DispatchLag,
    ];

    /// The registry metric name (`stage.*`) this stage records under.
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::AdmissionWait => "stage.admission_wait",
            Stage::BatchFormation => "stage.batch_formation",
            Stage::IndexScan => "stage.index_scan",
            Stage::ResultMerge => "stage.result_merge",
            Stage::RetryBackoff => "stage.retry_backoff",
            Stage::DispatchLag => "stage.dispatch_lag",
        }
    }

    /// Is this stage exclusive worker busy-time? Busy stages are the ones
    /// whose summed durations are bounded by `workers × wall time` (the
    /// check `exp serve --metrics` enforces); queue-overlapped stages
    /// (admission wait) and sleep stages (retry backoff) are not.
    pub fn is_worker_busy(self) -> bool {
        matches!(self, Stage::BatchFormation | Stage::IndexScan | Stage::ResultMerge)
    }
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// One completed tracing span: a named interval relative to the registry's
/// epoch (its creation instant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span label (`"q17"`, `"w0.batch"`, `"sharded.merge"`, …).
    pub name: String,
    /// Microseconds from the registry epoch to the span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
}

impl SpanRecord {
    /// Microseconds from the registry epoch to the span end.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.duration_us)
    }
}

/// Bounded span storage: a ring that overwrites its oldest entry once full.
#[derive(Debug)]
struct SpanRing {
    capacity: usize,
    inner: Mutex<SpanRingInner>,
}

#[derive(Debug, Default)]
struct SpanRingInner {
    slots: Vec<SpanRecord>,
    /// Next write position once `slots` has grown to capacity.
    next: usize,
    /// Spans ever recorded (≥ `slots.len()`; the excess was overwritten).
    recorded: u64,
}

impl SpanRing {
    fn new(capacity: usize) -> Self {
        SpanRing { capacity: capacity.max(1), inner: Mutex::new(SpanRingInner::default()) }
    }

    fn push(&self, rec: SpanRecord) {
        let mut g = lock(&self.inner);
        if g.slots.len() < self.capacity {
            g.slots.push(rec);
        } else {
            let at = g.next;
            g.slots[at] = rec;
            g.next = (at + 1) % self.capacity;
        }
        g.recorded += 1;
    }

    /// Retained spans, oldest first, plus the total ever recorded.
    fn snapshot(&self) -> (Vec<SpanRecord>, u64) {
        let g = lock(&self.inner);
        let mut out = Vec::with_capacity(g.slots.len());
        if g.slots.len() == self.capacity {
            out.extend_from_slice(&g.slots[g.next..]);
            out.extend_from_slice(&g.slots[..g.next]);
        } else {
            out.extend_from_slice(&g.slots);
        }
        (out, g.recorded)
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

type Gauge = Box<dyn Fn() -> u64 + Send + Sync>;

/// Label set of a labeled gauge: `(name, value)` pairs in emission order.
pub type LabelSet = Vec<(String, String)>;

#[derive(Default)]
struct Named {
    histograms: Vec<(String, Arc<Histogram>)>,
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Gauge)>,
    labeled_gauges: Vec<(String, LabelSet, Gauge)>,
}

/// The unified metrics registry: named histograms, counters, gauges, and a
/// bounded span ring, shared by every layer of one serving deployment.
///
/// Registration (`histogram`/`counter`) is get-or-create by name and meant
/// for setup paths; hot paths hold the returned `Arc` handles and record
/// lock-free. Gauges are pull-style callbacks polled at snapshot time —
/// the buffer pool registers its hit/miss/eviction counts this way.
pub struct MetricsRegistry {
    epoch: Instant,
    named: Mutex<Named>,
    spans: SpanRing,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = lock(&self.named);
        f.debug_struct("MetricsRegistry")
            .field("histograms", &g.histograms.len())
            .field("counters", &g.counters.len())
            .field("gauges", &g.gauges.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh registry with the default span capacity.
    pub fn new() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A fresh registry retaining at most `span_capacity` spans.
    pub fn with_span_capacity(span_capacity: usize) -> Self {
        MetricsRegistry {
            epoch: Instant::now(),
            named: Mutex::new(Named::default()),
            spans: SpanRing::new(span_capacity),
        }
    }

    /// The instant span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = lock(&self.named);
        if let Some((_, h)) = g.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        g.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// The histogram for an engine [`Stage`].
    pub fn stage(&self, stage: Stage) -> Arc<Histogram> {
        self.histogram(stage.metric_name())
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = lock(&self.named);
        if let Some((_, c)) = g.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        g.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Register a pull-style gauge: `read` is polled at snapshot time.
    /// Re-registering a name replaces the callback.
    pub fn gauge(&self, name: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut g = lock(&self.named);
        if let Some((_, slot)) = g.gauges.iter_mut().find(|(n, _)| n == name) {
            *slot = Box::new(read);
        } else {
            g.gauges.push((name.to_string(), Box::new(read)));
        }
    }

    /// Register a pull-style gauge carrying a label set (one time series per
    /// distinct `(name, labels)` pair — e.g. `build.ribs{engine="disk"}`).
    /// Label *values* may contain any characters; exporters escape them.
    /// Re-registering the same name and labels replaces the callback.
    pub fn labeled_gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let set: LabelSet = labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        let mut g = lock(&self.named);
        if let Some((_, _, slot)) =
            g.labeled_gauges.iter_mut().find(|(n, l, _)| n == name && *l == set)
        {
            *slot = Box::new(read);
        } else {
            g.labeled_gauges.push((name.to_string(), set, Box::new(read)));
        }
    }

    /// Record a completed span that started at `start` and ran `duration`.
    pub fn record_span(&self, name: impl Into<String>, start: Instant, duration: Duration) {
        self.spans.push(SpanRecord {
            name: name.into(),
            start_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
            duration_us: duration.as_micros() as u64,
        });
    }

    /// Time a closure and record it as a span named `name`.
    pub fn span_timed<R>(&self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record_span(name, start, start.elapsed());
        r
    }

    /// A consistent point-in-time view of everything registered, with names
    /// sorted for deterministic output.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let (histograms, counters, gauges, labeled_gauges) = {
            let g = lock(&self.named);
            let mut hs: Vec<(String, HistogramSnapshot)> =
                g.histograms.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect();
            let mut cs: Vec<(String, u64)> =
                g.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect();
            let mut gs: Vec<(String, u64)> =
                g.gauges.iter().map(|(n, f)| (n.clone(), f())).collect();
            let mut ls: Vec<(String, LabelSet, u64)> =
                g.labeled_gauges.iter().map(|(n, l, f)| (n.clone(), l.clone(), f())).collect();
            hs.sort_by(|a, b| a.0.cmp(&b.0));
            cs.sort_by(|a, b| a.0.cmp(&b.0));
            gs.sort_by(|a, b| a.0.cmp(&b.0));
            ls.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
            (hs, cs, gs, ls)
        };
        let (spans, spans_recorded) = self.spans.snapshot();
        RegistrySnapshot {
            histograms,
            counters,
            gauges,
            labeled_gauges,
            spans,
            spans_recorded,
            span_capacity: self.spans.capacity,
        }
    }
}

/// Everything a [`MetricsRegistry`] held at one instant.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, snapshot)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge (polled at snapshot time), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, labels, value)` per labeled gauge, sorted by name then labels.
    pub labeled_gauges: Vec<(String, LabelSet, u64)>,
    /// Retained spans, oldest first (at most `span_capacity`).
    pub spans: Vec<SpanRecord>,
    /// Spans ever recorded; the excess over `spans.len()` was overwritten.
    pub spans_recorded: u64,
    /// Ring capacity.
    pub span_capacity: usize,
}

impl RegistrySnapshot {
    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The stage histogram for `stage`, if registered.
    pub fn stage(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.histogram(stage.metric_name())
    }

    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The labeled gauge matching `name` and every `(key, value)` pair in
    /// `labels` (order-insensitive), if registered.
    pub fn labeled_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.labeled_gauges
            .iter()
            .find(|(n, l, _)| {
                n == name
                    && l.len() == labels.len()
                    && labels.iter().all(|&(k, v)| l.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .map(|&(_, _, v)| v)
    }

    /// Total seconds recorded across the worker-busy stages
    /// ([`Stage::is_worker_busy`]) — the quantity bounded by
    /// `workers × wall time`.
    pub fn busy_stage_seconds(&self) -> f64 {
        Stage::ALL
            .iter()
            .filter(|s| s.is_worker_busy())
            .filter_map(|s| self.stage(*s))
            .map(|h| h.sum as f64 / 1e9)
            .sum()
    }

    /// The change from `earlier` to `self`, as another snapshot — so every
    /// exporter (`to_text`, `to_json`, `to_prometheus`, `to_chrome_trace`)
    /// works on an *interval* just as well as on a cumulative view. This is
    /// the primitive [`TimeSeries`] ticks are built from.
    ///
    /// * **Histograms** subtract bucket-wise (saturating), so interval
    ///   quantiles come from the interval's own distribution. `max` cannot
    ///   be differenced and keeps `self`'s cumulative value.
    /// * **Counters** subtract (saturating — a restarted counter reads as
    ///   its full new value, never wraps).
    /// * **Gauges** are instantaneous, not cumulative: the diff keeps
    ///   `self`'s values unchanged.
    /// * **Spans** keep `self`'s retained ring; `spans_recorded` subtracts.
    ///
    /// Metrics present only in `self` (registered after `earlier` was
    /// taken) are included whole; metrics present only in `earlier` are
    /// dropped.
    pub fn diff(&self, earlier: &Self) -> RegistrySnapshot {
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let d = match earlier.histogram(name) {
                    Some(e) => {
                        let buckets: Vec<u64> = h
                            .buckets
                            .iter()
                            .zip(e.buckets.iter().chain(std::iter::repeat(&0)))
                            .map(|(&b, &eb)| b.saturating_sub(eb))
                            .collect();
                        HistogramSnapshot {
                            count: buckets.iter().sum(),
                            sum: h.sum.saturating_sub(e.sum),
                            max: h.max,
                            buckets,
                        }
                    }
                    None => h.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), v.saturating_sub(earlier.counter(name).unwrap_or(0))))
            .collect();
        RegistrySnapshot {
            histograms,
            counters,
            gauges: self.gauges.clone(),
            labeled_gauges: self.labeled_gauges.clone(),
            spans: self.spans.clone(),
            spans_recorded: self.spans_recorded.saturating_sub(earlier.spans_recorded),
            span_capacity: self.span_capacity,
        }
    }

    /// Human-readable text export: one line per metric, then the span trace.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist    {name}: n={} mean={:.1} p50={} p95={} p99={} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max,
            );
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name}: {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge   {name}: {v}");
        }
        for (name, labels, v) in &self.labeled_gauges {
            let rendered: Vec<String> =
                labels.iter().map(|(k, lv)| format!("{k}=\"{lv}\"")).collect();
            let _ = writeln!(out, "gauge   {name}{{{}}}: {v}", rendered.join(","));
        }
        let _ = writeln!(
            out,
            "spans   {} retained of {} recorded (capacity {})",
            self.spans.len(),
            self.spans_recorded,
            self.span_capacity
        );
        for s in &self.spans {
            let _ = writeln!(out, "  [{:>10}us +{:>8}us] {}", s.start_us, s.duration_us, s.name);
        }
        out
    }

    /// Machine-readable JSON export (hand-rolled; no external crates).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        out.push_str("\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"labeled_gauges\":[");
        for (i, (name, labels, v)) in self.labeled_gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", json_escape(name));
            for (j, (k, lv)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(lv));
            }
            let _ = write!(out, "}},\"value\":{v}}}");
        }
        let _ = write!(
            out,
            "],\"spans\":{{\"recorded\":{},\"retained\":{},\"capacity\":{},\"events\":[",
            self.spans_recorded,
            self.spans.len(),
            self.span_capacity
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"start_us\":{},\"duration_us\":{}}}",
                json_escape(&s.name),
                s.start_us,
                s.duration_us
            );
        }
        out.push_str("]}}");
        out
    }

    /// Prometheus text-exposition export (format version 0.0.4), with every
    /// metric name prefixed by `namespace` and sanitized to the Prometheus
    /// charset. Histograms export as summaries (quantile series plus
    /// `_sum`/`_count`), counters gain the conventional `_total` suffix,
    /// gauges export as-is, and the span ring contributes
    /// `<ns>_spans_recorded_total` / `<ns>_spans_retained`. The output
    /// passes [`validate_prometheus_text`].
    pub fn to_prometheus(&self, namespace: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let full = |name: &str| sanitize_metric_name(&format!("{namespace}_{name}"));
        for (name, h) in &self.histograms {
            let m = full(name);
            let _ = writeln!(out, "# HELP {m} Log-scale histogram of {name}");
            let _ = writeln!(out, "# TYPE {m} summary");
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{m}_sum {}", h.sum);
            let _ = writeln!(out, "{m}_count {}", h.count);
        }
        for (name, v) in &self.counters {
            let m = format!("{}_total", full(name));
            let _ = writeln!(out, "# HELP {m} Monotonic counter {name}");
            let _ = writeln!(out, "# TYPE {m} counter");
            let _ = writeln!(out, "{m} {v}");
        }
        for (name, v) in &self.gauges {
            let m = full(name);
            let _ = writeln!(out, "# HELP {m} Gauge {name}");
            let _ = writeln!(out, "# TYPE {m} gauge");
            let _ = writeln!(out, "{m} {v}");
        }
        let mut last_labeled: Option<&str> = None;
        for (name, labels, v) in &self.labeled_gauges {
            let m = full(name);
            // Series of one family are adjacent (sorted); emit one header.
            if last_labeled != Some(name.as_str()) {
                let _ = writeln!(out, "# HELP {m} Gauge {name}");
                let _ = writeln!(out, "# TYPE {m} gauge");
                last_labeled = Some(name.as_str());
            }
            let rendered: Vec<String> = labels
                .iter()
                .map(|(k, lv)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(lv)))
                .collect();
            let _ = writeln!(out, "{m}{{{}}} {v}", rendered.join(","));
        }
        let spans_total = format!("{}_total", full("spans_recorded"));
        let _ = writeln!(out, "# TYPE {spans_total} counter");
        let _ = writeln!(out, "{spans_total} {}", self.spans_recorded);
        let retained = full("spans_retained");
        let _ = writeln!(out, "# TYPE {retained} gauge");
        let _ = writeln!(out, "{retained} {}", self.spans.len());
        out
    }

    /// Chrome `trace_event` JSON export of the span ring, loadable in
    /// `chrome://tracing` and Perfetto. Spans become complete (`"ph":"X"`)
    /// events with microsecond timestamps relative to the registry epoch.
    /// Tracks (`tid`) are assigned by span-name convention: worker spans
    /// (`w3.batch`) land on track `3 + worker`, per-query spans (`q17`) on
    /// track 1, everything else on track 2.
    pub fn to_chrome_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from(
            "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"spine\"}}",
        );
        for s in &self.spans {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                json_escape(&s.name),
                s.start_us,
                s.duration_us,
                chrome_tid(&s.name)
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// The Perfetto track a span renders on; see
/// [`RegistrySnapshot::to_chrome_trace`].
fn chrome_tid(name: &str) -> u64 {
    if let Some(rest) = name.strip_prefix('w') {
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() && rest[digits.len()..].starts_with('.') {
            return 3 + digits.parse::<u64>().unwrap_or(0);
        }
    }
    if name.starts_with('q') {
        return 1;
    }
    2
}

/// Escape `s` for inclusion inside a JSON string literal: backslash, quote,
/// and every control character (`\n`, `\t`, …, `\u00XX`).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Coerce `s` into a legal Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
/// Illegal characters (most commonly the `.` in this crate's metric names)
/// become `_`; a leading digit gains a `_` prefix.
pub fn sanitize_metric_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, c) in s.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Coerce `s` into a legal Prometheus *label* name: like metric names but
/// without `:` (reserved for recording rules).
pub fn sanitize_label_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, c) in s.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label *value* per text-exposition format 0.0.4:
/// backslash, double quote, and line feed are the only escapes.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Check `text` against the Prometheus text-exposition line format
/// (format version 0.0.4): `# HELP`/`# TYPE` comment structure, metric-name
/// charset, label syntax with escaped values, and numeric sample values.
/// Returns the first offending line and why. This is the checker CI runs
/// over `exp serve --metrics --prom` output.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    const TYPES: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
    let name_ok = |s: &str| {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let fail = |ln: usize, line: &str, why: &str| Err(format!("line {}: {why}: {line:?}", ln + 1));
    for (ln, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let Some(name) = parts.next() else {
                        return fail(ln, line, "HELP without metric name");
                    };
                    if !name_ok(name) {
                        return fail(ln, line, "bad metric name in HELP");
                    }
                }
                Some("TYPE") => {
                    let Some(name) = parts.next() else {
                        return fail(ln, line, "TYPE without metric name");
                    };
                    if !name_ok(name) {
                        return fail(ln, line, "bad metric name in TYPE");
                    }
                    let ty = parts.next().unwrap_or("").trim();
                    if !TYPES.contains(&ty) {
                        return fail(ln, line, "unknown TYPE");
                    }
                }
                _ => {} // plain comment: legal
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_and_labels, rest) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let Some(close) = line[i..].find('}') else {
                    return fail(ln, line, "unclosed label braces");
                };
                let labels = &line[i + 1..i + close];
                if !labels_ok(labels) {
                    return fail(ln, line, "malformed labels");
                }
                ((&line[..i], Some(labels)), line[i + close + 1..].trim_start())
            }
            Some(i) => ((&line[..i], None), line[i..].trim_start()),
            None => return fail(ln, line, "no sample value"),
        };
        if !name_ok(name_and_labels.0) {
            return fail(ln, line, "bad metric name");
        }
        let mut fields = rest.split_ascii_whitespace();
        let Some(value) = fields.next() else {
            return fail(ln, line, "no sample value");
        };
        if value.parse::<f64>().is_err() && !["+Inf", "-Inf", "NaN"].contains(&value) {
            return fail(ln, line, "unparseable sample value");
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return fail(ln, line, "unparseable timestamp");
            }
        }
        if fields.next().is_some() {
            return fail(ln, line, "trailing garbage after sample");
        }
    }
    Ok(())
}

/// Are `labels` (the text between `{` and `}`) well-formed
/// `name="value",...` pairs with legal escapes?
fn labels_ok(labels: &str) -> bool {
    let mut rest = labels;
    loop {
        let Some(eq) = rest.find('=') else { return rest.trim().is_empty() };
        let name = rest[..eq].trim();
        if name.is_empty()
            || !name
                .chars()
                .enumerate()
                .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
        {
            return false;
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return false;
        }
        // Scan the quoted value honoring \" \\ \n escapes.
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    match chars.next() {
                        Some((_, '\\' | '"' | 'n')) => {}
                        _ => return false,
                    };
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else { return false };
        rest = after[1 + end + 1..].trim_start();
        if rest.is_empty() {
            return true;
        }
        let Some(stripped) = rest.strip_prefix(',') else { return false };
        rest = stripped.trim_start();
        if rest.is_empty() {
            return true; // trailing comma is legal
        }
    }
}

// ---------------------------------------------------------------------------
// Sliding windows and SLO tracking.
// ---------------------------------------------------------------------------

/// Rolling aggregation over a ring of fixed-duration sub-windows.
///
/// One-shot registry snapshots answer "since start"; operators need "over
/// the last minute". `record` drops each observation into the sub-window
/// covering the current instant; a sub-window is lazily reset the first time
/// it is written in a new rotation, so expiry costs nothing when idle.
/// [`SlidingWindow::aggregate`] sums the sub-windows still inside the window
/// span and exposes rolling qps, quantiles (via the same log-scale buckets
/// as [`Histogram`]), and error rate.
///
/// All methods take `&self`; per-slot mutexes are held only for a few loads
/// and stores. The `*_at` variants take explicit nanosecond timestamps
/// (measured from construction) so tests are deterministic.
pub struct SlidingWindow {
    slot_nanos: u64,
    slots: Vec<Mutex<WindowSlot>>,
    epoch: Instant,
}

#[derive(Clone)]
struct WindowSlot {
    rotation: u64,
    count: u64,
    errors: u64,
    sum: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl WindowSlot {
    fn empty() -> Self {
        WindowSlot {
            rotation: 0,
            count: 0,
            errors: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    fn reset(&mut self, rotation: u64) {
        self.rotation = rotation;
        self.count = 0;
        self.errors = 0;
        self.sum = 0;
        self.max = 0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
    }
}

/// Point-in-time aggregate of a [`SlidingWindow`].
#[derive(Debug, Clone)]
pub struct WindowAggregate {
    /// Observations inside the window.
    pub count: u64,
    /// Failed observations inside the window.
    pub errors: u64,
    /// Seconds of elapsed time the live sub-windows actually cover: the
    /// distance from the oldest live sub-window's start to *now*, capped at
    /// the nominal span (ring length × sub-window duration). Early in a
    /// window's life — or for a one-slot window mid-bucket — this is less
    /// than the span, so rates divide by real coverage instead of
    /// under-reporting against time that never elapsed.
    pub window_secs: f64,
    /// Latency distribution of the window's observations.
    pub histogram: HistogramSnapshot,
}

impl WindowAggregate {
    /// Observations per second over the covered window time (0 when no
    /// time has elapsed yet — a rate over zero seconds is meaningless).
    pub fn qps(&self) -> f64 {
        if self.window_secs > 0.0 {
            self.count as f64 / self.window_secs
        } else {
            0.0
        }
    }

    /// Failed fraction (0 when the window is empty).
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }

    /// Rolling median latency upper bound (nanoseconds).
    pub fn p50(&self) -> u64 {
        self.histogram.p50()
    }

    /// Rolling 99th-percentile latency upper bound (nanoseconds).
    pub fn p99(&self) -> u64 {
        self.histogram.p99()
    }
}

impl SlidingWindow {
    /// A ring of `slots` sub-windows of `slot_duration` each; the rolling
    /// window spans `slots × slot_duration`.
    pub fn new(slots: usize, slot_duration: Duration) -> Self {
        let slots = slots.max(1);
        let slot_nanos = (slot_duration.as_nanos() as u64).max(1);
        SlidingWindow {
            slot_nanos,
            slots: (0..slots).map(|_| Mutex::new(WindowSlot::empty())).collect(),
            epoch: Instant::now(),
        }
    }

    /// The rolling window span.
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.slot_nanos * self.slots.len() as u64)
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record one observation at the current instant.
    pub fn record(&self, latency: Duration, ok: bool) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.record_at(self.now_nanos(), ns, ok);
    }

    /// Record at an explicit timestamp (nanoseconds from construction).
    pub fn record_at(&self, now_nanos: u64, latency_ns: u64, ok: bool) {
        let rotation = now_nanos / self.slot_nanos;
        let idx = (rotation % self.slots.len() as u64) as usize;
        let mut s = lock(&self.slots[idx]);
        if s.rotation != rotation {
            s.reset(rotation);
        }
        s.count += 1;
        if !ok {
            s.errors += 1;
        }
        s.sum += latency_ns;
        s.max = s.max.max(latency_ns);
        s.buckets[Histogram::bucket_index(latency_ns)] += 1;
    }

    /// Aggregate the sub-windows still inside the window span.
    pub fn aggregate(&self) -> WindowAggregate {
        self.aggregate_at(self.now_nanos())
    }

    /// Aggregate at an explicit timestamp (nanoseconds from construction).
    pub fn aggregate_at(&self, now_nanos: u64) -> WindowAggregate {
        let rotation = now_nanos / self.slot_nanos;
        let oldest_live = rotation.saturating_sub(self.slots.len() as u64 - 1);
        let mut count = 0u64;
        let mut errors = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for slot in &self.slots {
            let s = lock(slot);
            if s.rotation < oldest_live || s.rotation > rotation || s.count == 0 {
                continue;
            }
            count += s.count;
            errors += s.errors;
            sum += s.sum;
            max = max.max(s.max);
            for (acc, b) in buckets.iter_mut().zip(&s.buckets) {
                *acc += b;
            }
        }
        // Rates divide by the time the live sub-windows actually cover,
        // not the nominal span: before a full rotation has elapsed (and
        // always, for a one-slot window mid-bucket) dividing by the span
        // would report a partially-elapsed bucket as a full-bucket rate.
        let span = self.slot_nanos * self.slots.len() as u64;
        let window_start = (rotation + 1).saturating_sub(self.slots.len() as u64) * self.slot_nanos;
        let covered = now_nanos.saturating_sub(window_start).min(span);
        WindowAggregate {
            count,
            errors,
            window_secs: covered as f64 / 1e9,
            histogram: HistogramSnapshot { count, sum, max, buckets },
        }
    }

    /// Register this window's rolling aggregates as gauges named
    /// `<prefix>.{qps_x1000, p50_ns, p99_ns, error_rate_ppm, count}`.
    /// Fractional quantities are scaled to integers (×1000 / parts-per-
    /// million) since gauges are `u64`.
    pub fn register_gauges(self: &Arc<Self>, registry: &MetricsRegistry, prefix: &str) {
        let mk = |w: &Arc<Self>, f: fn(&WindowAggregate) -> u64| {
            let w = Arc::clone(w);
            move || f(&w.aggregate())
        };
        registry.gauge(&format!("{prefix}.qps_x1000"), mk(self, |a| (a.qps() * 1000.0) as u64));
        registry.gauge(&format!("{prefix}.p50_ns"), mk(self, WindowAggregate::p50));
        registry.gauge(&format!("{prefix}.p99_ns"), mk(self, WindowAggregate::p99));
        registry.gauge(
            &format!("{prefix}.error_rate_ppm"),
            mk(self, |a| (a.error_rate() * 1e6) as u64),
        );
        registry.gauge(&format!("{prefix}.count"), mk(self, |a| a.count));
    }
}

/// Offered-vs-achieved accounting for a load generator driving an engine.
///
/// Three monotone counters cross the generator/engine boundary: `offered`
/// (arrivals the schedule intended by now), `dispatched` (requests actually
/// submitted), and `completed` (results published). Registered as gauges,
/// they make the two gaps visible on any scrape: `offered − dispatched` is
/// *generator lag* — the open-loop schedule slipping because submission
/// itself cannot keep up (per-query magnitude in [`Stage::DispatchLag`]) —
/// and `dispatched − completed` is *engine backlog* (queued + in-flight).
/// Open-loop latency numbers are only honest while generator lag stays
/// near zero; backlog is the quantity that grows without bound past the
/// saturation knee.
#[derive(Default)]
pub struct LoadLedger {
    offered: AtomicU64,
    dispatched: AtomicU64,
    completed: AtomicU64,
}

impl LoadLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count `n` arrivals the schedule intended to have offered by now.
    pub fn record_offered(&self, n: u64) {
        self.offered.fetch_add(n, Relaxed);
    }

    /// Count one request actually submitted to the engine.
    pub fn record_dispatched(&self) {
        self.dispatched.fetch_add(1, Relaxed);
    }

    /// Count one result published by the engine.
    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Relaxed);
    }

    pub fn offered(&self) -> u64 {
        self.offered.load(Relaxed)
    }

    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Relaxed)
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Relaxed)
    }

    /// Requests the schedule intended but the generator has not submitted.
    pub fn generator_lag(&self) -> u64 {
        self.offered().saturating_sub(self.dispatched())
    }

    /// Requests submitted but not yet answered (queued + in-flight).
    pub fn engine_backlog(&self) -> u64 {
        self.dispatched().saturating_sub(self.completed())
    }

    /// Register the three counters plus both derived gaps as gauges named
    /// `<prefix>.{offered, dispatched, completed, generator_lag, backlog}`.
    pub fn register_gauges(self: &Arc<Self>, registry: &MetricsRegistry, prefix: &str) {
        let mk = |l: &Arc<Self>, f: fn(&LoadLedger) -> u64| {
            let l = Arc::clone(l);
            move || f(&l)
        };
        registry.gauge(&format!("{prefix}.offered"), mk(self, Self::offered));
        registry.gauge(&format!("{prefix}.dispatched"), mk(self, Self::dispatched));
        registry.gauge(&format!("{prefix}.completed"), mk(self, Self::completed));
        registry.gauge(&format!("{prefix}.generator_lag"), mk(self, Self::generator_lag));
        registry.gauge(&format!("{prefix}.backlog"), mk(self, Self::engine_backlog));
    }
}

/// Burn-rate SLO tracking over a short and a long [`SlidingWindow`].
///
/// An observation is *good* when it succeeded **and** met the latency
/// target. The error budget is `1 − availability`; the burn rate is the
/// window's bad fraction divided by that budget (1.0 = consuming budget
/// exactly as provisioned). Following the standard multi-window rule, the
/// tracker reports unhealthy only when **both** windows burn above the
/// threshold — the short window confirms the problem is current, the long
/// one that it is material.
pub struct SloTracker {
    target_latency_ns: u64,
    error_budget: f64,
    burn_threshold: f64,
    short: SlidingWindow,
    long: SlidingWindow,
}

impl SloTracker {
    /// A tracker with a 10 s short window and a 60 s long window.
    /// `availability` is the SLO target in `(0, 1)`, e.g. `0.999`;
    /// `target_latency` is the per-query latency objective.
    pub fn new(target_latency: Duration, availability: f64) -> Self {
        Self::with_windows(
            target_latency,
            availability,
            SlidingWindow::new(10, Duration::from_secs(1)),
            SlidingWindow::new(12, Duration::from_secs(5)),
        )
    }

    /// A tracker over explicit windows (tests use sub-second ones).
    pub fn with_windows(
        target_latency: Duration,
        availability: f64,
        short: SlidingWindow,
        long: SlidingWindow,
    ) -> Self {
        let availability = availability.clamp(0.0, 1.0 - 1e-9);
        SloTracker {
            target_latency_ns: target_latency.as_nanos().min(u64::MAX as u128) as u64,
            error_budget: 1.0 - availability,
            burn_threshold: 1.0,
            short,
            long,
        }
    }

    /// Override the burn-rate threshold above which a window counts as
    /// burning (default 1.0 = budget consumed exactly at the provisioned
    /// rate).
    pub fn with_burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold;
        self
    }

    /// The latency objective.
    pub fn target_latency(&self) -> Duration {
        Duration::from_nanos(self.target_latency_ns)
    }

    /// Record one query outcome at the current instant.
    pub fn record(&self, latency: Duration, ok: bool) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let good = ok && ns <= self.target_latency_ns;
        self.short.record(latency, good);
        self.long.record(latency, good);
    }

    /// Record at explicit per-window timestamps (tests).
    pub fn record_at(&self, now_nanos: u64, latency_ns: u64, ok: bool) {
        let good = ok && latency_ns <= self.target_latency_ns;
        self.short.record_at(now_nanos, latency_ns, good);
        self.long.record_at(now_nanos, latency_ns, good);
    }

    fn burn(&self, agg: &WindowAggregate) -> f64 {
        agg.error_rate() / self.error_budget
    }

    /// Burn rate over the short window (0 when idle).
    pub fn burn_rate_short(&self) -> f64 {
        self.burn(&self.short.aggregate())
    }

    /// Burn rate over the long window (0 when idle).
    pub fn burn_rate_long(&self) -> f64 {
        self.burn(&self.long.aggregate())
    }

    /// `false` only when both windows burn above the threshold.
    pub fn healthy(&self) -> bool {
        !(self.burn_rate_short() > self.burn_threshold
            && self.burn_rate_long() > self.burn_threshold)
    }

    /// Health at explicit timestamps (tests).
    pub fn healthy_at(&self, now_nanos: u64) -> bool {
        !(self.burn(&self.short.aggregate_at(now_nanos)) > self.burn_threshold
            && self.burn(&self.long.aggregate_at(now_nanos)) > self.burn_threshold)
    }

    /// Register `<prefix>.{burn_short_x1000, burn_long_x1000, healthy}`
    /// gauges reflecting this tracker.
    pub fn register_gauges(self: &Arc<Self>, registry: &MetricsRegistry, prefix: &str) {
        let t = Arc::clone(self);
        registry.gauge(&format!("{prefix}.burn_short_x1000"), move || {
            (t.burn_rate_short() * 1000.0) as u64
        });
        let t = Arc::clone(self);
        registry.gauge(&format!("{prefix}.burn_long_x1000"), move || {
            (t.burn_rate_long() * 1000.0) as u64
        });
        let t = Arc::clone(self);
        registry.gauge(&format!("{prefix}.healthy"), move || if t.healthy() { 1 } else { 0 });
    }
}

// ---------------------------------------------------------------------------
// Time series: retained metric history.
// ---------------------------------------------------------------------------

/// One periodic observation of a whole [`MetricsRegistry`]: every counter's
/// cumulative value and per-tick delta, every gauge's sample, and every
/// histogram's count plus *interval* quantiles (computed from the bucket
/// deltas since the previous tick via [`RegistrySnapshot::diff`], so a p99
/// here describes this tick's traffic, not all traffic since startup).
#[derive(Debug, Clone)]
pub struct TimeSeriesSample {
    /// Tick number, 0-based and monotone (survives ring eviction).
    pub seq: u64,
    /// Milliseconds since the [`TimeSeries`] was created.
    pub at_ms: u64,
    /// Wall-clock milliseconds since the Unix epoch, for correlating the
    /// ring with journals and postmortems across processes.
    pub unix_ms: u64,
    /// `(name, cumulative value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, increase since the previous tick)` per counter.
    pub counter_deltas: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, interval point)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistPoint)>,
}

/// A histogram's contribution to one [`TimeSeriesSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistPoint {
    /// Cumulative recorded count at this tick.
    pub count: u64,
    /// Values recorded during this tick's interval.
    pub delta: u64,
    /// Interval p50 (upper bound, from the tick's own distribution).
    pub p50: u64,
    /// Interval p95.
    pub p95: u64,
    /// Interval p99.
    pub p99: u64,
    /// Cumulative max (maxima cannot be differenced).
    pub max: u64,
}

impl TimeSeriesSample {
    fn keeps(&self, metric: Option<&str>) -> bool {
        let Some(m) = metric else { return true };
        self.counters.iter().any(|(n, _)| n == m)
            || self.gauges.iter().any(|(n, _)| n == m)
            || self.histograms.iter().any(|(n, _)| n == m)
    }
}

/// What the sampler needs besides the ring: the previous snapshot to diff
/// against. Guarded by its own mutex so readers of the ring never wait
/// behind a snapshot/diff in progress.
struct TsPrev {
    snapshot: Option<RegistrySnapshot>,
    seq: u64,
}

/// A fixed-size ring of periodic [`MetricsRegistry`] observations — the
/// flight recorder's memory. A sampler thread ([`spawn_sampler`]) ticks at
/// a configurable cadence; every metric ever registered automatically
/// acquires retained history with zero per-callsite changes.
///
/// Reads never wait on sampling work: the snapshot and diff happen outside
/// the ring lock, which is held only to push one `Arc` or clone the ring's
/// `Arc`s out.
pub struct TimeSeries {
    capacity: usize,
    started: Instant,
    ticks: AtomicU64,
    ring: Mutex<std::collections::VecDeque<Arc<TimeSeriesSample>>>,
    prev: Mutex<TsPrev>,
}

impl TimeSeries {
    /// An empty ring retaining at most `capacity` ticks (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TimeSeries {
            capacity,
            started: Instant::now(),
            ticks: AtomicU64::new(0),
            ring: Mutex::new(std::collections::VecDeque::with_capacity(capacity)),
            prev: Mutex::new(TsPrev { snapshot: None, seq: 0 }),
        }
    }

    /// Ring capacity in ticks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks taken so far (retained or evicted).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Relaxed)
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> Vec<Arc<TimeSeriesSample>> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// Retained samples whose age relative to the newest one is within
    /// `window`, oldest first.
    pub fn window(&self, window: Duration) -> Vec<Arc<TimeSeriesSample>> {
        let all = self.samples();
        let Some(newest) = all.last().map(|s| s.at_ms) else { return all };
        let horizon = window.as_millis().min(u64::MAX as u128) as u64;
        all.into_iter().filter(|s| newest - s.at_ms <= horizon).collect()
    }

    /// Take one tick now: snapshot `registry`, diff against the previous
    /// tick, and push the resulting sample. The first tick has no previous
    /// snapshot, so its deltas equal the cumulative values.
    pub fn sample(&self, registry: &MetricsRegistry) -> Arc<TimeSeriesSample> {
        let snap = registry.snapshot();
        let at_ms = self.started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let (delta, seq) = {
            let mut prev = lock(&self.prev);
            let seq = prev.seq;
            prev.seq += 1;
            let delta = match prev.snapshot.replace(snap.clone()) {
                Some(earlier) => snap.diff(&earlier),
                None => snap.clone(),
            };
            (delta, seq)
        };
        let histograms = snap
            .histograms
            .iter()
            .map(|(name, h)| {
                let d = delta.histogram(name).unwrap_or(h);
                let p = HistPoint {
                    count: h.count,
                    delta: d.count,
                    p50: d.p50(),
                    p95: d.p95(),
                    p99: d.p99(),
                    max: h.max,
                };
                (name.clone(), p)
            })
            .collect();
        let sample = Arc::new(TimeSeriesSample {
            seq,
            at_ms,
            unix_ms,
            counter_deltas: delta.counters,
            counters: snap.counters,
            gauges: snap.gauges,
            histograms,
        });
        {
            let mut ring = lock(&self.ring);
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(Arc::clone(&sample));
        }
        self.ticks.fetch_add(1, Relaxed);
        sample
    }

    /// JSON export (hand-rolled, like every exporter here). `metric`
    /// restricts each sample to that one metric and drops samples that
    /// never saw it; `window` keeps only samples that recent relative to
    /// the newest tick. This is the `/timeline` endpoint's payload.
    pub fn to_json(&self, metric: Option<&str>, window: Option<Duration>) -> String {
        use std::fmt::Write;
        let samples = match window {
            Some(w) => self.window(w),
            None => self.samples(),
        };
        let mut out = String::from("{");
        let _ = write!(out, "\"capacity\":{},\"ticks\":{},", self.capacity, self.ticks());
        match metric {
            Some(m) => {
                let _ = write!(out, "\"metric\":\"{}\",", json_escape(m));
            }
            None => out.push_str("\"metric\":null,"),
        }
        if let Some(w) = window {
            let _ = write!(out, "\"window_ms\":{},", w.as_millis());
        }
        out.push_str("\"samples\":[");
        let mut first = true;
        for s in samples.iter().filter(|s| s.keeps(metric)) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_ms\":{},\"unix_ms\":{},\"counters\":{{",
                s.seq, s.at_ms, s.unix_ms
            );
            let keep = |n: &str| metric.is_none_or(|m| m == n);
            for (i, (n, v)) in s.counters.iter().filter(|(n, _)| keep(n)).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(n));
            }
            out.push_str("},\"counter_deltas\":{");
            for (i, (n, v)) in s.counter_deltas.iter().filter(|(n, _)| keep(n)).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(n));
            }
            out.push_str("},\"gauges\":{");
            for (i, (n, v)) in s.gauges.iter().filter(|(n, _)| keep(n)).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(n));
            }
            out.push_str("},\"histograms\":{");
            for (i, (n, h)) in s.histograms.iter().filter(|(n, _)| keep(n)).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{{\"count\":{},\"delta\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                    json_escape(n),
                    h.count,
                    h.delta,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Long-format CSV export: one row per `(tick, metric)`, header
    /// included. Counters fill `value`+`delta`, gauges fill `value`,
    /// histograms fill everything. (Metric names contain no commas.)
    pub fn to_csv(&self, metric: Option<&str>) -> String {
        use std::fmt::Write;
        let mut out = String::from("seq,at_ms,unix_ms,kind,name,value,delta,p50,p95,p99,max\n");
        let keep = |n: &str| metric.is_none_or(|m| m == n);
        for s in self.samples() {
            let deltas = &s.counter_deltas;
            for (n, v) in s.counters.iter().filter(|(n, _)| keep(n)) {
                let d = deltas.iter().find(|(dn, _)| dn == n).map_or(0, |&(_, d)| d);
                let _ =
                    writeln!(out, "{},{},{},counter,{n},{v},{d},,,,", s.seq, s.at_ms, s.unix_ms);
            }
            for (n, v) in s.gauges.iter().filter(|(n, _)| keep(n)) {
                let _ = writeln!(out, "{},{},{},gauge,{n},{v},,,,,", s.seq, s.at_ms, s.unix_ms);
            }
            for (n, h) in s.histograms.iter().filter(|(n, _)| keep(n)) {
                let _ = writeln!(
                    out,
                    "{},{},{},histogram,{n},{},{},{},{},{},{}",
                    s.seq, s.at_ms, s.unix_ms, h.count, h.delta, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        out
    }
}

/// Owner handle for the background sampler thread; stops and joins it on
/// drop.
pub struct SamplerHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SamplerHandle {
    /// Signal the sampler and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Tick `series` from `registry` every `interval` on a background thread
/// (one tick immediately, so even short runs retain history). Sampling
/// cost is one registry snapshot plus a bucket-wise diff — a few
/// microseconds at this workspace's metric counts — so cadences down to
/// tens of milliseconds are safe.
pub fn spawn_sampler(
    series: Arc<TimeSeries>,
    registry: Arc<MetricsRegistry>,
    interval: Duration,
) -> SamplerHandle {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("spine-sampler".into())
        .spawn(move || {
            while !stop2.load(Relaxed) {
                series.sample(&registry);
                std::thread::park_timeout(interval);
            }
        })
        .expect("spawn spine-sampler thread");
    SamplerHandle { stop, thread: Some(thread) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_range_agree() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1_000, 1 << 20, u64::MAX] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {i} [{lo}, {hi}]");
        }
        // Small values are exact; larger buckets are within 25 %.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(hi as f64 <= lo as f64 * 1.25 + 1.0, "bucket {i} too wide: [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantiles_bound_recorded_values() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1_000] {
            h.record_value(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 1_000);
        assert!(s.p50() >= 50 && s.p50() <= 63, "p50 = {}", s.p50());
        assert_eq!(s.quantile(1.0), 1_000);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99() && s.p99() <= s.max);
        assert!((s.mean() - 145.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_value(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().max, 39_999);
    }

    #[test]
    fn registry_names_are_get_or_create() {
        let r = MetricsRegistry::new();
        let a = r.histogram("x");
        let b = r.histogram("x");
        a.record_value(7);
        assert_eq!(b.count(), 1);
        let c = r.counter("y");
        r.counter("y").add(5);
        assert_eq!(c.get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("x").unwrap().count, 1);
        assert_eq!(snap.counter("y"), Some(5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_poll_at_snapshot_time() {
        let r = MetricsRegistry::new();
        let v = Arc::new(AtomicU64::new(3));
        let v2 = Arc::clone(&v);
        r.gauge("g", move || v2.load(Relaxed));
        assert_eq!(r.snapshot().gauge("g"), Some(3));
        v.store(9, Relaxed);
        assert_eq!(r.snapshot().gauge("g"), Some(9));
    }

    #[test]
    fn span_ring_wraps_keeping_newest() {
        let r = MetricsRegistry::with_span_capacity(4);
        let t0 = r.epoch();
        for i in 0..10u64 {
            r.record_span(format!("s{i}"), t0 + Duration::from_micros(i), Duration::from_micros(1));
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans_recorded, 10);
        assert_eq!(snap.spans.len(), 4);
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"], "oldest spans overwritten, order kept");
        assert!(snap.spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
    }

    #[test]
    fn exports_are_well_formed() {
        let r = MetricsRegistry::new();
        r.histogram("h\"x").record_value(5);
        r.counter("c").incr();
        r.gauge("g", || 2);
        r.span_timed("work", || ());
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\""), "histogram name must be escaped: {json}");
        assert!(json.contains("\"c\":1"));
        let text = snap.to_text();
        assert!(text.contains("counter c: 1"));
        assert!(text.contains("spans   1 retained"));
    }

    #[test]
    fn span_names_are_escaped_in_json() {
        // Regression: span names used to be omitted from to_json entirely,
        // and json_escape passed control characters through raw.
        let r = MetricsRegistry::new();
        r.record_span("evil \"name\"\nwith\\ctl\u{1}", r.epoch(), Duration::from_micros(5));
        let json = r.snapshot().to_json();
        assert!(json.contains("evil \\\"name\\\"\\nwith\\\\ctl\\u0001"), "{json}");
        assert!(!json.contains('\n'), "raw control characters must not survive");
        assert!(json.contains("\"events\":["));
    }

    #[test]
    fn prometheus_export_self_validates() {
        let r = MetricsRegistry::new();
        r.stage(Stage::IndexScan).record_value(1234);
        r.counter("disk.spill_lookups").add(2);
        r.gauge("disk.pool.hits", || 7);
        r.span_timed("w", || ());
        let prom = r.snapshot().to_prometheus("spine");
        validate_prometheus_text(&prom).unwrap();
        assert!(prom.contains("# TYPE spine_stage_index_scan summary"));
        assert!(prom.contains("spine_stage_index_scan{quantile=\"0.5\"}"));
        assert!(prom.contains("spine_disk_spill_lookups_total 2"));
        assert!(prom.contains("spine_disk_pool_hits 7"));
        assert!(prom.contains("spine_spans_recorded_total 1"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_lines() {
        assert!(validate_prometheus_text("ok_metric 1").is_ok());
        assert!(validate_prometheus_text("m{a=\"x\",b=\"y\"} +Inf").is_ok());
        assert!(validate_prometheus_text("m{a=\"esc\\\"aped\"} 2 123456").is_ok());
        assert!(validate_prometheus_text("# plain comment\n\nm 1").is_ok());
        assert!(validate_prometheus_text("bad.name 1").is_err());
        assert!(validate_prometheus_text("metric notanumber").is_err());
        assert!(validate_prometheus_text("m{l=\"unterminated} 1").is_err());
        assert!(validate_prometheus_text("# TYPE m sideways").is_err());
        assert!(validate_prometheus_text("lonely_name").is_err());
        assert!(validate_prometheus_text("m 1 ts_not_int").is_err());
    }

    #[test]
    fn chrome_trace_exports_spans_on_tracks() {
        let r = MetricsRegistry::new();
        r.record_span("q1", r.epoch(), Duration::from_micros(10));
        r.record_span("w0.batch", r.epoch(), Duration::from_micros(20));
        r.record_span("sharded.merge", r.epoch(), Duration::from_micros(3));
        let trace = r.snapshot().to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.ends_with("}"));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"q1\",\"cat\":\"span\",\"ph\":\"X\""));
        assert!(trace.contains("\"tid\":1")); // q1
        assert!(trace.contains("\"tid\":3")); // w0.batch
        assert!(trace.contains("\"tid\":2")); // sharded.merge
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("disk.pool.hits"), "disk_pool_hits");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn stage_names_are_distinct_and_busy_set_is_right() {
        let names: std::collections::HashSet<_> =
            Stage::ALL.iter().map(|s| s.metric_name()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
        assert_eq!(Stage::ALL.iter().filter(|s| s.is_worker_busy()).count(), 3);
        assert!(!Stage::AdmissionWait.is_worker_busy());
        assert!(!Stage::RetryBackoff.is_worker_busy());
        assert!(!Stage::DispatchLag.is_worker_busy());
    }

    #[test]
    fn registry_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MetricsRegistry>();
        check::<Histogram>();
        check::<Counter>();
        check::<SlidingWindow>();
        check::<SloTracker>();
    }

    #[test]
    fn sliding_window_aggregates_live_slots_only() {
        let w = SlidingWindow::new(4, Duration::from_secs(1));
        let s = 1_000_000_000u64; // one slot in nanos
        w.record_at(0, 100, true);
        w.record_at(s, 200, true);
        w.record_at(2 * s, 400, false);
        // At t=2.5s all three slots are inside the 4 s window; only 2.5 s
        // of it have elapsed, so the rate divides by 2.5, not 4.
        let a = w.aggregate_at(2 * s + s / 2);
        assert_eq!(a.count, 3);
        assert_eq!(a.errors, 1);
        assert!((a.qps() - 3.0 / 2.5).abs() < 1e-9);
        assert!((a.error_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!(a.p99() >= 400);
        // At t=4.5s the rotation-0 slot has expired; live slots cover
        // [1s, 4.5s) — 3.5 s of real time.
        let a = w.aggregate_at(4 * s + s / 2);
        assert_eq!(a.count, 2);
        assert_eq!(a.errors, 1);
        assert!((a.window_secs - 3.5).abs() < 1e-9);
        // At t=10s everything has expired.
        assert_eq!(w.aggregate_at(10 * s).count, 0);
        assert_eq!(w.aggregate_at(10 * s).error_rate(), 0.0);
    }

    #[test]
    fn partially_elapsed_window_reports_true_rate() {
        // Regression: a window shorter than one bucket (one 10 s slot) used
        // to divide by the full 10 s span even when only 2 s had elapsed,
        // reporting 30 events as 3 qps instead of 15.
        let w = SlidingWindow::new(1, Duration::from_secs(10));
        let s = 1_000_000_000u64;
        for i in 0..30 {
            w.record_at(i * 1_000, 100, true);
        }
        let a = w.aggregate_at(2 * s);
        assert_eq!(a.count, 30);
        assert!((a.window_secs - 2.0).abs() < 1e-9);
        assert!((a.qps() - 15.0).abs() < 1e-9);
        // At the bucket boundary the slot rolls over: rotation 1 starts a
        // fresh (empty) slot with zero covered time — rate 0, not NaN/inf.
        let a = w.aggregate_at(10 * s);
        assert_eq!(a.count, 0);
        assert_eq!(a.qps(), 0.0);
        // Same boundary math for multi-slot rings: no elapsed time at t=0.
        let w = SlidingWindow::new(4, Duration::from_secs(1));
        w.record_at(0, 100, true);
        let a = w.aggregate_at(0);
        assert_eq!(a.count, 1);
        assert_eq!(a.qps(), 0.0);
        // One nanosecond later the rate is finite and huge, never infinite.
        assert!(w.aggregate_at(1).qps().is_finite());
    }

    #[test]
    fn sliding_window_slot_reuse_resets_stale_data() {
        let w = SlidingWindow::new(2, Duration::from_secs(1));
        let s = 1_000_000_000u64;
        w.record_at(0, 100, false);
        // Rotation 2 reuses slot 0; the old error must not leak through.
        w.record_at(2 * s, 50, true);
        let a = w.aggregate_at(2 * s);
        assert_eq!((a.count, a.errors), (1, 0));
        assert_eq!(a.histogram.max, 50);
    }

    #[test]
    fn window_gauges_appear_in_snapshot() {
        let r = MetricsRegistry::new();
        let w = Arc::new(SlidingWindow::new(4, Duration::from_secs(1)));
        w.register_gauges(&r, "window");
        w.record(Duration::from_micros(3), true);
        w.record(Duration::from_micros(5), false);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("window.count"), Some(2));
        assert_eq!(snap.gauge("window.error_rate_ppm"), Some(500_000));
        assert!(snap.gauge("window.p99_ns").unwrap() >= 5_000);
        validate_prometheus_text(&snap.to_prometheus("spine")).unwrap();
    }

    #[test]
    fn slo_burn_rates_follow_bad_fraction() {
        let slo = SloTracker::with_windows(
            Duration::from_micros(100),
            0.9, // budget = 0.1
            SlidingWindow::new(4, Duration::from_secs(1)),
            SlidingWindow::new(8, Duration::from_secs(1)),
        );
        // All good: healthy, zero burn.
        for i in 0..10 {
            slo.record_at(i * 1_000, 50_000, true);
        }
        assert!(slo.healthy_at(10_000));
        // Half the traffic breaches the latency target: bad fraction 0.5,
        // burn 5× in both windows → unhealthy.
        for i in 0..10 {
            slo.record_at(20_000 + i * 1_000, 200_000, true);
        }
        assert!(!slo.healthy_at(40_000));
        // Failures count as bad even when fast.
        let slo2 = SloTracker::with_windows(
            Duration::from_micros(100),
            0.9,
            SlidingWindow::new(4, Duration::from_secs(1)),
            SlidingWindow::new(8, Duration::from_secs(1)),
        );
        for i in 0..10 {
            slo2.record_at(i * 1_000, 10, false);
        }
        assert!(!slo2.healthy_at(10_000));
    }

    #[test]
    fn slo_needs_both_windows_burning() {
        // Short window breaches but the long window has absorbed plenty of
        // good traffic → still healthy (transient blip).
        let slo = SloTracker::with_windows(
            Duration::from_micros(100),
            0.5, // budget 0.5: need > half bad to burn
            SlidingWindow::new(2, Duration::from_secs(1)),
            SlidingWindow::new(60, Duration::from_secs(1)),
        );
        for i in 0..100 {
            slo.record_at(i * 10_000, 50_000, true); // first second: good
        }
        let t = 1_500_000_000; // 1.5 s: short window now [1s,3s)
        for i in 0..10 {
            slo.record_at(t + i * 1_000, 10, false);
        }
        assert!(slo.healthy_at(t + 1_000_000));
    }

    #[test]
    fn snapshot_diff_is_an_interval_snapshot() {
        let r = MetricsRegistry::new();
        let c = r.counter("ops");
        let h = r.histogram("lat");
        c.add(10);
        h.record_value(100);
        h.record_value(200);
        let t0 = r.snapshot();
        c.add(5);
        h.record_value(1_000_000);
        r.counter("late_arrival").incr(); // registered after t0
        let t1 = r.snapshot();
        let d = t1.diff(&t0);
        assert_eq!(d.counter("ops"), Some(5));
        // A metric unknown to the earlier snapshot is included whole.
        assert_eq!(d.counter("late_arrival"), Some(1));
        let dh = d.histogram("lat").unwrap();
        assert_eq!(dh.count, 1);
        // Interval quantiles reflect only the interval's values: the two
        // early cheap values must not drag p50 down.
        assert!(dh.p50() >= 1_000_000);
        // Max stays cumulative; gauges stay instantaneous.
        assert_eq!(dh.max, t1.histogram("lat").unwrap().max);
        // Differencing a snapshot against itself is all-zero.
        let z = t1.diff(&t1);
        assert_eq!(z.counter("ops"), Some(0));
        assert!(z.histogram("lat").unwrap().is_empty());
        // The diff is a full snapshot: every exporter works on it.
        validate_prometheus_text(&d.to_prometheus("spine")).unwrap();
        assert!(d.to_json().contains("\"late_arrival\":1"));
    }

    #[test]
    fn time_series_retains_deltas_and_evicts_fifo() {
        let r = MetricsRegistry::new();
        let c = r.counter("ops");
        let h = r.histogram("lat");
        r.gauge("depth", || 7);
        let ts = TimeSeries::new(3);
        for i in 1..=5u64 {
            c.add(i);
            h.record_value(i * 100);
            ts.sample(&r);
        }
        assert_eq!(ts.ticks(), 5);
        let samples = ts.samples();
        assert_eq!(samples.len(), 3, "ring keeps only the newest capacity ticks");
        assert_eq!(samples[0].seq, 2);
        assert_eq!(samples[2].seq, 4);
        // Tick 4 (1-based add #5): cumulative 1+2+3+4+5, delta 5.
        let last = &samples[2];
        assert_eq!(last.counters, vec![("ops".to_string(), 15)]);
        assert_eq!(last.counter_deltas, vec![("ops".to_string(), 5)]);
        assert_eq!(last.gauges, vec![("depth".to_string(), 7)]);
        let (_, hp) = &last.histograms[0];
        assert_eq!((hp.count, hp.delta), (5, 1));
        assert!(hp.p50 >= 500, "interval p50 covers only this tick's value");
        assert_eq!(hp.max, 500);
    }

    #[test]
    fn time_series_exports_filter_and_parse() {
        let r = MetricsRegistry::new();
        r.counter("a.ops").add(3);
        r.counter("b.ops").add(9);
        r.gauge("depth", || 1);
        let ts = TimeSeries::new(8);
        ts.sample(&r);
        ts.sample(&r);
        let json = ts.to_json(None, None);
        assert!(json.contains("\"capacity\":8"));
        assert!(json.contains("\"a.ops\":3") && json.contains("\"b.ops\":9"));
        // Metric filter: only the named series survives, in every section.
        let json = ts.to_json(Some("a.ops"), None);
        assert!(json.contains("\"a.ops\":3"));
        assert!(!json.contains("b.ops") && !json.contains("depth"));
        // A filter matching nothing yields an empty sample list.
        assert!(ts.to_json(Some("nope"), None).contains("\"samples\":[]"));
        // Zero-width window keeps only ticks at the newest timestamp.
        let windowed = ts.window(Duration::ZERO);
        assert!(!windowed.is_empty());
        assert!(windowed.iter().all(|s| s.at_ms == windowed.last().unwrap().at_ms));
        let csv = ts.to_csv(None);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "seq,at_ms,unix_ms,kind,name,value,delta,p50,p95,p99,max"
        );
        // 2 ticks × 3 metrics = 6 data rows, each with 11 columns.
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|l| l.split(',').count() == 11));
        assert!(ts.to_csv(Some("a.ops")).lines().count() == 3); // header + 2
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let r = Arc::new(MetricsRegistry::new());
        r.counter("ops").incr();
        let ts = Arc::new(TimeSeries::new(64));
        let handle = spawn_sampler(Arc::clone(&ts), Arc::clone(&r), Duration::from_millis(1));
        let deadline = Instant::now() + Duration::from_secs(10);
        while ts.ticks() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.stop();
        let ticks = ts.ticks();
        assert!(ticks >= 3, "sampler should have ticked, got {ticks}");
        // Stopped: no more ticks arrive.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(ts.ticks(), ticks);
        assert_eq!(ts.samples().last().unwrap().counters[0], ("ops".to_string(), 1));
    }

    #[test]
    fn labeled_gauges_export_everywhere() {
        let r = MetricsRegistry::new();
        r.labeled_gauge("build.ribs", &[("engine", "spine")], || 4);
        r.labeled_gauge("build.ribs", &[("engine", "disk")], || 7);
        let snap = r.snapshot();
        assert_eq!(snap.labeled_gauge("build.ribs", &[("engine", "spine")]), Some(4));
        assert_eq!(snap.labeled_gauge("build.ribs", &[("engine", "disk")]), Some(7));
        assert_eq!(snap.labeled_gauge("build.ribs", &[("engine", "nope")]), None);
        let text = snap.to_text();
        assert!(text.contains("build.ribs{engine=\"spine\"}: 4"));
        let json = snap.to_json();
        assert!(json.contains("\"labeled_gauges\":["));
        assert!(json.contains("\"labels\":{\"engine\":\"disk\"}"));
        let prom = snap.to_prometheus("spine");
        validate_prometheus_text(&prom).unwrap();
        assert!(prom.contains("spine_build_ribs{engine=\"spine\"} 4"));
        assert!(prom.contains("spine_build_ribs{engine=\"disk\"} 7"));
        // One TYPE header per family even with two series.
        assert_eq!(prom.matches("# TYPE spine_build_ribs gauge").count(), 1);
    }

    #[test]
    fn adversarial_label_values_escape_and_validate() {
        // Backslashes, quotes, newlines — the exposition 0.0.4 escape set.
        let evil = "pa\\th \"quoted\"\nnext";
        assert_eq!(escape_label_value(evil), "pa\\\\th \\\"quoted\\\"\\nnext");
        let r = MetricsRegistry::new();
        r.labeled_gauge("build.source", &[("file", evil), ("9 bad key!", "v")], || 1);
        let prom = r.snapshot().to_prometheus("spine");
        validate_prometheus_text(&prom).unwrap();
        assert!(prom.contains("file=\"pa\\\\th \\\"quoted\\\"\\nnext\""));
        // Label keys are sanitized to the legal charset.
        assert!(prom.contains("_9_bad_key_=\"v\""));
        // JSON export stays parseable too (shared json_escape path).
        let json = r.snapshot().to_json();
        assert!(json.contains("\"file\":\"pa\\\\th \\\"quoted\\\"\\nnext\""));
    }

    #[test]
    fn label_value_escaping_round_trips_through_validator() {
        for v in ["", "plain", "\\", "\"", "\n", "\\\"", "a\\b\"c\nd", "trailing\\"] {
            let r = MetricsRegistry::new();
            let owned = v.to_string();
            r.labeled_gauge("m", &[("k", &owned)], || 1);
            let prom = r.snapshot().to_prometheus("ns");
            validate_prometheus_text(&prom).unwrap_or_else(|e| panic!("value {v:?} failed: {e}"));
        }
    }

    #[test]
    fn load_ledger_tracks_both_gaps_and_registers_gauges() {
        let l = Arc::new(LoadLedger::new());
        l.record_offered(10);
        for _ in 0..7 {
            l.record_dispatched();
        }
        for _ in 0..4 {
            l.record_completed();
        }
        assert_eq!(l.generator_lag(), 3, "10 offered − 7 dispatched");
        assert_eq!(l.engine_backlog(), 3, "7 dispatched − 4 completed");
        let r = MetricsRegistry::new();
        l.register_gauges(&r, "load");
        let snap = r.snapshot();
        assert_eq!(snap.gauge("load.offered"), Some(10));
        assert_eq!(snap.gauge("load.generator_lag"), Some(3));
        assert_eq!(snap.gauge("load.backlog"), Some(3));
        // Catch-up drains the gaps without ever underflowing.
        for _ in 0..3 {
            l.record_dispatched();
            l.record_completed();
        }
        for _ in 0..3 {
            l.record_completed();
        }
        assert_eq!(l.generator_lag(), 0);
        assert_eq!(l.engine_backlog(), 0);
    }
}
