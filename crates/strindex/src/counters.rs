//! Instrumentation counters.
//!
//! Table 6 of the paper compares the *number of nodes checked* by SPINE and
//! the suffix tree while finding all maximal matching substrings. Both
//! engines in this workspace thread a [`Counters`] value through their search
//! paths; the experiment harness reads it after each run.
//!
//! The counters are relaxed atomics so read-only search methods (`&self`)
//! can count without locks — and so the in-memory engines stay `Sync`,
//! allowing concurrent queries over one index (see the workspace's
//! `parallel_queries` integration test).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Work counters incremented by the search/matching code paths.
#[derive(Debug, Default)]
pub struct Counters {
    nodes_checked: AtomicU64,
    edges_traversed: AtomicU64,
    links_followed: AtomicU64,
    extribs_scanned: AtomicU64,
}

impl Counters {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a node was examined for an outgoing edge (the Table 6
    /// metric).
    #[inline]
    pub fn count_node_check(&self) {
        self.nodes_checked.fetch_add(1, Relaxed);
    }

    /// Record a forward edge traversal (vertebra/rib/extrib, or tree edge).
    #[inline]
    pub fn count_edge(&self) {
        self.edges_traversed.fetch_add(1, Relaxed);
    }

    /// Record an upstream link / suffix-link traversal.
    #[inline]
    pub fn count_link(&self) {
        self.links_followed.fetch_add(1, Relaxed);
    }

    /// Record one extrib-chain element examined.
    #[inline]
    pub fn count_extrib(&self) {
        self.extribs_scanned.fetch_add(1, Relaxed);
    }

    /// Number of nodes examined so far.
    pub fn nodes_checked(&self) -> u64 {
        self.nodes_checked.load(Relaxed)
    }

    /// Number of forward edges traversed so far.
    pub fn edges_traversed(&self) -> u64 {
        self.edges_traversed.load(Relaxed)
    }

    /// Number of upstream links followed so far.
    pub fn links_followed(&self) -> u64 {
        self.links_followed.load(Relaxed)
    }

    /// Number of extrib-chain elements examined so far.
    pub fn extribs_scanned(&self) -> u64 {
        self.extribs_scanned.load(Relaxed)
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.nodes_checked.store(0, Relaxed);
        self.edges_traversed.store(0, Relaxed);
        self.links_followed.store(0, Relaxed);
        self.extribs_scanned.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = Counters::new();
        c.count_node_check();
        c.count_node_check();
        c.count_edge();
        c.count_link();
        c.count_extrib();
        assert_eq!(c.nodes_checked(), 2);
        assert_eq!(c.edges_traversed(), 1);
        assert_eq!(c.links_followed(), 1);
        assert_eq!(c.extribs_scanned(), 1);
        c.reset();
        assert_eq!(c.nodes_checked(), 0);
        assert_eq!(c.edges_traversed(), 0);
    }

    #[test]
    fn counting_from_threads_loses_nothing() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.count_node_check();
                    }
                });
            }
        });
        assert_eq!(c.nodes_checked(), 40_000);
    }
}
