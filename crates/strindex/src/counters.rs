//! Instrumentation counters.
//!
//! Table 6 of the paper compares the *number of nodes checked* by SPINE and
//! the suffix tree while finding all maximal matching substrings. Both
//! engines in this workspace thread a [`Counters`] value through their search
//! paths; the experiment harness reads it after each run.
//!
//! The counters are relaxed atomics so read-only search methods (`&self`)
//! can count without locks — and so the in-memory engines stay `Sync`,
//! allowing concurrent queries over one index (see the workspace's
//! `parallel_queries` integration test).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Work counters incremented by the search/matching code paths.
#[derive(Debug, Default)]
pub struct Counters {
    nodes_checked: AtomicU64,
    edges_traversed: AtomicU64,
    links_followed: AtomicU64,
    extribs_scanned: AtomicU64,
}

impl Counters {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a node was examined for an outgoing edge (the Table 6
    /// metric).
    #[inline]
    pub fn count_node_check(&self) {
        self.nodes_checked.fetch_add(1, Relaxed);
    }

    /// Record a forward edge traversal (vertebra/rib/extrib, or tree edge).
    #[inline]
    pub fn count_edge(&self) {
        self.edges_traversed.fetch_add(1, Relaxed);
    }

    /// Record `n` node examinations at once. The word-packed backbone scan
    /// checks a whole run of nodes per word compare; bulk-adding keeps its
    /// totals identical to the character-at-a-time path.
    #[inline]
    pub fn count_node_checks(&self, n: u64) {
        self.nodes_checked.fetch_add(n, Relaxed);
    }

    /// Record `n` forward edge traversals at once (packed-scan counterpart
    /// of [`count_edge`](Self::count_edge)).
    #[inline]
    pub fn count_edges(&self, n: u64) {
        self.edges_traversed.fetch_add(n, Relaxed);
    }

    /// Record an upstream link / suffix-link traversal.
    #[inline]
    pub fn count_link(&self) {
        self.links_followed.fetch_add(1, Relaxed);
    }

    /// Record one extrib-chain element examined.
    #[inline]
    pub fn count_extrib(&self) {
        self.extribs_scanned.fetch_add(1, Relaxed);
    }

    /// Number of nodes examined so far.
    pub fn nodes_checked(&self) -> u64 {
        self.nodes_checked.load(Relaxed)
    }

    /// Number of forward edges traversed so far.
    pub fn edges_traversed(&self) -> u64 {
        self.edges_traversed.load(Relaxed)
    }

    /// Number of upstream links followed so far.
    pub fn links_followed(&self) -> u64 {
        self.links_followed.load(Relaxed)
    }

    /// Number of extrib-chain elements examined so far.
    pub fn extribs_scanned(&self) -> u64 {
        self.extribs_scanned.load(Relaxed)
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.nodes_checked.store(0, Relaxed);
        self.edges_traversed.store(0, Relaxed);
        self.links_followed.store(0, Relaxed);
        self.extribs_scanned.store(0, Relaxed);
    }

    /// A point-in-time copy of all four counters.
    ///
    /// Snapshots are plain values: they can be diffed to attribute work to a
    /// window (`after - before`) and summed to aggregate work across several
    /// engines (the concurrent query engine does both).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            nodes_checked: self.nodes_checked(),
            edges_traversed: self.edges_traversed(),
            links_followed: self.links_followed(),
            extribs_scanned: self.extribs_scanned(),
        }
    }
}

/// A plain-value copy of a [`Counters`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Nodes examined for an outgoing edge (the Table 6 metric).
    pub nodes_checked: u64,
    /// Forward edges traversed (vertebra/rib/extrib, or tree edge).
    pub edges_traversed: u64,
    /// Upstream links / suffix links followed.
    pub links_followed: u64,
    /// Extrib-chain elements examined.
    pub extribs_scanned: u64,
}

impl CountersSnapshot {
    /// Work done since `earlier` (saturating, so a concurrent `reset` cannot
    /// produce wrap-around garbage).
    pub fn since(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            nodes_checked: self.nodes_checked.saturating_sub(earlier.nodes_checked),
            edges_traversed: self.edges_traversed.saturating_sub(earlier.edges_traversed),
            links_followed: self.links_followed.saturating_sub(earlier.links_followed),
            extribs_scanned: self.extribs_scanned.saturating_sub(earlier.extribs_scanned),
        }
    }

    /// Total of all four counters — a scalar "work units" figure.
    pub fn total(&self) -> u64 {
        self.nodes_checked + self.edges_traversed + self.links_followed + self.extribs_scanned
    }
}

impl std::ops::Add for CountersSnapshot {
    type Output = CountersSnapshot;

    fn add(self, rhs: CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            nodes_checked: self.nodes_checked + rhs.nodes_checked,
            edges_traversed: self.edges_traversed + rhs.edges_traversed,
            links_followed: self.links_followed + rhs.links_followed,
            extribs_scanned: self.extribs_scanned + rhs.extribs_scanned,
        }
    }
}

impl std::ops::AddAssign for CountersSnapshot {
    fn add_assign(&mut self, rhs: CountersSnapshot) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = Counters::new();
        c.count_node_check();
        c.count_node_check();
        c.count_edge();
        c.count_link();
        c.count_extrib();
        assert_eq!(c.nodes_checked(), 2);
        assert_eq!(c.edges_traversed(), 1);
        assert_eq!(c.links_followed(), 1);
        assert_eq!(c.extribs_scanned(), 1);
        c.reset();
        assert_eq!(c.nodes_checked(), 0);
        assert_eq!(c.edges_traversed(), 0);
    }

    #[test]
    fn snapshots_diff_and_sum() {
        let c = Counters::new();
        c.count_node_check();
        c.count_edge();
        let before = c.snapshot();
        c.count_node_check();
        c.count_link();
        let after = c.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.nodes_checked, 1);
        assert_eq!(delta.links_followed, 1);
        assert_eq!(delta.edges_traversed, 0);
        assert_eq!((before + delta), after);
        assert_eq!(after.total(), 4);
        // `since` across a reset saturates instead of wrapping.
        c.reset();
        assert_eq!(c.snapshot().since(&after).total(), 0);
    }

    #[test]
    fn counting_from_threads_loses_nothing() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.count_node_check();
                    }
                });
            }
        });
        assert_eq!(c.nodes_checked(), 40_000);
    }
}
