//! Page-resident SPINE (the paper's §6.2 disk experiments).
//!
//! Node records are striped over pages behind a bounded buffer pool
//! ([`pagestore`]); construction and search perform real page traffic, so
//! the pool's hit rate and the device's read/write counts expose SPINE's
//! locality — the effect behind the paper's 2× on-disk speedups (Figure 7,
//! Table 7). The paper's "simple buffering strategy" (keep the top of the
//! Link Table resident) is available as [`pagestore::PrefixPriority`]; the
//! `exp buffering` experiment compares it against LRU/FIFO/Clock under
//! memory pressure.
//!
//! Two physical layouts share this engine:
//!
//! * **Mutable (build-time) layout** — the paper's generic fixed-size record
//!   ("without any extra disk-specific optimization"): one record per node
//!   holding the vertebra label, link, rib slots, and two extrib slots
//!   (more spill to an in-memory side table, counted in
//!   [`DiskSpine::spill_count`]). It supports APPEND but pays for the
//!   worst-case fan-out on every node.
//! * **Sealed format-v2 layout** ([`DiskSpine::seal_to`]) — a read-only
//!   page format with varint/delta-encoded node records in slotted pages
//!   ([`pagestore::slotted`]) plus backbone labels packed bit-tight into
//!   `u64` words on dedicated label pages. Records shrink by ~10× for DNA,
//!   so a fixed pool covers far more nodes and queries touch fewer pages.
//!   When every label fits the alphabet's packing width
//!   ([`strindex::Alphabet::pack_bits`]), backbone label runs are compared
//!   a whole word at a time ([`FallibleSpineOps::try_label_run`]).
//!
//! Every sealed page carries a format-version header; readers check it on
//! each access and surface [`strindex::Error::FormatVersion`] ("rebuild
//! required") instead of misparsing, and [`DiskSpine::reopen`] rejects v1
//! sidecars the same way. All query algorithms are the shared generic ones
//! ([`crate::ops`]); `SpineOps` takes `&self`, so the store lives behind a
//! mutex.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

use crate::hot::HotSet;
use crate::node::{NodeId, ROOT};
use crate::observe::{BuildEvent, BuildObserver, BuildPhase, BuildStats, MemBreakdown};
use crate::ops::{FallibleSpineOps, SpineOps};
use pagestore::{
    slotted, slotted_record, BufferPool, CacheStats, CacheStatsSnapshot, EvictionPolicy, Lru,
    MemDevice, PageDevice, PageHeader, PagedVec, SlottedPageBuilder, PAGE_FORMAT_V2, PAGE_SIZE,
};
use parking_lot::Mutex;
use strindex::telemetry::{Counter, Histogram, MetricsRegistry};
use strindex::{
    Alphabet, Code, Counters, Error, FxHashMap, MatchingIndex, MatchingStats, MaximalMatch,
    OnlineIndex, PackedText, Result, StringIndex,
};

/// Inline extrib slots per record; chains are short (Table 4's steep decay),
/// so two suffice for almost every node.
const EXTRIB_SLOTS: usize = 2;

/// Spilled extribs of one node: `(prt, pt, dest)` triples.
type SpillEntry = Vec<(u32, u32, u32)>;

/// Magic stamped into page 0 of a sealed device.
const SEALED_MAGIC: &[u8; 4] = b"SPV2";

/// On-disk format version this build writes (and the only one it reads).
/// Version-1 artifacts (the fixed-record layout) are build-time only now;
/// reopening one yields [`Error::FormatVersion`] — "rebuild required".
pub const DISK_FORMAT_VERSION: u16 = 2;

/// Packed 64-bit label words per label page (after the page header).
const WORDS_PER_PAGE: usize = (PAGE_SIZE - slotted::PAGE_HEADER_LEN) / 8;

/// Sequential read-ahead depth while a backbone scan is active: on a
/// demand miss the pool pulls this many following pages in the same trip
/// ([`BufferPool::set_read_ahead`]). Sealed pools only — the occurrence
/// scan of §4 strides node pages in order, so the next pages are known.
const SCAN_READ_AHEAD: usize = 4;

/// Byte offsets within a *mutable-layout* node record (little-endian):
/// `cl:1 | link:4 | lel:4 | rib_count:1 | ribs: R×(cl 1, dest 4, pt 4) |
/// extrib_count:1 | extribs: 2×(dest 4, pt 4, prt 4)`.
struct Layout {
    rib_slots: usize,
}

impl Layout {
    fn new(alphabet: &Alphabet) -> Self {
        Layout { rib_slots: alphabet.code_space() }
    }

    fn record_size(&self) -> usize {
        1 + 4 + 4 + 1 + self.rib_slots * 9 + 1 + EXTRIB_SLOTS * 12
    }

    fn rib_off(&self, i: usize) -> usize {
        10 + i * 9
    }

    fn extrib_count_off(&self) -> usize {
        10 + self.rib_slots * 9
    }

    fn extrib_off(&self, i: usize) -> usize {
        self.extrib_count_off() + 1 + i * 12
    }
}

fn get_u32(r: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(r[off..off + 4].try_into().unwrap())
}

fn put_u32(r: &mut [u8], off: usize, v: u32) {
    r[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn alphabet_tag(a: &Alphabet) -> u8 {
    match a.kind() {
        strindex::AlphabetKind::Dna => 0,
        strindex::AlphabetKind::Protein => 1,
        strindex::AlphabetKind::Ascii => 2,
        strindex::AlphabetKind::Bytes => 3,
    }
}

fn alphabet_from_tag(t: u8) -> Result<Alphabet> {
    Ok(match t {
        0 => Alphabet::dna(),
        1 => Alphabet::protein(),
        2 => Alphabet::ascii(),
        3 => Alphabet::bytes(),
        t => return Err(Error::Parse(format!("unknown alphabet tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Format-v2 node record codec.
// ---------------------------------------------------------------------------

/// The varint/delta node record of format v2.
///
/// ```text
/// link.dest varint | link.lel varint
/// rib_count varint | ribs: (cl 1B, dest−node varint, pt varint)…
/// ext_count varint | extribs: (prt varint, pt varint, dest−node varint)…
/// ```
///
/// Destinations are stored relative to the owning node: APPEND only ever
/// creates ribs/extribs pointing at the freshly appended tail node, so
/// `dest > node` always holds and deltas stay small. The decoder treats any
/// malformed input as [`Error::Parse`] — corrupt-page defense, never a
/// panic or a garbage answer.
mod v2 {
    use super::*;
    use pagestore::{read_varint, write_varint};

    /// A fully decoded node: link, ribs `(cl, dest, pt)`, extribs
    /// `(prt, pt, dest)` in chain order (inline slots before spills).
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub(super) struct NodeRecord {
        pub link: (u32, u32),
        pub ribs: Vec<(Code, u32, u32)>,
        pub extribs: Vec<(u32, u32, u32)>,
    }

    /// Encode `rec` for `node`, appending to `out`. Returns the byte spans
    /// of the link and rib sections (the remainder is the extrib section)
    /// so the sealer can attribute the footprint per edge kind.
    pub(super) fn encode(node: u32, rec: &NodeRecord, out: &mut Vec<u8>) -> (usize, usize) {
        let mut link_b = write_varint(out, rec.link.0 as u64);
        link_b += write_varint(out, rec.link.1 as u64);
        let mut ribs_b = write_varint(out, rec.ribs.len() as u64);
        for &(cl, dest, pt) in &rec.ribs {
            debug_assert!(dest > node, "rib destinations always point forward");
            out.push(cl);
            ribs_b += 1;
            ribs_b += write_varint(out, (dest - node) as u64);
            ribs_b += write_varint(out, pt as u64);
        }
        write_varint(out, rec.extribs.len() as u64);
        for &(prt, pt, dest) in &rec.extribs {
            debug_assert!(dest > node, "extrib destinations always point forward");
            write_varint(out, prt as u64);
            write_varint(out, pt as u64);
            write_varint(out, (dest - node) as u64);
        }
        (link_b, ribs_b)
    }

    fn truncated() -> Error {
        Error::Parse("truncated v2 node record".into())
    }

    fn take(buf: &[u8], at: &mut usize) -> Result<u64> {
        let (v, n) = read_varint(buf, *at).ok_or_else(truncated)?;
        *at += n;
        Ok(v)
    }

    fn narrow(v: u64) -> Result<u32> {
        u32::try_from(v).map_err(|_| Error::Parse("v2 record field exceeds u32".into()))
    }

    fn fwd(node: u32, delta: u32) -> Result<u32> {
        node.checked_add(delta)
            .filter(|&d| d > node)
            .ok_or_else(|| Error::Parse("v2 destination delta out of range".into()))
    }

    fn byte(buf: &[u8], at: &mut usize) -> Result<u8> {
        let b = *buf.get(*at).ok_or_else(truncated)?;
        *at += 1;
        Ok(b)
    }

    /// Decode a whole record; rejects trailing bytes.
    pub(super) fn decode(node: u32, buf: &[u8]) -> Result<NodeRecord> {
        let mut at = 0;
        let link = (narrow(take(buf, &mut at)?)?, narrow(take(buf, &mut at)?)?);
        let rib_count = take(buf, &mut at)? as usize;
        let mut ribs = Vec::with_capacity(rib_count.min(256));
        for _ in 0..rib_count {
            let cl = byte(buf, &mut at)?;
            let delta = narrow(take(buf, &mut at)?)?;
            let pt = narrow(take(buf, &mut at)?)?;
            ribs.push((cl, fwd(node, delta)?, pt));
        }
        let ext_count = take(buf, &mut at)? as usize;
        let mut extribs = Vec::with_capacity(ext_count.min(256));
        for _ in 0..ext_count {
            let prt = narrow(take(buf, &mut at)?)?;
            let pt = narrow(take(buf, &mut at)?)?;
            let delta = narrow(take(buf, &mut at)?)?;
            extribs.push((prt, pt, fwd(node, delta)?));
        }
        if at != buf.len() {
            return Err(Error::Parse("trailing bytes after v2 node record".into()));
        }
        Ok(NodeRecord { link, ribs, extribs })
    }

    /// The first two varints only — the backbone-scan hot path
    /// ([`crate::occurrences`] touches nothing but links).
    pub(super) fn decode_link(buf: &[u8]) -> Result<(u32, u32)> {
        let mut at = 0;
        Ok((narrow(take(buf, &mut at)?)?, narrow(take(buf, &mut at)?)?))
    }

    /// Scan the rib section for label `c`.
    pub(super) fn find_rib(buf: &[u8], node: u32, c: Code) -> Result<Option<(u32, u32)>> {
        let mut at = 0;
        take(buf, &mut at)?; // link dest
        take(buf, &mut at)?; // link lel
        let rib_count = take(buf, &mut at)? as usize;
        for _ in 0..rib_count {
            let cl = byte(buf, &mut at)?;
            let delta = narrow(take(buf, &mut at)?)?;
            let pt = narrow(take(buf, &mut at)?)?;
            if cl == c {
                return Ok(Some((fwd(node, delta)?, pt)));
            }
        }
        Ok(None)
    }

    /// Scan the extrib section for the chain with parent-rib threshold
    /// `prt`; returns `(dest, pt)` of the first match, preserving the
    /// mutable layout's inline-then-spill probe order.
    pub(super) fn find_extrib(buf: &[u8], node: u32, prt: u32) -> Result<Option<(u32, u32)>> {
        let mut at = 0;
        take(buf, &mut at)?; // link dest
        take(buf, &mut at)?; // link lel
        let rib_count = take(buf, &mut at)? as usize;
        for _ in 0..rib_count {
            byte(buf, &mut at)?;
            take(buf, &mut at)?;
            take(buf, &mut at)?;
        }
        let ext_count = take(buf, &mut at)? as usize;
        for _ in 0..ext_count {
            let eprt = narrow(take(buf, &mut at)?)?;
            let pt = narrow(take(buf, &mut at)?)?;
            let delta = narrow(take(buf, &mut at)?)?;
            if eprt == prt {
                return Ok(Some((fwd(node, delta)?, pt)));
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Sealed (format-v2) store.
// ---------------------------------------------------------------------------

/// Structural counts recovered by decoding every record of a sealed index
/// ([`DiskSpine::sealed_census`]); reconciles with the
/// [`BuildStats`] event stream of the build that produced it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealedCensus {
    /// Records decoded (text length + 1 for the root).
    pub nodes: u64,
    /// Total ribs across all records.
    pub ribs: u64,
    /// Total extribs across all records (spills folded in at seal time).
    pub extribs: u64,
    /// Records too large for a slotted page, served from the sidecar
    /// overflow map instead.
    pub overflow_records: u64,
}

/// The node → page mapping of a [`DiskSpine`] layout, for attributing
/// per-node observations (heatmap visits, trace events) to the physical
/// pages that serve them.
///
/// The mutable layout stripes fixed-size records uniformly; the sealed
/// layout's variable-size slotted pages need the real page directory, and
/// hot-tier clustering ([`DiskSpine::seal_to_clustered`]) additionally
/// redirects the hottest nodes to dedicated appended pages. Cheap to clone
/// (the directory is shared).
#[derive(Debug, Clone)]
pub enum PageMap {
    /// Fixed-size records, `records_per_page` per data page, node `i` on
    /// page `i / records_per_page` (the mutable layout).
    Uniform {
        /// Records striped onto each page.
        records_per_page: usize,
    },
    /// The sealed layout: node pages start at `base` (after the file
    /// header and label pages), `first_nodes[p]` is the first node of
    /// relative page `p`, and `hot` redirects clustered nodes to their
    /// hot-tier page.
    Sealed {
        /// Absolute page id of the first node page.
        base: u32,
        /// First node id of each node page, ascending.
        first_nodes: Arc<Vec<u32>>,
        /// Hot-tier overrides: node → `(absolute page, slot)`.
        hot: Arc<FxHashMap<u32, (u32, u16)>>,
    },
}

impl PageMap {
    /// Absolute page id serving `node`'s record.
    pub fn page_of(&self, node: NodeId) -> u32 {
        match self {
            PageMap::Uniform { records_per_page } => (node as usize / records_per_page) as u32,
            PageMap::Sealed { base, first_nodes, hot } => {
                if let Some(&(page, _)) = hot.get(&node) {
                    return page;
                }
                let pi = first_nodes.partition_point(|&f| f <= node) - 1;
                base + pi as u32
            }
        }
    }
}

/// A read-only format-v2 index on a page device.
///
/// Page 0 is the file header; pages `1..=label_pages` hold the packed
/// backbone labels; the next `node_pages` pages hold slotted node records;
/// an optional hot tier of `hot_pages` pages follows with duplicated
/// records of the workload's hottest nodes ([`DiskSpine::seal_to_clustered`]).
struct SealedStore {
    pool: BufferPool,
    /// Bits per packed backbone label.
    bits: u32,
    /// Whether `bits` equals the alphabet's word-packing width, enabling
    /// word-at-a-time label comparison (false ⇒ scalar compare over the
    /// same packed labels).
    packed_compare: bool,
    label_pages: u32,
    node_pages: u32,
    /// Hot-tier pages appended after the node pages (0 = no hot tier).
    hot_pages: u32,
    /// Number of packed label words (`ceil(len / per_word)`).
    label_words: usize,
    /// `first_nodes[p]` = id of the first node on node-page `p`.
    first_nodes: Arc<Vec<u32>>,
    /// Hot-tier overrides: reads of these nodes go to their clustered
    /// duplicate instead of the base slot, so a hot chain walk stays on
    /// the (pinnable) hot pages.
    hot_index: Arc<FxHashMap<u32, (u32, u16)>>,
    /// Encoded records that exceeded [`slotted::MAX_RECORD_LEN`]; their page
    /// slot holds an empty record as the overflow marker.
    overflow: FxHashMap<u32, Vec<u8>>,
    /// Encoded on-device footprint split by edge kind.
    encoded: MemBreakdown,
}

impl SealedStore {
    /// Base node page of `node`, ignoring hot-tier overrides (sequential
    /// scans stride the base pages in order).
    fn base_node_page(&self, node: u32) -> u32 {
        let pi = self.first_nodes.partition_point(|&f| f <= node) - 1;
        1 + self.label_pages + pi as u32
    }

    /// `(page id, slot)` of `node`'s record, hot tier first.
    fn node_page(&self, node: u32) -> (u32, usize) {
        if let Some(&(page, slot)) = self.hot_index.get(&node) {
            return (page, slot as usize);
        }
        let pi = self.first_nodes.partition_point(|&f| f <= node) - 1;
        (1 + self.label_pages + pi as u32, (node - self.first_nodes[pi]) as usize)
    }

    /// Run `f` over `node`'s encoded record, wherever it lives (page slot
    /// or overflow map). The page's version header is checked on every
    /// access ([`slotted_record`]).
    fn with_record<R>(&mut self, node: u32, f: impl FnOnce(&[u8]) -> Result<R>) -> Result<R> {
        let (page, slot) = self.node_page(node);
        let mut f = Some(f);
        let inline = self.pool.read(page, |b| match slotted_record(b, slot) {
            Err(e) => Some(Err(e)),
            // Empty record = overflow marker (every real record holds at
            // least the two link varints).
            Ok([]) => None,
            Ok(rec) => Some((f.take().unwrap())(rec)),
        })?;
        match inline {
            Some(r) => r,
            None => {
                let bytes = self.overflow.get(&node).ok_or_else(|| {
                    Error::Parse(format!("sealed node {node} marked overflow but absent"))
                })?;
                (f.take().unwrap())(bytes)
            }
        }
    }

    /// Packed label word `w` (words past the end read as zero, mirroring
    /// [`PackedText::window`]).
    fn label_word(&mut self, w: usize) -> Result<u64> {
        if w >= self.label_words {
            return Ok(0);
        }
        let page = 1 + (w / WORDS_PER_PAGE) as u32;
        let off = slotted::PAGE_HEADER_LEN + (w % WORDS_PER_PAGE) * 8;
        self.pool.read(page, |b| -> Result<u64> {
            PageHeader::checked(b, slotted::kind::LABELS)?;
            Ok(u64::from_le_bytes(b[off..off + 8].try_into().unwrap()))
        })?
    }

    /// Label of text position `i` (0-based).
    fn label(&mut self, i: usize) -> Result<Code> {
        let pw = (64 / self.bits) as usize;
        let w = self.label_word(i / pw)?;
        Ok(((w >> ((i % pw) as u32 * self.bits)) & low_mask(self.bits)) as Code)
    }

    /// Up to `per_word` labels starting at position `i`, packed into the
    /// low bits of one word — the same window [`PackedText::window`]
    /// assembles, so the two compare with one xor.
    fn label_window(&mut self, i: usize) -> Result<u64> {
        let pw = (64 / self.bits) as usize;
        let w = i / pw;
        let phase = (i % pw) as u32;
        let lo = self.label_word(w)? >> (phase * self.bits);
        let win = if phase == 0 {
            lo
        } else {
            lo | (self.label_word(w + 1)? << ((pw as u32 - phase) * self.bits))
        };
        Ok(win & low_mask(pw as u32 * self.bits))
    }

    /// Word-at-a-time [`FallibleSpineOps::try_label_run`]: the common run
    /// of `pattern[from..]` and the backbone labels leaving `node`.
    fn label_run(
        &mut self,
        text_len: usize,
        node: u32,
        pattern: &PackedText,
        from: usize,
    ) -> Result<usize> {
        debug_assert_eq!(pattern.bits(), self.bits);
        let pw = pattern.per_word() as usize;
        let max = (pattern.len() - from).min(text_len - node as usize);
        let mut k = 0usize;
        while k < max {
            let n = (max - k).min(pw) as u32;
            let a = pattern.window(from + k);
            let b = self.label_window(node as usize + k)?;
            let m = strindex::window_match_len(a, b, self.bits, n) as usize;
            k += m;
            if m < n as usize {
                break;
            }
        }
        Ok(k)
    }
}

/// The physical store behind a [`DiskSpine`]: append-friendly fixed
/// records, or the sealed read-optimized v2 layout.
enum Store {
    Mutable(PagedVec),
    Sealed(SealedStore),
}

impl Store {
    fn pool(&self) -> &BufferPool {
        match self {
            Store::Mutable(v) => v.pool(),
            Store::Sealed(s) => &s.pool,
        }
    }

    fn flush(&mut self) -> Result<()> {
        match self {
            Store::Mutable(v) => v.flush(),
            Store::Sealed(s) => s.pool.flush(),
        }
    }
}

/// Registry handles for per-query disk accounting
/// ([`DiskSpine::attach_telemetry`]).
struct DiskTelemetry {
    /// The pool's shared cache counters, sampled around each query to turn
    /// cumulative misses into a per-query device-fetch count.
    cache: Arc<CacheStats>,
    /// Pages *fetched from the device* (pool misses) per
    /// `try_locate`/`try_find_all` ("disk.pages_per_query"). Pool hits are
    /// free; this histogram measures real I/O, which is what the layout-v2
    /// record density exists to cut.
    pages_per_query: Arc<Histogram>,
    /// Extrib lookups that fell through to the spill side table
    /// ("disk.spill_lookups").
    spill_lookups: Arc<Counter>,
}

/// A SPINE index whose node table lives on a page device.
pub struct DiskSpine {
    alphabet: Alphabet,
    layout: Layout,
    store: Mutex<Store>,
    /// Extribs beyond the inline slots (mutable layout only; folded into
    /// the records at seal time).
    spill: Mutex<FxHashMap<u32, SpillEntry>>,
    spill_count: AtomicU64,
    len: usize,
    counters: Counters,
    telemetry: OnceLock<DiskTelemetry>,
}

impl DiskSpine {
    /// An empty (mutable-layout) disk index over `alphabet`, storing
    /// records on `device` with a pool of `pool_pages` frames and the given
    /// eviction policy.
    pub fn new(
        alphabet: Alphabet,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let layout = Layout::new(&alphabet);
        let mut records = PagedVec::new(device, pool_pages, policy, layout.record_size());
        records.push_zeroed()?; // root
        Ok(DiskSpine {
            alphabet,
            layout,
            store: Mutex::new(Store::Mutable(records)),
            spill: Mutex::new(FxHashMap::default()),
            spill_count: AtomicU64::new(0),
            len: 0,
            counters: Counters::new(),
            telemetry: OnceLock::new(),
        })
    }

    /// Build from an encoded text.
    pub fn build(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let mut s = Self::new(alphabet, device, pool_pages, policy)?;
        s.extend_from(text)?;
        Ok(s)
    }

    /// Build while reporting every structural event (plus disk-only spill
    /// events) to `observer`.
    pub fn build_observed<O: BuildObserver>(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
        observer: &mut O,
    ) -> Result<Self> {
        let mut s = Self::new(alphabet, device, pool_pages, policy)?;
        s.extend_from_observed(text, observer)?;
        Ok(s)
    }

    /// Build, flush, and return the index together with a reconciled
    /// [`BuildStats`] (the final flush is accounted to the PageFlush phase).
    pub fn build_with_stats(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<(Self, BuildStats)> {
        let mut stats = BuildStats::default();
        let s = Self::build_observed(alphabet, text, device, pool_pages, policy, &mut stats)?;
        let t0 = std::time::Instant::now();
        s.flush()?;
        stats.phase(BuildPhase::PageFlush, t0.elapsed().as_nanos() as u64);
        stats.mem = s.mem_breakdown();
        Ok((s, stats))
    }

    /// Build a *sealed* format-v2 index on `device`: construct with the
    /// mutable layout on a scratch in-memory device, then
    /// [`seal_to`](Self::seal_to) the result. This is the durable build
    /// path — only sealed devices can be [`reopen`](Self::reopen)ed.
    pub fn build_sealed(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let scratch = Self::build(
            alphabet,
            text,
            Box::new(MemDevice::new()),
            pool_pages.max(32),
            Box::<Lru>::default(),
        )?;
        scratch.seal_to(device, pool_pages, policy)
    }

    /// Re-encode this index into the sealed format-v2 layout on a fresh
    /// `device`: packed label pages followed by slotted pages of
    /// varint/delta node records (spilled extribs folded in), with the file
    /// header written last so a crash mid-seal leaves an unreadable —
    /// never a half-valid — target. `self` is not consumed and stays fully
    /// queryable; a failed seal (e.g. a device fault) leaves it intact.
    pub fn seal_to(
        &self,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<DiskSpine> {
        self.seal_impl(device, pool_pages, policy, None)
    }

    /// [`seal_to`](Self::seal_to) plus a heatmap-driven clustering pass:
    /// the records of `hot`'s nodes (hottest first) are *duplicated* onto
    /// dedicated hot pages appended after the node pages, and reads of
    /// those nodes are redirected there. A chain walk over the hot set
    /// then touches a handful of co-located pages — which
    /// [`pin_hot`](Self::pin_hot) can wire into the buffer pool — instead
    /// of striding the whole node table. Base slots keep the original
    /// records, so the file stays readable without the redirect index;
    /// answers are bit-identical either way.
    pub fn seal_to_clustered(
        &self,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
        hot: &HotSet,
    ) -> Result<DiskSpine> {
        self.seal_impl(device, pool_pages, policy, Some(hot))
    }

    fn seal_impl(
        &self,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
        hot: Option<&HotSet>,
    ) -> Result<DiskSpine> {
        // Gather the backbone labels (works over either source layout).
        let mut codes = Vec::with_capacity(self.len);
        for i in 0..self.len {
            codes.push(self.read_cl(i as u32 + 1)?);
        }
        // Packing width: the alphabet's word-compare width when every label
        // fits it (a DNA separator does not), else just enough bits for the
        // code space — still a bit-tight store, compared scalar.
        let (bits, packed_compare) = match self.alphabet.pack_bits() {
            Some(b) if codes.iter().all(|&c| (c as u64) <= low_mask(b)) => (b, true),
            _ => (self.alphabet.label_bits(), false),
        };
        let packed =
            PackedText::from_codes(bits, &codes).expect("labels fit the chosen packing width");
        let words = packed.words();
        let label_words = words.len();
        let label_pages = label_words.div_ceil(WORDS_PER_PAGE) as u32;

        let mut pool = BufferPool::new(device, pool_pages.max(1), policy);
        for p in 0..label_pages as usize {
            let chunk = &words[p * WORDS_PER_PAGE..((p + 1) * WORDS_PER_PAGE).min(label_words)];
            pool.write(1 + p as u32, |b| {
                b.fill(0);
                PageHeader {
                    version: PAGE_FORMAT_V2,
                    kind: slotted::kind::LABELS,
                    count: chunk.len() as u16,
                    first_item: (p * WORDS_PER_PAGE) as u32,
                }
                .write_to(b);
                let mut at = slotted::PAGE_HEADER_LEN;
                for &w in chunk {
                    b[at..at + 8].copy_from_slice(&w.to_le_bytes());
                    at += 8;
                }
            })?;
        }

        let mut encoded =
            MemBreakdown { vertebrae: label_words as u64 * 8, ..MemBreakdown::default() };
        let mut overflow: FxHashMap<u32, Vec<u8>> = FxHashMap::default();
        let mut first_nodes: Vec<u32> = vec![0];
        let mut node_pages: u32 = 0;
        let mut builder = SlottedPageBuilder::new(0);
        let mut buf = Vec::new();
        for node in 0..=self.len as u32 {
            let rec = self.full_record(node)?;
            buf.clear();
            let (link_b, ribs_b) = v2::encode(node, &rec, &mut buf);
            encoded.links += link_b as u64;
            encoded.ribs += ribs_b as u64;
            encoded.extribs += (buf.len() - link_b - ribs_b) as u64;
            let payload: &[u8] = if buf.len() <= slotted::MAX_RECORD_LEN { &buf } else { &[] };
            if !builder.push(payload) {
                pool.write(1 + label_pages + node_pages, |b| b.copy_from_slice(&builder.finish()))?;
                node_pages += 1;
                builder = SlottedPageBuilder::new(node);
                first_nodes.push(node);
                assert!(builder.push(payload), "a fresh slotted page must accept the record");
            }
            if payload.is_empty() {
                overflow.insert(node, buf.clone());
            }
        }
        pool.write(1 + label_pages + node_pages, |b| b.copy_from_slice(&builder.finish()))?;
        node_pages += 1;

        // Hot-tier clustering: duplicate the hottest nodes' records onto
        // dedicated pages after the node table, hottest first, so the hot
        // set packs onto the fewest pages. Overflow-sized records stay in
        // the sidecar; stale node ids beyond the backbone are ignored.
        let mut hot_index: FxHashMap<u32, (u32, u16)> = FxHashMap::default();
        let mut hot_pages: u32 = 0;
        if let Some(hot) = hot {
            let first_hot_page = 1 + label_pages + node_pages;
            let mut hb = SlottedPageBuilder::new(0);
            let mut pending: Vec<u32> = Vec::new(); // nodes on the page being built
            for node in hot.nodes() {
                if node as usize > self.len
                    || hot_index.contains_key(&node)
                    || pending.contains(&node)
                {
                    continue;
                }
                let rec = self.full_record(node)?;
                buf.clear();
                v2::encode(node, &rec, &mut buf);
                if buf.len() > slotted::MAX_RECORD_LEN {
                    continue;
                }
                if !hb.push(&buf) {
                    pool.write(first_hot_page + hot_pages, |b| b.copy_from_slice(&hb.finish()))?;
                    for (slot, &n) in pending.iter().enumerate() {
                        hot_index.insert(n, (first_hot_page + hot_pages, slot as u16));
                    }
                    hot_pages += 1;
                    pending.clear();
                    hb = SlottedPageBuilder::new(node);
                    assert!(hb.push(&buf), "a fresh slotted page must accept the record");
                }
                pending.push(node);
            }
            if !pending.is_empty() {
                pool.write(first_hot_page + hot_pages, |b| b.copy_from_slice(&hb.finish()))?;
                for (slot, &n) in pending.iter().enumerate() {
                    hot_index.insert(n, (first_hot_page + hot_pages, slot as u16));
                }
                hot_pages += 1;
            }
        }

        // The header page goes in *last*: until it exists, the device does
        // not parse as a sealed index at all. Barrier first — "last" must be
        // a media-order fact, not just program order, or a crash between the
        // body and the header could leave a header over torn pages.
        pool.sync()?;
        let len = self.len as u64;
        pool.write(0, |b| {
            b.fill(0);
            PageHeader {
                version: PAGE_FORMAT_V2,
                kind: slotted::kind::FILE_HEADER,
                count: 0,
                first_item: 0,
            }
            .write_to(b);
            let at = slotted::PAGE_HEADER_LEN;
            b[at..at + 4].copy_from_slice(SEALED_MAGIC);
            b[at + 4..at + 6].copy_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
            b[at + 6] = alphabet_tag(&self.alphabet);
            b[at + 7] = bits as u8;
            b[at + 8] = packed_compare as u8;
            b[at + 9..at + 17].copy_from_slice(&len.to_le_bytes());
            b[at + 17..at + 21].copy_from_slice(&label_pages.to_le_bytes());
            b[at + 21..at + 25].copy_from_slice(&node_pages.to_le_bytes());
            b[at + 25..at + 29].copy_from_slice(&hot_pages.to_le_bytes());
        })?;
        pool.sync()?;

        pool.set_read_ahead(SCAN_READ_AHEAD);
        Ok(DiskSpine {
            alphabet: self.alphabet.clone(),
            layout: Layout::new(&self.alphabet),
            store: Mutex::new(Store::Sealed(SealedStore {
                pool,
                bits,
                packed_compare,
                label_pages,
                node_pages,
                hot_pages,
                label_words,
                first_nodes: Arc::new(first_nodes),
                hot_index: Arc::new(hot_index),
                overflow,
                encoded,
            })),
            spill: Mutex::new(FxHashMap::default()),
            spill_count: AtomicU64::new(0),
            len: self.len,
            counters: Counters::new(),
            telemetry: OnceLock::new(),
        })
    }

    /// The complete logical record of `node`, regardless of layout
    /// (mutable reads fold the spill side table in, preserving probe
    /// order).
    fn full_record(&self, node: u32) -> Result<v2::NodeRecord> {
        let mut rec = {
            let mut guard = self.store.lock();
            match &mut *guard {
                Store::Sealed(s) => return s.with_record(node, |buf| v2::decode(node, buf)),
                Store::Mutable(v) => {
                    let l = &self.layout;
                    v.read(node as usize, |r| {
                        let link = (get_u32(r, 1), get_u32(r, 5));
                        let rib_count = r[9] as usize;
                        let mut ribs = Vec::with_capacity(rib_count);
                        for i in 0..rib_count {
                            let off = l.rib_off(i);
                            ribs.push((r[off], get_u32(r, off + 1), get_u32(r, off + 5)));
                        }
                        let ec = (r[l.extrib_count_off()] as usize).min(EXTRIB_SLOTS);
                        let mut extribs = Vec::with_capacity(ec);
                        for i in 0..ec {
                            let off = l.extrib_off(i);
                            extribs.push((
                                get_u32(r, off + 8),
                                get_u32(r, off + 4),
                                get_u32(r, off),
                            ));
                        }
                        v2::NodeRecord { link, ribs, extribs }
                    })?
                }
            }
        };
        if let Some(sp) = self.spill.lock().get(&node) {
            rec.extribs.extend(sp.iter().copied());
        }
        Ok(rec)
    }

    /// Is this index in the sealed (read-only, format-v2) layout?
    pub fn is_sealed(&self) -> bool {
        matches!(&*self.store.lock(), Store::Sealed(_))
    }

    /// Total pages of the sealed file (header + label + node + hot pages),
    /// or `None` for the mutable layout.
    pub fn file_pages(&self) -> Option<u64> {
        match &*self.store.lock() {
            Store::Sealed(s) => {
                Some(1 + s.label_pages as u64 + s.node_pages as u64 + s.hot_pages as u64)
            }
            Store::Mutable(_) => None,
        }
    }

    /// Hot-tier pages appended by [`seal_to_clustered`](Self::seal_to_clustered)
    /// (0 for an unclustered or mutable index).
    pub fn hot_tier_pages(&self) -> u32 {
        match &*self.store.lock() {
            Store::Sealed(s) => s.hot_pages,
            Store::Mutable(_) => 0,
        }
    }

    /// The node → page mapping of the current layout, for attributing
    /// per-node heat to physical pages ([`crate::trace::Heatmap`]).
    pub fn page_map(&self) -> PageMap {
        match &*self.store.lock() {
            Store::Mutable(v) => PageMap::Uniform { records_per_page: v.records_per_page() },
            Store::Sealed(s) => PageMap::Sealed {
                base: 1 + s.label_pages,
                first_nodes: Arc::clone(&s.first_nodes),
                hot: Arc::clone(&s.hot_index),
            },
        }
    }

    /// Absolute page id serving `node`'s record.
    pub fn page_of_node(&self, node: NodeId) -> u32 {
        self.page_map().page_of(node)
    }

    /// Pin `pages` into the buffer pool (fetching absent ones), in order,
    /// until the pool refuses (it always keeps at least one evictable
    /// frame). Returns how many of `pages` ended up pinned. Pinned pages
    /// are never evicted — not even by a full-backbone occurrence scan —
    /// until [`unpin_all`](Self::unpin_all).
    pub fn pin_pages(&self, pages: &[u32]) -> Result<usize> {
        let mut guard = self.store.lock();
        let pool = match &mut *guard {
            Store::Mutable(v) => v.pool_mut(),
            Store::Sealed(s) => &mut s.pool,
        };
        let mut pinned = 0;
        for &p in pages {
            if pool.pin(p)? {
                pinned += 1;
            } else {
                break;
            }
        }
        Ok(pinned)
    }

    /// Pin the pages serving `hot`'s nodes, hottest first, spending at most
    /// `max_pages` pool frames. Returns the pages pinned. The natural
    /// companion of [`seal_to_clustered`](Self::seal_to_clustered): the hot
    /// set collapses onto few pages, so a small budget covers it all.
    pub fn pin_hot(&self, hot: &HotSet, max_pages: usize) -> Result<usize> {
        let map = self.page_map();
        let mut pages: Vec<u32> = Vec::new();
        for node in hot.nodes() {
            if pages.len() >= max_pages {
                break;
            }
            if node as usize > self.len {
                continue;
            }
            let p = map.page_of(node);
            if !pages.contains(&p) {
                pages.push(p);
            }
        }
        self.pin_pages(&pages)
    }

    /// Trace-free pinning default: pin the pages of the first backbone
    /// nodes (the paper's Figure 8 skew — links concentrate upstream),
    /// spending at most `max_pages` frames.
    pub fn pin_hot_prefix(&self, max_pages: usize) -> Result<usize> {
        let map = self.page_map();
        let mut pages: Vec<u32> = Vec::new();
        for node in 0..=self.len as u32 {
            if pages.len() >= max_pages {
                break;
            }
            let p = map.page_of(node);
            if pages.last() != Some(&p) && !pages.contains(&p) {
                pages.push(p);
            }
        }
        self.pin_pages(&pages)
    }

    /// Unpin every pinned page, returning how many were released.
    pub fn unpin_all(&self) -> usize {
        let mut guard = self.store.lock();
        let pool = match &mut *guard {
            Store::Mutable(v) => v.pool_mut(),
            Store::Sealed(s) => &mut s.pool,
        };
        pool.unpin_all()
    }

    /// Pages currently pinned in the buffer pool.
    pub fn pinned_pages(&self) -> usize {
        self.store.lock().pool().pinned_count()
    }

    /// Prefetch the pages serving `nodes` (deduplicated) into the pool in
    /// one batch, ahead of a traversal that will touch them. Best-effort:
    /// returns the number of pages actually loaded from the device (already
    /// resident or unpinnable frames load nothing).
    pub fn prefetch_nodes(&self, nodes: &[NodeId]) -> Result<usize> {
        let map = self.page_map();
        let mut pages: Vec<u32> = Vec::new();
        for &node in nodes {
            if node as usize > self.len {
                continue;
            }
            let p = map.page_of(node);
            if !pages.contains(&p) {
                pages.push(p);
            }
        }
        let mut guard = self.store.lock();
        let pool = match &mut *guard {
            Store::Mutable(v) => v.pool_mut(),
            Store::Sealed(s) => &mut s.pool,
        };
        pool.fetch_many(pages)
    }

    /// Snapshot of the buffer pool's cache counters (hits, misses,
    /// evictions, pins, prefetch accounting).
    pub fn pool_stats(&self) -> CacheStatsSnapshot {
        self.store.lock().pool().stats_handle().snapshot()
    }

    /// Decode every sealed record and return the structural totals; the
    /// numbers reconcile with the originating build's [`BuildStats`]
    /// (`ribs == ribs_created`, `extribs == extribs_created`).
    pub fn sealed_census(&self) -> Result<SealedCensus> {
        let mut guard = self.store.lock();
        let Store::Sealed(s) = &mut *guard else {
            return Err(Error::Unsupported("census of a mutable (unsealed) index"));
        };
        let mut c = SealedCensus::default();
        for node in 0..=self.len as u32 {
            let rec = s.with_record(node, |b| v2::decode(node, b))?;
            c.nodes += 1;
            c.ribs += rec.ribs.len() as u64;
            c.extribs += rec.extribs.len() as u64;
            if s.overflow.contains_key(&node) {
                c.overflow_records += 1;
            }
        }
        Ok(c)
    }

    /// Observed batch append: times the whole loop as the Scan phase.
    pub fn extend_from_observed<O: BuildObserver>(
        &mut self,
        codes: &[Code],
        observer: &mut O,
    ) -> Result<()> {
        let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
        for &c in codes {
            self.push_observed(c, observer)?;
        }
        if let Some(t0) = t0 {
            observer.phase(BuildPhase::Scan, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Observed online append (same validation as [`OnlineIndex::push`]).
    pub fn push_observed<O: BuildObserver>(&mut self, code: Code, observer: &mut O) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len });
        }
        self.append_observed(code, observer)
    }

    /// Bytes split by edge kind. For the mutable layout this is derived
    /// from the fixed record geometry (field spans × record count) plus the
    /// spill side table; for a sealed index it is the exact encoded
    /// on-device footprint (labels under `vertebrae`, varint sections under
    /// `links`/`ribs`/`extribs`). Logical on-device bytes, not buffer-pool
    /// memory.
    pub fn mem_breakdown(&self) -> MemBreakdown {
        if let Store::Sealed(s) = &*self.store.lock() {
            return s.encoded;
        }
        let records = (self.len + 1) as u64; // root included
        let l = &self.layout;
        MemBreakdown {
            vertebrae: records,                           // cl: 1 byte
            links: records * 8,                           // link + lel
            ribs: records * (1 + l.rib_slots as u64 * 9), // count + slots
            extribs: records * (1 + EXTRIB_SLOTS as u64 * 12)       // count + slots
                + self.spill.lock().values().map(|v| v.len() as u64 * 12).sum::<u64>(),
        }
    }

    /// Number of indexed characters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer-pool hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.store.lock().pool().hit_rate()
    }

    /// Cumulative buffer-pool (hits, misses).
    pub fn pool_counts(&self) -> (u64, u64) {
        let g = self.store.lock();
        (g.pool().hits(), g.pool().misses())
    }

    /// (reads, writes) page counts at the device.
    pub fn io_counts(&self) -> (u64, u64) {
        let g = self.store.lock();
        let io = g.pool().io_stats();
        (io.reads(), io.writes())
    }

    /// Durability barriers issued at the device (sealing issues two: one
    /// before the header page, one after). Together with [`Self::io_counts`]
    /// this spans the crashpoint index space the fault sweep enumerates.
    pub fn io_syncs(&self) -> u64 {
        let g = self.store.lock();
        g.pool().io_stats().syncs()
    }

    /// Extribs that did not fit the inline record slots (mutable layout;
    /// zero after sealing, which folds them into the records).
    pub fn spill_count(&self) -> u64 {
        self.spill_count.load(Relaxed)
    }

    /// Flush dirty pages to the device.
    pub fn flush(&self) -> Result<()> {
        self.store.lock().flush()
    }

    /// Work counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Wire this index's storage accounting into `registry`: the buffer
    /// pool's hit/miss/eviction counts as `disk.pool.*` gauges, pages
    /// fetched from the device per query as the `disk.pages_per_query`
    /// histogram, and spill side-table consultations as the
    /// `disk.spill_lookups` counter.
    ///
    /// Attach once, before serving; later calls keep the first hookup.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let store = self.store.lock();
        store.pool().attach_telemetry(registry, "disk.pool");
        let _ = self.telemetry.set(DiskTelemetry {
            cache: store.pool().stats_handle(),
            pages_per_query: registry.histogram("disk.pages_per_query"),
            spill_lookups: registry.counter("disk.spill_lookups"),
        });
    }

    /// Pool misses (device page fetches) so far, if telemetry is attached —
    /// the before/after sample that turns cumulative counters into a
    /// per-query delta. Concurrent queries share the counters, so a query
    /// racing others may attribute their fetches to itself; per-query
    /// numbers are exact in single-query flows (the `exp disk`
    /// experiments) and an upper bound under concurrency.
    fn sample_accesses(&self) -> Option<u64> {
        self.telemetry.get().map(|t| t.cache.snapshot().misses)
    }

    fn record_query_pages(&self, before: Option<u64>) {
        if let (Some(t), Some(b)) = (self.telemetry.get(), before) {
            let after = t.cache.snapshot().misses;
            t.pages_per_query.record_value(after.saturating_sub(b));
        }
    }

    // ----- record access ----------------------------------------------------
    //
    // Every accessor returns `Result`: the records live behind a buffer pool
    // over a fallible device, so any hop can surface an I/O error. The
    // fallible surface ([`FallibleSpineOps`], `try_find_all`) propagates
    // these; the legacy infallible traits unwrap at their boundary. Each
    // accessor dispatches on the physical layout.

    fn read_cl(&self, node: u32) -> Result<Code> {
        debug_assert!(node >= 1, "the root has no incoming vertebra");
        match &mut *self.store.lock() {
            Store::Mutable(v) => v.read(node as usize, |r| r[0]),
            Store::Sealed(s) => s.label(node as usize - 1),
        }
    }

    fn read_link(&self, node: u32) -> Result<(u32, u32)> {
        match &mut *self.store.lock() {
            Store::Mutable(v) => v.read(node as usize, |r| (get_u32(r, 1), get_u32(r, 5))),
            Store::Sealed(s) => s.with_record(node, v2::decode_link),
        }
    }

    fn find_rib(&self, node: u32, c: Code) -> Result<Option<(u32, u32)>> {
        let l = &self.layout;
        match &mut *self.store.lock() {
            Store::Mutable(v) => v.read(node as usize, |r| {
                let count = r[9] as usize;
                for i in 0..count {
                    let off = l.rib_off(i);
                    if r[off] == c {
                        return Some((get_u32(r, off + 1), get_u32(r, off + 5)));
                    }
                }
                None
            }),
            Store::Sealed(s) => s.with_record(node, |rec| v2::find_rib(rec, node, c)),
        }
    }

    fn find_extrib(&self, node: u32, prt: u32) -> Result<Option<(u32, u32)>> {
        let inline = {
            let l = &self.layout;
            match &mut *self.store.lock() {
                // Sealed records carry their whole chain — no side table.
                Store::Sealed(s) => {
                    return s.with_record(node, |rec| v2::find_extrib(rec, node, prt));
                }
                Store::Mutable(v) => v.read(node as usize, |r| {
                    let count = (r[l.extrib_count_off()] as usize).min(EXTRIB_SLOTS);
                    for i in 0..count {
                        let off = l.extrib_off(i);
                        if get_u32(r, off + 8) == prt {
                            return Some((get_u32(r, off), get_u32(r, off + 4)));
                        }
                    }
                    None
                })?,
            }
        };
        Ok(inline.or_else(|| {
            if let Some(t) = self.telemetry.get() {
                t.spill_lookups.incr();
            }
            self.spill
                .lock()
                .get(&node)
                .and_then(|v| v.iter().find(|&&(p, _, _)| p == prt).map(|&(_, pt, d)| (d, pt)))
        }))
    }

    fn write_link(&self, node: u32, dest: u32, lel: u32) -> Result<()> {
        match &mut *self.store.lock() {
            Store::Mutable(v) => v.write(node as usize, |r| {
                put_u32(r, 1, dest);
                put_u32(r, 5, lel);
            }),
            Store::Sealed(_) => Err(Error::Unsupported("write to a sealed index")),
        }
    }

    fn add_rib(&self, node: u32, c: Code, dest: u32, pt: u32) -> Result<()> {
        let l = &self.layout;
        match &mut *self.store.lock() {
            Store::Mutable(v) => v.write(node as usize, |r| {
                let count = r[9] as usize;
                assert!(count < l.rib_slots, "rib slots exhausted");
                let off = l.rib_off(count);
                r[off] = c;
                put_u32(r, off + 1, dest);
                put_u32(r, off + 5, pt);
                r[9] = (count + 1) as u8;
            }),
            Store::Sealed(_) => Err(Error::Unsupported("write to a sealed index")),
        }
    }

    /// Returns whether the extrib spilled to the side table.
    fn add_extrib(&self, node: u32, prt: u32, dest: u32, pt: u32) -> Result<bool> {
        let l = &self.layout;
        let spilled = match &mut *self.store.lock() {
            Store::Mutable(v) => v.write(node as usize, |r| {
                let co = l.extrib_count_off();
                let count = r[co] as usize;
                if count < EXTRIB_SLOTS {
                    let off = l.extrib_off(count);
                    put_u32(r, off, dest);
                    put_u32(r, off + 4, pt);
                    put_u32(r, off + 8, prt);
                    r[co] = (count + 1) as u8;
                    false
                } else {
                    true
                }
            })?,
            Store::Sealed(_) => return Err(Error::Unsupported("write to a sealed index")),
        };
        if spilled {
            self.spill.lock().entry(node).or_default().push((prt, pt, dest));
            self.spill_count.fetch_add(1, Relaxed);
        }
        Ok(spilled)
    }

    // ----- construction -----------------------------------------------------

    /// The APPEND procedure over page-resident records. Any device error
    /// propagates cleanly; a retry-wrapped device absorbs transient faults
    /// before they reach here.
    fn append(&mut self, c: Code) -> Result<()> {
        self.append_observed(c, &mut crate::observe::NoBuildObserver)
    }

    /// APPEND with observer hooks; emits the same event stream as the
    /// in-memory engines, plus [`BuildEvent::ExtribSpill`] when an extrib
    /// overflows the record's inline slots. Rejected with
    /// [`Error::Unsupported`] on a sealed index.
    fn append_observed<O: BuildObserver>(&mut self, c: Code, o: &mut O) -> Result<()> {
        let t = {
            let mut guard = self.store.lock();
            let Store::Mutable(v) = &mut *guard else {
                return Err(Error::Unsupported("append to a sealed index"));
            };
            let idx = v.push_zeroed()?;
            v.write(idx, |r| r[0] = c)?;
            idx as u32
        };
        self.len += 1;
        let prev = t - 1;
        if prev == ROOT {
            if O::ENABLED {
                o.event(BuildEvent::FirstChar);
                o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
            }
            return Ok(());
        }
        let (mut cur, mut l) = self.read_link(prev)?;
        loop {
            if self.read_cl(cur + 1)? == c {
                self.write_link(t, cur + 1, l + 1)?;
                if O::ENABLED {
                    o.event(BuildEvent::Case1);
                    o.event(BuildEvent::LinkSet { dest: cur + 1, lel: l + 1 });
                }
                return Ok(());
            }
            match self.find_rib(cur, c)? {
                Some((dest, pt)) if pt >= l => {
                    self.write_link(t, dest, l + 1)?;
                    if O::ENABLED {
                        o.event(BuildEvent::Case2);
                        o.event(BuildEvent::LinkSet { dest, lel: l + 1 });
                    }
                    return Ok(());
                }
                Some((dest, pt)) => {
                    // Extrib chain.
                    let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
                    let prt = pt;
                    let mut last_dest = dest;
                    let mut last_pt = pt;
                    loop {
                        match self.find_extrib(last_dest, prt)? {
                            Some((edest, ept)) if ept >= l => {
                                self.write_link(t, edest, l + 1)?;
                                if O::ENABLED {
                                    o.event(BuildEvent::Case4Link);
                                    o.event(BuildEvent::LinkSet { dest: edest, lel: l + 1 });
                                    if let Some(t0) = t0 {
                                        o.phase(
                                            BuildPhase::RibFixup,
                                            t0.elapsed().as_nanos() as u64,
                                        );
                                    }
                                }
                                return Ok(());
                            }
                            Some((edest, ept)) => {
                                if O::ENABLED {
                                    o.event(BuildEvent::ChainStep);
                                }
                                last_dest = edest;
                                last_pt = ept;
                            }
                            None => break,
                        }
                    }
                    let spilled = self.add_extrib(last_dest, prt, t, l)?;
                    self.write_link(t, last_dest, last_pt + 1)?;
                    if O::ENABLED {
                        o.event(BuildEvent::ExtribCreated { prt, pt: l });
                        if spilled {
                            o.event(BuildEvent::ExtribSpill);
                        }
                        o.event(BuildEvent::Case4Extrib);
                        o.event(BuildEvent::LinkSet { dest: last_dest, lel: last_pt + 1 });
                        if let Some(t0) = t0 {
                            o.phase(BuildPhase::RibFixup, t0.elapsed().as_nanos() as u64);
                        }
                    }
                    return Ok(());
                }
                None => {
                    self.add_rib(cur, c, t, l)?;
                    if O::ENABLED {
                        o.event(BuildEvent::RibCreated { pt: l });
                    }
                    if cur == ROOT {
                        self.write_link(t, ROOT, 0)?;
                        if O::ENABLED {
                            o.event(BuildEvent::Case3Root);
                            o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
                        }
                        return Ok(());
                    }
                    if O::ENABLED {
                        o.event(BuildEvent::ChainStep);
                    }
                    let (nd, nl) = self.read_link(cur)?;
                    cur = nd;
                    l = nl;
                }
            }
        }
    }

    // ----- packed search support --------------------------------------------

    /// `Some(bits)` when the sealed store can compare backbone labels
    /// word-at-a-time at that width.
    fn packing_bits(&self) -> Option<u32> {
        match &*self.store.lock() {
            Store::Sealed(s) if s.packed_compare => Some(s.bits),
            _ => None,
        }
    }

    /// Shared body of the (in)fallible `label_run`s. The sealed fast path
    /// runs under the store lock; the scalar fallback must not (it calls
    /// `try_vertebra_out`, which takes the lock again).
    fn try_label_run_inner(
        &self,
        node: NodeId,
        pattern: &PackedText,
        from: usize,
    ) -> Result<usize> {
        {
            let mut guard = self.store.lock();
            if let Store::Sealed(s) = &mut *guard {
                if s.packed_compare && s.bits == pattern.bits() {
                    return s.label_run(self.len, node, pattern, from);
                }
            }
        }
        let mut k = 0;
        while from + k < pattern.len() {
            match self.try_vertebra_out(node + k as NodeId)? {
                Some(c) if c == pattern.get(from + k) => k += 1,
                _ => break,
            }
        }
        Ok(k)
    }

    // ----- fallible query surface -------------------------------------------

    /// Fallible [`crate::search::locate`]: the end node of `pattern`'s first
    /// occurrence, `Ok(None)` if absent, `Err` on a storage failure.
    pub fn try_locate(&self, pattern: &[Code]) -> Result<Option<NodeId>> {
        let before = self.sample_accesses();
        let r = crate::search::try_locate(self, pattern);
        self.record_query_pages(before);
        r
    }

    /// Fallible [`StringIndex::find_all`]: start offsets of every occurrence,
    /// or `Err` if the device fails mid-traversal. This is the entry point
    /// fault-tolerance harnesses use — an injected fault degrades to a clean
    /// `Err` here instead of a panic.
    pub fn try_find_all(&self, pattern: &[Code]) -> Result<Vec<usize>> {
        if pattern.is_empty() {
            return Ok(Vec::new());
        }
        let before = self.sample_accesses();
        let r = crate::occurrences::try_find_all_ends(self, pattern);
        self.record_query_pages(before);
        Ok(r?.into_iter().map(|end| end as usize - pattern.len()).collect())
    }

    /// EXPLAIN `pattern` over the page-resident index: the structural trace
    /// of [`crate::trace::explain`] plus
    /// [`crate::trace::TraceEvent::PageFetches`] events attributing buffer
    /// pool hits and device reads to individual traversal steps (sampled
    /// from the pool's cumulative counters around each step — exact in
    /// single-query flows, an upper bound while concurrent queries share
    /// the pool). A storage failure mid-traversal is captured in
    /// [`crate::trace::QueryTrace::error`] with the partial trace retained.
    /// Traced walks always take the scalar path (the event stream is the
    /// point), so sealed and mutable traces are step-identical.
    pub fn explain(&self, pattern: &[Code]) -> crate::trace::QueryTrace {
        let before = self.sample_accesses();
        let t = crate::trace::explain(self, pattern);
        self.record_query_pages(before);
        t
    }
}

/// Message for the infallible-trait boundary: callers of plain [`SpineOps`]
/// opted out of error handling, so a real device error can only panic there.
/// Fault-aware callers use [`FallibleSpineOps`] / [`DiskSpine::try_find_all`].
const INFALLIBLE_BOUNDARY: &str =
    "page device error during infallible traversal (use the try_* surface for fault tolerance)";

impl SpineOps for DiskSpine {
    fn text_len(&self) -> usize {
        self.len
    }

    fn vertebra_out(&self, node: NodeId) -> Option<Code> {
        ((node as usize) < self.len).then(|| self.read_cl(node + 1).expect(INFALLIBLE_BOUNDARY))
    }

    fn link_of(&self, node: NodeId) -> (NodeId, u32) {
        self.read_link(node).expect(INFALLIBLE_BOUNDARY)
    }

    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)> {
        self.find_rib(node, c).expect(INFALLIBLE_BOUNDARY)
    }

    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)> {
        self.find_extrib(node, prt).expect(INFALLIBLE_BOUNDARY)
    }

    fn ops_counters(&self) -> &Counters {
        &self.counters
    }

    fn backbone_packing(&self) -> Option<u32> {
        self.packing_bits()
    }

    fn label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> usize {
        self.try_label_run_inner(node, pattern, from).expect(INFALLIBLE_BOUNDARY)
    }
}

impl FallibleSpineOps for DiskSpine {
    fn text_len(&self) -> usize {
        self.len
    }

    fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>> {
        if (node as usize) < self.len {
            Ok(Some(self.read_cl(node + 1)?))
        } else {
            Ok(None)
        }
    }

    fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)> {
        self.read_link(node)
    }

    fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>> {
        self.find_rib(node, c)
    }

    fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>> {
        self.find_extrib(node, prt)
    }

    fn ops_counters(&self) -> &Counters {
        &self.counters
    }

    fn storage_counters(&self) -> Option<(u64, u64)> {
        Some(self.pool_counts())
    }

    fn backbone_packing(&self) -> Option<u32> {
        self.packing_bits()
    }

    fn try_label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> Result<usize> {
        self.try_label_run_inner(node, pattern, from)
    }

    fn scan_begin(&self, from: NodeId) {
        let mut guard = self.store.lock();
        match &mut *guard {
            Store::Sealed(s) => {
                s.pool.begin_scan();
                // Pull the first window of node pages ahead of the scan;
                // read-ahead keeps the window rolling from there. Advisory:
                // a prefetch failure just means the scan faults normally.
                let first = s.base_node_page(from.min(self.len as u32));
                let end = 1 + s.label_pages + s.node_pages;
                let _ = s.pool.fetch_many((first..end).take(SCAN_READ_AHEAD));
            }
            Store::Mutable(v) => v.pool_mut().begin_scan(),
        }
    }

    fn scan_end(&self) {
        match &mut *self.store.lock() {
            Store::Sealed(s) => s.pool.end_scan(),
            Store::Mutable(v) => v.pool_mut().end_scan(),
        }
    }
}

impl OnlineIndex for DiskSpine {
    fn push(&mut self, code: Code) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len });
        }
        self.append(code)
    }
}

impl StringIndex for DiskSpine {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.len
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.read_cl(pos as u32 + 1).expect(INFALLIBLE_BOUNDARY)
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        crate::search::locate(self, pattern).map(|end| end as usize - pattern.len())
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        crate::occurrences::find_all_ends(self, pattern)
            .into_iter()
            .map(|end| end as usize - pattern.len())
            .collect()
    }
}

impl MatchingIndex for DiskSpine {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        crate::matching::matching_statistics(self, query)
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        crate::matching::maximal_matches(self, query, min_len)
    }
}

// ---------------------------------------------------------------------------
// Durability: close and reopen a disk index.
// ---------------------------------------------------------------------------

impl DiskSpine {
    /// Serialize the sidecar metadata (pair it with a flushed device).
    ///
    /// A sealed index writes a version-[`DISK_FORMAT_VERSION`] sidecar that
    /// [`reopen`](Self::reopen) accepts. A mutable index still writes the
    /// legacy version-1 sidecar byte-for-byte — but v1 is build-time only
    /// now, and reopening it reports [`Error::FormatVersion`] ("rebuild
    /// required"): rebuild via [`Self::build_sealed`] /
    /// [`Self::seal_to`].
    pub fn write_meta<W: std::io::Write>(&self, w: &mut W) -> Result<()> {
        let guard = self.store.lock();
        let Store::Sealed(s) = &*guard else {
            drop(guard);
            return self.write_meta_v1(w);
        };
        w.write_all(b"SPND")?;
        w.write_all(&DISK_FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&[alphabet_tag(&self.alphabet)])?;
        w.write_all(&(self.len as u64).to_le_bytes())?;
        w.write_all(&[s.bits as u8, s.packed_compare as u8])?;
        w.write_all(&s.label_pages.to_le_bytes())?;
        w.write_all(&s.node_pages.to_le_bytes())?;
        for &first in s.first_nodes.iter() {
            w.write_all(&first.to_le_bytes())?;
        }
        for part in [s.encoded.vertebrae, s.encoded.links, s.encoded.ribs, s.encoded.extribs] {
            w.write_all(&part.to_le_bytes())?;
        }
        let mut entries: Vec<(u32, &Vec<u8>)> = s.overflow.iter().map(|(&n, v)| (n, v)).collect();
        entries.sort_by_key(|&(n, _)| n);
        w.write_all(&(entries.len() as u64).to_le_bytes())?;
        for (node, bytes) in entries {
            w.write_all(&node.to_le_bytes())?;
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(bytes)?;
        }
        // Optional trailing hot-tier section (absent in pre-hot-tier
        // sidecars; reopen tolerates EOF here, so both directions of the
        // format stay compatible).
        w.write_all(&s.hot_pages.to_le_bytes())?;
        let mut hot: Vec<(u32, (u32, u16))> = s.hot_index.iter().map(|(&n, &e)| (n, e)).collect();
        hot.sort_by_key(|&(n, _)| n);
        w.write_all(&(hot.len() as u64).to_le_bytes())?;
        for (node, (page, slot)) in hot {
            w.write_all(&node.to_le_bytes())?;
            w.write_all(&page.to_le_bytes())?;
            w.write_all(&slot.to_le_bytes())?;
        }
        Ok(())
    }

    /// The legacy mutable-layout sidecar: text length plus the (rare)
    /// spilled extribs that live outside the fixed-size records.
    fn write_meta_v1<W: std::io::Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(b"SPND")?;
        w.write_all(&1u16.to_le_bytes())?;
        w.write_all(&[alphabet_tag(&self.alphabet)])?;
        w.write_all(&(self.len as u64).to_le_bytes())?;
        let spill = self.spill.lock();
        let mut entries: Vec<(u32, &SpillEntry)> = spill.iter().map(|(&n, v)| (n, v)).collect();
        entries.sort_by_key(|&(n, _)| n);
        let total: u64 = entries.iter().map(|(_, v)| v.len() as u64).sum();
        w.write_all(&total.to_le_bytes())?;
        for (node, v) in entries {
            for &(prt, pt, dest) in v {
                w.write_all(&node.to_le_bytes())?;
                w.write_all(&prt.to_le_bytes())?;
                w.write_all(&pt.to_le_bytes())?;
                w.write_all(&dest.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reattach to a `device` holding a previously sealed and flushed
    /// index, using the sidecar written by [`write_meta`](Self::write_meta).
    ///
    /// Only format-[`DISK_FORMAT_VERSION`] artifacts reopen; a version-1
    /// sidecar (or a device whose header page is not stamped v2) yields
    /// [`Error::FormatVersion`] — the typed "rebuild required" signal —
    /// and unrecognizable bytes yield [`Error::Parse`].
    pub fn reopen<R: std::io::Read>(
        meta: &mut R,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let mut magic = [0u8; 4];
        meta.read_exact(&mut magic)?;
        if &magic != b"SPND" {
            return Err(Error::Parse("bad DiskSpine meta magic".into()));
        }
        let mut b2 = [0u8; 2];
        meta.read_exact(&mut b2)?;
        let version = u16::from_le_bytes(b2);
        if version != DISK_FORMAT_VERSION {
            return Err(Error::FormatVersion { found: version, expected: DISK_FORMAT_VERSION });
        }
        let mut b1 = [0u8; 1];
        meta.read_exact(&mut b1)?;
        let alphabet = alphabet_from_tag(b1[0])?;
        let mut b8 = [0u8; 8];
        meta.read_exact(&mut b8)?;
        let len = u64::from_le_bytes(b8) as usize;
        let mut bp = [0u8; 2];
        meta.read_exact(&mut bp)?;
        let (bits, packed_compare) = (bp[0] as u32, bp[1] != 0);
        if !(1..=8).contains(&bits) {
            return Err(Error::Parse(format!("packing width {bits} out of range")));
        }
        let mut b4 = [0u8; 4];
        meta.read_exact(&mut b4)?;
        let label_pages = u32::from_le_bytes(b4);
        meta.read_exact(&mut b4)?;
        let node_pages = u32::from_le_bytes(b4);
        if node_pages == 0 {
            return Err(Error::Parse("sealed index must have at least one node page".into()));
        }
        let mut first_nodes = Vec::with_capacity(node_pages as usize);
        for _ in 0..node_pages {
            meta.read_exact(&mut b4)?;
            first_nodes.push(u32::from_le_bytes(b4));
        }
        if first_nodes[0] != 0 || first_nodes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Parse("corrupt sealed page directory".into()));
        }
        let mut parts = [0u64; 4];
        for p in &mut parts {
            meta.read_exact(&mut b8)?;
            *p = u64::from_le_bytes(b8);
        }
        let encoded = MemBreakdown {
            vertebrae: parts[0],
            links: parts[1],
            ribs: parts[2],
            extribs: parts[3],
        };
        meta.read_exact(&mut b8)?;
        let overflow_count = u64::from_le_bytes(b8);
        let mut overflow: FxHashMap<u32, Vec<u8>> = FxHashMap::default();
        for _ in 0..overflow_count {
            meta.read_exact(&mut b4)?;
            let node = u32::from_le_bytes(b4);
            meta.read_exact(&mut b4)?;
            let mut bytes = vec![0u8; u32::from_le_bytes(b4) as usize];
            meta.read_exact(&mut bytes)?;
            overflow.insert(node, bytes);
        }

        // Optional trailing hot-tier section: a clean EOF here is a
        // pre-hot-tier sidecar (no hot tier); a partial section is corrupt.
        let mut hot_pages = 0u32;
        let mut hot_index: FxHashMap<u32, (u32, u16)> = FxHashMap::default();
        match meta.read_exact(&mut b4) {
            Ok(()) => {
                hot_pages = u32::from_le_bytes(b4);
                meta.read_exact(&mut b8)?;
                let count = u64::from_le_bytes(b8);
                let node_base = 1 + label_pages + node_pages;
                let mut b2s = [0u8; 2];
                for _ in 0..count {
                    meta.read_exact(&mut b4)?;
                    let node = u32::from_le_bytes(b4);
                    meta.read_exact(&mut b4)?;
                    let page = u32::from_le_bytes(b4);
                    meta.read_exact(&mut b2s)?;
                    let slot = u16::from_le_bytes(b2s);
                    if page < node_base || page >= node_base + hot_pages {
                        return Err(Error::Parse(format!(
                            "hot-tier entry for node {node} points outside the hot tier"
                        )));
                    }
                    hot_index.insert(node, (page, slot));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {}
            Err(e) => return Err(e.into()),
        }

        let mut pool = BufferPool::new(device, pool_pages.max(1), policy);
        // The device's own header page must agree — a v1 (or foreign)
        // device fails the per-page version check, not a misparse.
        pool.read(0, |b| -> Result<()> {
            PageHeader::checked(b, slotted::kind::FILE_HEADER)?;
            let at = slotted::PAGE_HEADER_LEN;
            if &b[at..at + 4] != SEALED_MAGIC {
                return Err(Error::Parse("bad sealed device magic".into()));
            }
            let v = u16::from_le_bytes([b[at + 4], b[at + 5]]);
            if v != DISK_FORMAT_VERSION {
                return Err(Error::FormatVersion { found: v, expected: DISK_FORMAT_VERSION });
            }
            Ok(())
        })??;

        pool.set_read_ahead(SCAN_READ_AHEAD);
        let per_word = (64 / bits) as usize;
        Ok(DiskSpine {
            layout: Layout::new(&alphabet),
            alphabet,
            store: Mutex::new(Store::Sealed(SealedStore {
                pool,
                bits,
                packed_compare,
                label_pages,
                node_pages,
                hot_pages,
                label_words: len.div_ceil(per_word),
                first_nodes: Arc::new(first_nodes),
                hot_index: Arc::new(hot_index),
                overflow,
                encoded,
            })),
            spill: Mutex::new(FxHashMap::default()),
            spill_count: AtomicU64::new(0),
            len,
            counters: Counters::new(),
            telemetry: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Spine;
    use pagestore::{Lru, MemDevice, PrefixPriority};

    fn disk(text: &[u8], pool_pages: usize) -> (Alphabet, DiskSpine) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let d = DiskSpine::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            pool_pages,
            Box::<Lru>::default(),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn build_with_stats_matches_memory_engine_and_counts_spills() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA";
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let (d, st) = DiskSpine::build_with_stats(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        let (_, mem_stats) = Spine::build_with_stats(a, &codes).unwrap();
        // The structural event stream is representation-independent.
        assert_eq!(st.counts(), mem_stats.counts());
        assert_eq!(st.extrib_spills, d.spill_count());
        // PageFlush was timed, and the logical footprint is non-trivial.
        assert!(st.phase_nanos[BuildPhase::PageFlush.index()] > 0);
        assert_eq!(st.mem.vertebrae, text.len() as u64 + 1);
        assert!(st.mem.total() > st.mem.vertebrae);
    }

    #[test]
    fn equivalent_to_reference() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA";
        let (a, d) = disk(text, 4);
        let r = Spine::build_from_bytes(a.clone(), text).unwrap();
        for node in 0..=r.len() as u32 {
            assert_eq!(r.vertebra_out(node), d.vertebra_out(node), "vertebra {node}");
            if node != ROOT {
                assert_eq!(r.link_of(node), d.link_of(node), "link {node}");
            }
            for code in 0..a.code_space() as Code {
                assert_eq!(r.rib_of(node, code), d.rib_of(node, code), "rib {node}/{code}");
            }
        }
    }

    #[test]
    fn queries_under_memory_pressure() {
        // A single-frame pool forces page traffic on every hop.
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = disk(&text, 1);
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }
        let q = a.encode(b"TTACGACCACAACAGGAACC").unwrap();
        assert_eq!(
            MatchingIndex::maximal_matches(&r, &q, 3),
            MatchingIndex::maximal_matches(&d, &q, 3)
        );
        let (reads, writes) = d.io_counts();
        assert!(reads > 0 && writes > 0, "pressure must cause I/O");
    }

    #[test]
    fn prefix_priority_keeps_hit_rate_healthy() {
        // With the prefix-priority policy the upstream pages stay resident;
        // the hit rate should be healthy even with a small pool.
        let text = b"ACGTACGGTACGTTTACGACGACCAACC".repeat(16);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let d = DiskSpine::build(
            a,
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<PrefixPriority>::default(),
        )
        .unwrap();
        assert!(d.hit_rate() > 0.5, "hit rate {}", d.hit_rate());
    }

    #[test]
    fn flush_persists_everything() {
        let (_, d) = disk(b"ACGTACGT", 2);
        d.flush().unwrap();
        let (_, writes) = d.io_counts();
        assert!(writes > 0);
    }

    #[test]
    fn rejects_bad_code() {
        let a = Alphabet::dna();
        let mut d =
            DiskSpine::new(a, Box::new(MemDevice::new()), 2, Box::<Lru>::default()).unwrap();
        assert!(d.push(9).is_err());
    }

    #[test]
    fn disk_spine_is_send_and_sync() {
        // The query engine serves a DiskSpine from multiple workers; this
        // holds because the device, policy, and spill counter are all
        // Send/Sync-compatible now.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskSpine>();
    }

    #[test]
    fn telemetry_accounts_pages_and_pool_state() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = disk(&text, 1); // single-frame pool: every hop touches a page
        let reg = MetricsRegistry::new();
        d.attach_telemetry(&reg);
        d.try_find_all(&a.encode(b"ACGACG").unwrap()).unwrap();
        d.try_locate(&a.encode(b"CA").unwrap()).unwrap();
        let snap = reg.snapshot();
        let pages = snap.histogram("disk.pages_per_query").unwrap();
        assert_eq!(pages.count, 2);
        assert!(pages.max > 0, "queries under pressure must touch pages");
        // Pool gauges are live views of the same pool the queries used.
        let hits = snap.gauge("disk.pool.hits").unwrap();
        let misses = snap.gauge("disk.pool.misses").unwrap();
        let (h, m) = d.pool_counts();
        assert_eq!((hits, misses), (h, m));
        assert!(snap.gauge("disk.pool.evictions").unwrap() > 0);
        // Registered at attach time (counts consultations of the side
        // table, i.e. extrib lookups the inline slots could not answer).
        assert!(snap.counter("disk.spill_lookups").is_some());
    }

    #[test]
    fn explain_attributes_page_fetches() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = disk(&text, 1); // single-frame pool: every hop faults
        let codes = a.encode(&text).unwrap();
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"TACGACG", b"TTTT"] {
            let p = a.encode(p).unwrap();
            let dt = d.explain(&p);
            dt.verify_against_text(&codes).unwrap();
            // Same logical traversal as the reference engine; pages are the
            // only physical difference.
            assert_eq!(dt.structural_events(), r.explain(&p).structural_events());
            let (hits, misses) = dt.page_fetches();
            assert!(hits + misses > 0, "a single-frame pool must show traffic");
        }
    }

    #[test]
    fn try_find_all_matches_infallible_surface() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(4);
        let (a, d) = disk(&text, 2);
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG", b""] {
            let p = a.encode(p).unwrap();
            assert_eq!(d.try_find_all(&p).unwrap(), StringIndex::find_all(&d, &p));
        }
    }

    /// A heatmap-derived hot set from a small query workload.
    fn hot_from_workload(d: &DiskSpine, a: &Alphabet, pats: &[&[u8]]) -> HotSet {
        let mut hm = crate::trace::Heatmap::new(d.len());
        for p in pats {
            hm.add(&d.explain(&a.encode(p).unwrap()));
        }
        HotSet::from_heatmap(&hm, 64)
    }

    #[test]
    fn clustered_seal_redirects_hot_nodes_and_preserves_answers() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(12);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let mutable = DiskSpine::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            32,
            Box::<Lru>::default(),
        )
        .unwrap();
        let plain = mutable.seal_to(Box::new(MemDevice::new()), 8, Box::<Lru>::default()).unwrap();
        let hot = hot_from_workload(&plain, &a, &[b"CA", b"ACGACG", b"AACC"]);
        assert!(!hot.is_empty());
        let clustered = mutable
            .seal_to_clustered(Box::new(MemDevice::new()), 8, Box::<Lru>::default(), &hot)
            .unwrap();
        assert!(clustered.hot_tier_pages() > 0, "the hot set must land on hot pages");
        assert_eq!(
            clustered.file_pages().unwrap(),
            plain.file_pages().unwrap() + clustered.hot_tier_pages() as u64,
        );
        // The hottest node's reads are redirected past the base node pages.
        let hottest = hot.nodes().next().unwrap();
        assert!(
            clustered.page_of_node(hottest) as u64 >= plain.file_pages().unwrap(),
            "hot node must be served from the appended tier"
        );
        // Answers and decoded structure are bit-identical either way.
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG", b"AACCACAACA"] {
            let p = a.encode(p).unwrap();
            assert_eq!(clustered.try_find_all(&p).unwrap(), plain.try_find_all(&p).unwrap());
        }
        assert_eq!(clustered.sealed_census().unwrap(), plain.sealed_census().unwrap());
    }

    #[test]
    fn pinned_pages_survive_backbone_scans() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(16);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let sealed = DiskSpine::build_sealed(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            6,
            Box::<Lru>::default(),
        )
        .unwrap();
        let pinned = sealed.pin_hot_prefix(3).unwrap();
        assert!(pinned > 0, "a prefix page must pin");
        assert_eq!(sealed.pinned_pages(), pinned);
        // A full-backbone occurrence scan cannot flush the pinned set.
        let p = a.encode(b"CA").unwrap();
        assert!(!sealed.try_find_all(&p).unwrap().is_empty());
        assert_eq!(sealed.pinned_pages(), pinned);
        assert_eq!(sealed.pool_stats().pinned, pinned as u64);
        assert_eq!(sealed.unpin_all(), pinned);
        assert_eq!(sealed.pinned_pages(), 0);
    }

    #[test]
    fn occurrence_scan_prefetches_and_scores_hits() {
        let text = b"ACGTACGGTACGTTTACGACGACCAACC".repeat(512);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let sealed = DiskSpine::build_sealed(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        let p = a.encode(b"ACGT").unwrap();
        assert!(!sealed.try_find_all(&p).unwrap().is_empty());
        let st = sealed.pool_stats();
        assert!(st.prefetched > 0, "the backbone scan must prefetch ahead: {st:?}");
        assert!(st.prefetch_hits > 0, "prefetched pages must be consumed: {st:?}");
    }

    #[test]
    fn prefetch_nodes_warms_the_pool() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(512);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let sealed = DiskSpine::build_sealed(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let nodes: Vec<NodeId> = (0..sealed.len() as NodeId).step_by(97).collect();
        let loaded = sealed.prefetch_nodes(&nodes).unwrap();
        assert!(loaded > 0, "cold pool: prefetch must load pages");
        // Prefetching pages that are still resident is a no-op. The big sweep
        // above evicted its own early pages (file >> pool), so re-check with a
        // small set that fits the pool: load it, then load it again.
        let warm = &nodes[nodes.len() - 2..];
        sealed.prefetch_nodes(warm).unwrap();
        assert_eq!(sealed.prefetch_nodes(warm).unwrap(), 0);
    }

    #[test]
    fn page_map_attributes_every_node_within_the_file() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let (_, mutable) = disk(&text, 4);
        let sealed = DiskSpine::build_sealed(
            a,
            &codes,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let mm = mutable.page_map();
        let sm = sealed.page_map();
        let pages = sealed.file_pages().unwrap();
        for node in 0..=sealed.len() as NodeId {
            assert!((sm.page_of(node) as u64) < pages, "node {node} outside the sealed file");
            // Uniform mapping agrees with the PagedVec geometry.
            assert_eq!(mm.page_of(node), (node as usize / mm_records(&mm)) as u32);
        }
        // Sealed pages are monotone in node order (no hot tier here).
        let mut last = 0;
        for node in 0..=sealed.len() as NodeId {
            let p = sm.page_of(node);
            assert!(p >= last);
            last = p;
        }
    }

    fn mm_records(m: &PageMap) -> usize {
        match m {
            PageMap::Uniform { records_per_page } => *records_per_page,
            PageMap::Sealed { .. } => panic!("expected the uniform mapping"),
        }
    }
}

#[cfg(test)]
mod v2_codec_tests {
    use super::v2::{self, NodeRecord};
    use super::*;
    use proptest::prelude::*;

    fn rt(node: u32, rec: &NodeRecord) -> Vec<u8> {
        let mut buf = Vec::new();
        let (link_b, ribs_b) = v2::encode(node, rec, &mut buf);
        assert!(link_b >= 2 && link_b + ribs_b <= buf.len());
        buf
    }

    #[test]
    fn empty_record_round_trips() {
        let rec = NodeRecord::default();
        let buf = rt(7, &rec);
        assert_eq!(buf, vec![0, 0, 0, 0], "two zero link varints + two zero counts");
        assert_eq!(v2::decode(7, &buf).unwrap(), rec);
        assert_eq!(v2::decode_link(&buf).unwrap(), (0, 0));
        assert_eq!(v2::find_rib(&buf, 7, 3).unwrap(), None);
        assert_eq!(v2::find_extrib(&buf, 7, 9).unwrap(), None);
    }

    #[test]
    fn max_degree_record_round_trips() {
        // A bytes-alphabet node can fan out one rib per code (254) plus a
        // long extrib chain — the worst record v2 must carry inline.
        let node = 1000u32;
        let rec = NodeRecord {
            link: (u32::MAX, u32::MAX),
            ribs: (0..254u32).map(|i| (i as Code, node + 1 + i, i * 17)).collect(),
            extribs: (0..40u32).map(|i| (i * 3, i * 5, node + 300 + i)).collect(),
        };
        let buf = rt(node, &rec);
        assert!(buf.len() <= slotted::MAX_RECORD_LEN, "max-degree record fits one page slot");
        assert_eq!(v2::decode(node, &buf).unwrap(), rec);
        assert_eq!(v2::decode_link(&buf).unwrap(), rec.link);
        for &(cl, dest, pt) in &rec.ribs {
            assert_eq!(v2::find_rib(&buf, node, cl).unwrap(), Some((dest, pt)));
        }
        for &(prt, pt, dest) in &rec.extribs {
            assert_eq!(v2::find_extrib(&buf, node, prt).unwrap(), Some((dest, pt)));
        }
        assert_eq!(v2::find_rib(&buf, node, 255).unwrap(), None);
    }

    #[test]
    fn every_strict_prefix_is_rejected_cleanly() {
        let node = 42u32;
        let rec = NodeRecord {
            link: (300, 7),
            ribs: vec![(0, 43, 1), (2, 99999, 500)],
            extribs: vec![(1, 2, 44), (128, 300, 45)],
        };
        let buf = rt(node, &rec);
        for cut in 0..buf.len() {
            assert!(v2::decode(node, &buf[..cut]).is_err(), "prefix of {cut} bytes must fail");
        }
        // Trailing garbage is rejected too.
        let mut long = buf.clone();
        long.push(0);
        assert!(v2::decode(node, &long).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn random_records_round_trip(
            node in 0u32..1_000_000,
            link_dest in 0u32..2_000_000,
            lel in 0u32..1_000_000,
            ribs in proptest::collection::vec((0u32..=255, 1u32..100_000, 0u32..1_000_000), 0..12),
            extribs in proptest::collection::vec((0u32..500_000, 0u32..500_000, 1u32..100_000), 0..10),
        ) {
            // Unique rib labels / chain prts, as the build guarantees.
            let mut seen = std::collections::HashSet::new();
            let ribs: Vec<(Code, u32, u32)> = ribs
                .into_iter()
                .filter(|&(cl, _, _)| seen.insert(cl))
                .map(|(cl, delta, pt)| (cl as Code, node + delta, pt))
                .collect();
            let mut seen = std::collections::HashSet::new();
            let extribs: Vec<(u32, u32, u32)> = extribs
                .into_iter()
                .filter(|&(prt, _, _)| seen.insert(prt))
                .map(|(prt, pt, delta)| (prt, pt, node + delta))
                .collect();
            let rec = NodeRecord { link: (link_dest, lel), ribs, extribs };
            let buf = rt(node, &rec);
            prop_assert_eq!(v2::decode(node, &buf).unwrap(), rec.clone());
            prop_assert_eq!(v2::decode_link(&buf).unwrap(), rec.link);
            for &(cl, dest, pt) in &rec.ribs {
                prop_assert_eq!(v2::find_rib(&buf, node, cl).unwrap(), Some((dest, pt)));
            }
            for &(prt, pt, dest) in &rec.extribs {
                prop_assert_eq!(v2::find_extrib(&buf, node, prt).unwrap(), Some((dest, pt)));
            }
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(0u8..=255, 0..64),
            node in 0u32..1_000_000,
        ) {
            // Any outcome is fine except a panic or a nonsensical Ok: if it
            // decodes, re-encoding must reproduce the input exactly.
            if let Ok(rec) = v2::decode(node, &bytes) {
                let mut out = Vec::new();
                v2::encode(node, &rec, &mut out);
                prop_assert_eq!(out, bytes);
            }
            let _ = v2::decode_link(&bytes);
            let _ = v2::find_rib(&bytes, node, 0);
            let _ = v2::find_extrib(&bytes, node, 0);
        }
    }
}

#[cfg(test)]
mod sealed_tests {
    use super::*;
    use crate::build::Spine;
    use pagestore::{FaultyDevice, Lru, MemDevice};

    fn seal(text: &[u8], pool_pages: usize) -> (Alphabet, DiskSpine) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let d = DiskSpine::build_sealed(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            pool_pages,
            Box::<Lru>::default(),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn sealed_equals_reference_engine() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA".repeat(4);
        let (a, d) = seal(&text, 4);
        assert!(d.is_sealed());
        assert!(d.file_pages().is_some());
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG", b"AACCACAACA", b"", b"TTTTT"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
            assert_eq!(StringIndex::find_first(&r, &p), StringIndex::find_first(&d, &p));
            assert_eq!(d.try_find_all(&p).unwrap(), StringIndex::find_all(&d, &p));
        }
        for pos in [0, 1, text.len() - 1] {
            assert_eq!(StringIndex::symbol_at(&r, pos), StringIndex::symbol_at(&d, pos));
        }
        let q = a.encode(b"TTACGACCACAACAGGAACC").unwrap();
        assert_eq!(
            MatchingIndex::maximal_matches(&r, &q, 3),
            MatchingIndex::maximal_matches(&d, &q, 3)
        );
        assert_eq!(
            MatchingIndex::matching_statistics(&r, &q),
            MatchingIndex::matching_statistics(&d, &q)
        );
    }

    #[test]
    fn sealed_structure_is_node_identical_to_reference() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA";
        let (a, d) = seal(text, 4);
        let r = Spine::build_from_bytes(a.clone(), text).unwrap();
        for node in 0..=r.len() as u32 {
            assert_eq!(r.vertebra_out(node), d.vertebra_out(node), "vertebra {node}");
            if node != ROOT {
                assert_eq!(r.link_of(node), d.link_of(node), "link {node}");
            }
            for code in 0..a.code_space() as Code {
                assert_eq!(r.rib_of(node, code), d.rib_of(node, code), "rib {node}/{code}");
            }
        }
    }

    #[test]
    fn packed_compare_widths_per_alphabet() {
        // DNA: 2-bit words; protein: 5-bit; bytes: bit-tight store but
        // scalar compare.
        let (_, d) = seal(b"ACGTACGTTTGG", 4);
        assert_eq!(FallibleSpineOps::backbone_packing(&d), Some(2));

        let a = Alphabet::protein();
        let codes = a.encode(b"MKVLAARDWYHQCGGG").unwrap();
        let d = DiskSpine::build_sealed(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(FallibleSpineOps::backbone_packing(&d), Some(5));
        let r = Spine::build(a.clone(), &codes).unwrap();
        for p in [&b"VLA"[..], b"GGG", b"MKVLA", b"WWW"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }

        let a = Alphabet::bytes();
        let codes = a.encode(b"mississippi$mississippi").unwrap();
        let d = DiskSpine::build_sealed(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(FallibleSpineOps::backbone_packing(&d), None);
        let r = Spine::build(a.clone(), &codes).unwrap();
        for p in [&b"issi"[..], b"ppi$m", b"zzz"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }
    }

    #[test]
    fn separator_in_text_disables_packed_compare_but_not_queries() {
        // A DNA concatenation with document separators cannot pack at
        // 2 bits; the seal falls back to a 3-bit scalar-compared store.
        let a = Alphabet::dna();
        let sep = a.separator();
        let mut codes = a.encode(b"ACGTACGT").unwrap();
        codes.push(sep);
        codes.extend(a.encode(b"TTACG").unwrap());
        let mut src =
            DiskSpine::new(a.clone(), Box::new(MemDevice::new()), 8, Box::<Lru>::default())
                .unwrap();
        for &c in &codes {
            src.push(c).unwrap();
        }
        let patterns: Vec<Vec<Code>> =
            [&b"ACG"[..], b"TTACG", b"GTT"].iter().map(|p| a.encode(p).unwrap()).collect();
        let before: Vec<_> = patterns.iter().map(|p| StringIndex::find_all(&src, p)).collect();
        let d = src.seal_to(Box::new(MemDevice::new()), 4, Box::<Lru>::default()).unwrap();
        assert_eq!(FallibleSpineOps::backbone_packing(&d), None);
        for (p, want) in patterns.iter().zip(&before) {
            assert_eq!(&StringIndex::find_all(&d, p), want);
        }
    }

    #[test]
    fn word_boundary_patterns_match_reference() {
        // DNA packs 32 symbols per word; sweep pattern starts and lengths
        // across the word boundary so every phase of the two-shift window
        // assembly is exercised at the engine level.
        let text: Vec<u8> = (0..200).map(|i: usize| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
        let (a, d) = seal(&text, 4);
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for start in [0usize, 1, 30, 31, 32, 33, 63, 64, 65] {
            for len in [0usize, 1, 2, 31, 32, 33, 64, 65] {
                if start + len > text.len() {
                    continue;
                }
                let p = a.encode(&text[start..start + len]).unwrap();
                assert_eq!(
                    StringIndex::find_all(&r, &p),
                    StringIndex::find_all(&d, &p),
                    "start {start} len {len}"
                );
            }
        }
        // Near-miss patterns that diverge at each offset within a word.
        for flip in [0usize, 1, 31, 32, 33] {
            let mut q = text[..40].to_vec();
            q[flip] = if q[flip] == b'A' { b'C' } else { b'A' };
            let p = a.encode(&q).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }
    }

    #[test]
    fn sealed_under_memory_pressure() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = seal(&text, 1); // single-frame pool
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }
        let (reads, _) = d.io_counts();
        assert!(reads > 0, "pressure must cause reads");
    }

    #[test]
    fn sealed_rejects_appends() {
        let (_, mut d) = seal(b"ACGTACGT", 2);
        assert!(matches!(d.push(0), Err(Error::Unsupported(_))));
        assert!(matches!(
            d.push_observed(0, &mut crate::observe::NoBuildObserver),
            Err(Error::Unsupported(_))
        ));
        // Still fully queryable afterwards.
        let a = Alphabet::dna();
        assert_eq!(StringIndex::find_all(&d, &a.encode(b"CGT").unwrap()), vec![1, 5]);
    }

    #[test]
    fn census_reconciles_with_build_stats() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA".repeat(3);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let (src, st) = DiskSpine::build_with_stats(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let d = src.seal_to(Box::new(MemDevice::new()), 4, Box::<Lru>::default()).unwrap();
        let census = d.sealed_census().unwrap();
        assert_eq!(census.nodes, codes.len() as u64 + 1);
        assert_eq!(census.ribs, st.ribs_created);
        // Spilled extribs are folded into the sealed records, so the
        // decoded total equals everything the build created.
        assert_eq!(census.extribs, st.extribs_created);
        assert_eq!(census.overflow_records, 0);
        assert_eq!(d.spill_count(), 0);
        // A mutable index has no census.
        assert!(matches!(src.sealed_census(), Err(Error::Unsupported(_))));
    }

    #[test]
    fn oversized_record_takes_the_overflow_path() {
        let text = b"AACCACAACAGGTTACGACGACCA";
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let src = DiskSpine::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        // Graft an absurd extrib chain onto node 3 via the spill table:
        // prts far outside any real pathlength, so queries never take them,
        // but the encoded record blows past MAX_RECORD_LEN.
        let grafts: Vec<(u32, u32, u32)> =
            (0..2000u32).map(|i| (10_000_000 + i, 5, 4 + i % 7)).collect();
        src.spill.lock().insert(3, grafts.clone());
        let d = src.seal_to(Box::new(MemDevice::new()), 4, Box::<Lru>::default()).unwrap();
        let census = d.sealed_census().unwrap();
        assert_eq!(census.overflow_records, 1);
        assert!(census.extribs >= 2000);
        // The overflow record answers point lookups like any other.
        for &(prt, pt, dest) in grafts.iter().step_by(500) {
            assert_eq!(d.find_extrib(3, prt).unwrap(), Some((dest, pt)));
        }
        // And ordinary queries still agree with the reference.
        let r = Spine::build_from_bytes(a.clone(), text).unwrap();
        for p in [&b"CA"[..], b"ACCA", b"GGTT"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }
    }

    #[test]
    fn failed_seal_leaves_source_intact() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(2);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let src = DiskSpine::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let dead = FaultyDevice::new(MemDevice::new(), 0);
        assert!(src.seal_to(Box::new(dead), 4, Box::<Lru>::default()).is_err());
        assert!(!src.is_sealed());
        let p = a.encode(b"ACGACG").unwrap();
        let r = Spine::build(a.clone(), &codes).unwrap();
        assert_eq!(StringIndex::find_all(&src, &p), StringIndex::find_all(&r, &p));
    }

    #[test]
    fn sealing_cuts_bytes_per_node() {
        let text = b"AACCACAACAGGTTACGACGACCAACGTGTACCACA".repeat(64);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let src = DiskSpine::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            32,
            Box::<Lru>::default(),
        )
        .unwrap();
        let mutable_mem = src.mem_breakdown();
        let mutable_pages = (codes.len() + 1).div_ceil(PAGE_SIZE / src.layout.record_size()) as u64;
        let d = src.seal_to(Box::new(MemDevice::new()), 8, Box::<Lru>::default()).unwrap();
        let sealed_pages = d.file_pages().unwrap();
        let nodes = codes.len() as u64 + 1;
        assert!(
            sealed_pages * 3 < mutable_pages,
            "sealed {sealed_pages} pages vs mutable {mutable_pages}"
        );
        let sealed_mem = d.mem_breakdown();
        assert!(
            sealed_mem.total() * 3 < mutable_mem.total(),
            "sealed {} bytes vs mutable {}",
            sealed_mem.total(),
            mutable_mem.total()
        );
        // The headline number: < 10 encoded bytes per node for DNA, vs the
        // 80-byte fixed record of the mutable layout.
        assert!(sealed_mem.bytes_per_node(nodes) < 10.0);
    }

    #[test]
    fn empty_and_tiny_texts_seal() {
        let a = Alphabet::dna();
        let d = DiskSpine::build_sealed(
            a.clone(),
            &[],
            Box::new(MemDevice::new()),
            2,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
        assert_eq!(d.file_pages(), Some(2)); // header + one (root-only) node page
        assert_eq!(StringIndex::find_all(&d, &a.encode(b"A").unwrap()), Vec::<usize>::new());
        assert_eq!(d.sealed_census().unwrap().nodes, 1);

        let d = DiskSpine::build_sealed(
            a.clone(),
            &a.encode(b"G").unwrap(),
            Box::new(MemDevice::new()),
            2,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(StringIndex::find_all(&d, &a.encode(b"G").unwrap()), vec![0]);
        assert_eq!(StringIndex::find_all(&d, &a.encode(b"C").unwrap()), Vec::<usize>::new());
        assert_eq!(StringIndex::symbol_at(&d, 0), a.encode(b"G").unwrap()[0]);
    }

    #[test]
    fn resealing_a_sealed_index_is_lossless() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(3);
        let (a, d1) = seal(&text, 4);
        let d2 = d1.seal_to(Box::new(MemDevice::new()), 4, Box::<Lru>::default()).unwrap();
        assert_eq!(d1.sealed_census().unwrap(), d2.sealed_census().unwrap());
        for p in [&b"CA"[..], b"ACCAA", b"TACGACG"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&d1, &p), StringIndex::find_all(&d2, &p));
        }
    }

    #[test]
    fn sealed_explain_matches_reference_structure() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(4);
        let (a, d) = seal(&text, 1); // single-frame pool: every hop faults
        let codes = a.encode(&text).unwrap();
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"TACGACG", b"TTTT"] {
            let p = a.encode(p).unwrap();
            let dt = d.explain(&p);
            dt.verify_against_text(&codes).unwrap();
            assert_eq!(dt.structural_events(), r.explain(&p).structural_events());
            let (hits, misses) = dt.page_fetches();
            assert!(hits + misses > 0, "a single-frame pool must show traffic");
        }
    }

    #[test]
    fn sealed_telemetry_accounts_pages() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = seal(&text, 1);
        let reg = MetricsRegistry::new();
        d.attach_telemetry(&reg);
        d.try_find_all(&a.encode(b"ACGACG").unwrap()).unwrap();
        d.try_locate(&a.encode(b"CA").unwrap()).unwrap();
        let snap = reg.snapshot();
        let pages = snap.histogram("disk.pages_per_query").unwrap();
        assert_eq!(pages.count, 2);
        assert!(pages.max > 0);
        let (h, m) = d.pool_counts();
        assert_eq!(snap.gauge("disk.pool.hits").unwrap(), h);
        assert_eq!(snap.gauge("disk.pool.misses").unwrap(), m);
    }

    #[test]
    fn packed_counters_match_scalar_totals() {
        // The packed fast path must account runs exactly like the scalar
        // walk: same nodes_checked / edges totals for the same queries.
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(4);
        let (a, d) = seal(&text, 8);
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"ACGACGACCA"[..], b"AACCACAACAGGTT", b"CA", b"GGTTAC"] {
            let p = a.encode(p).unwrap();
            d.counters().reset();
            r.counters().reset();
            assert_eq!(d.try_locate(&p).unwrap(), crate::search::locate(&r, &p));
            assert_eq!(
                d.counters().nodes_checked(),
                r.counters().nodes_checked(),
                "node checks for {p:?}"
            );
            assert_eq!(
                d.counters().edges_traversed(),
                r.counters().edges_traversed(),
                "edges {p:?}"
            );
        }
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;
    use pagestore::{FileDevice, Lru, MemDevice};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spine-reopen-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("dev-{tag}-{}.pages", std::process::id()))
    }

    #[test]
    fn seal_flush_reopen_query() {
        let a = Alphabet::dna();
        let text = a.encode(&b"AACCACAACAGGTTACGACGACCA".repeat(16)).unwrap();
        let dev_path = temp_path("v2");
        let built = DiskSpine::build_sealed(
            a.clone(),
            &text,
            Box::new(FileDevice::create(&dev_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let mut meta = Vec::new();
        built.write_meta(&mut meta).unwrap();
        let before: Vec<usize> = StringIndex::find_all(&built, &a.encode(b"ACGACG").unwrap());
        let census_before = built.sealed_census().unwrap();
        drop(built);

        let reopened = DiskSpine::reopen(
            &mut meta.as_slice(),
            Box::new(FileDevice::open(&dev_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert!(reopened.is_sealed());
        assert_eq!(reopened.len(), text.len());
        // The packed compare survives the round trip.
        assert_eq!(FallibleSpineOps::backbone_packing(&reopened), Some(2));
        assert_eq!(StringIndex::find_all(&reopened, &a.encode(b"ACGACG").unwrap()), before);
        assert_eq!(reopened.sealed_census().unwrap(), census_before);
        // Full equivalence against a fresh in-memory build.
        let r = crate::Spine::build(a.clone(), &text).unwrap();
        let q = a.encode(b"TTACGACCACAACAGG").unwrap();
        assert_eq!(
            MatchingIndex::maximal_matches(&r, &q, 3),
            MatchingIndex::maximal_matches(&reopened, &q, 3)
        );
        std::fs::remove_file(&dev_path).ok();
    }

    #[test]
    fn v1_meta_reports_rebuild_required_and_rebuild_recovers() {
        let a = Alphabet::dna();
        let text = a.encode(&b"AACCACAACAGGTTACGACGACCA".repeat(4)).unwrap();
        // A legacy (mutable-layout) artifact: v1 device + v1 sidecar.
        let v1_path = temp_path("v1");
        let old = DiskSpine::build(
            a.clone(),
            &text,
            Box::new(FileDevice::create(&v1_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        old.flush().unwrap();
        let mut v1_meta = Vec::new();
        old.write_meta(&mut v1_meta).unwrap();
        let expected: Vec<usize> = StringIndex::find_all(&old, &a.encode(b"ACGACG").unwrap());
        drop(old);

        // The v2 engine refuses it with the typed version error — no
        // panic, no silent misparse.
        let err = DiskSpine::reopen(
            &mut v1_meta.as_slice(),
            Box::new(FileDevice::open(&v1_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .err()
        .expect("v1 meta must be rejected");
        assert!(matches!(err, Error::FormatVersion { found: 1, expected: 2 }), "got {err:?}");
        assert!(err.to_string().contains("rebuild required"), "{err}");

        // Even a v2 sidecar cannot smuggle in a v1 device: the header page
        // fails its per-page version check.
        let sealed_mem = DiskSpine::build_sealed(
            a.clone(),
            &text,
            Box::new(MemDevice::new()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let mut v2_meta = Vec::new();
        sealed_mem.write_meta(&mut v2_meta).unwrap();
        let err = DiskSpine::reopen(
            &mut v2_meta.as_slice(),
            Box::new(FileDevice::open(&v1_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .err()
        .expect("v1 device must be rejected");
        assert!(matches!(err, Error::FormatVersion { .. } | Error::Parse(_)), "got {err:?}");

        // The recovery path: rebuild sealed, write fresh meta, reopen.
        let v2_path = temp_path("rebuilt");
        let rebuilt = DiskSpine::build_sealed(
            a.clone(),
            &text,
            Box::new(FileDevice::create(&v2_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        let mut meta = Vec::new();
        rebuilt.write_meta(&mut meta).unwrap();
        drop(rebuilt);
        let reopened = DiskSpine::reopen(
            &mut meta.as_slice(),
            Box::new(FileDevice::open(&v2_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(StringIndex::find_all(&reopened, &a.encode(b"ACGACG").unwrap()), expected);
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn reopen_rejects_garbage_meta() {
        let dev = Box::new(MemDevice::new());
        assert!(DiskSpine::reopen(&mut &b"JUNKJUNK"[..], dev, 2, Box::<Lru>::default()).is_err());
    }
}
