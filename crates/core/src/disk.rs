//! Page-resident SPINE (the paper's §6.2 disk experiments).
//!
//! Node records are striped over pages behind a bounded buffer pool
//! ([`pagestore`]); construction and search perform real page traffic, so
//! the pool's hit rate and the device's read/write counts expose SPINE's
//! locality — the effect behind the paper's 2× on-disk speedups (Figure 7,
//! Table 7). The paper's "simple buffering strategy" (keep the top of the
//! Link Table resident) is available as
//! [`pagestore::PrefixPriority`]; the `exp buffering` experiment compares it
//! against LRU/FIFO/Clock under memory pressure.
//!
//! The record layout is the *generic* one the paper uses for its disk runs
//! ("without any extra disk-specific optimization"): one fixed-size record
//! per node holding the vertebra label, link, rib slots, and two extrib
//! slots (more spill to an in-memory side table, counted in
//! [`DiskSpine::spill_count`]).
//!
//! All query algorithms are the shared generic ones ([`crate::ops`]);
//! `SpineOps` takes `&self`, so the pool lives behind a mutex.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

use crate::node::{NodeId, ROOT};
use crate::observe::{BuildEvent, BuildObserver, BuildPhase, BuildStats, MemBreakdown};
use crate::ops::{FallibleSpineOps, SpineOps};
use pagestore::{CacheStats, EvictionPolicy, PageDevice, PagedVec};
use parking_lot::Mutex;
use strindex::telemetry::{Counter, Histogram, MetricsRegistry};
use strindex::{
    Alphabet, Code, Counters, Error, FxHashMap, MatchingIndex, MatchingStats, MaximalMatch,
    OnlineIndex, Result, StringIndex,
};

/// Inline extrib slots per record; chains are short (Table 4's steep decay),
/// so two suffice for almost every node.
const EXTRIB_SLOTS: usize = 2;

/// Spilled extribs of one node: `(prt, pt, dest)` triples.
type SpillEntry = Vec<(u32, u32, u32)>;

/// Byte offsets within a node record (little-endian fields):
/// `cl:1 | link:4 | lel:4 | rib_count:1 | ribs: R×(cl 1, dest 4, pt 4) |
/// extrib_count:1 | extribs: 2×(dest 4, pt 4, prt 4)`.
struct Layout {
    rib_slots: usize,
}

impl Layout {
    fn new(alphabet: &Alphabet) -> Self {
        Layout { rib_slots: alphabet.code_space() }
    }

    fn record_size(&self) -> usize {
        1 + 4 + 4 + 1 + self.rib_slots * 9 + 1 + EXTRIB_SLOTS * 12
    }

    fn rib_off(&self, i: usize) -> usize {
        10 + i * 9
    }

    fn extrib_count_off(&self) -> usize {
        10 + self.rib_slots * 9
    }

    fn extrib_off(&self, i: usize) -> usize {
        self.extrib_count_off() + 1 + i * 12
    }
}

fn get_u32(r: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(r[off..off + 4].try_into().unwrap())
}

fn put_u32(r: &mut [u8], off: usize, v: u32) {
    r[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Registry handles for per-query disk accounting
/// ([`DiskSpine::attach_telemetry`]).
struct DiskTelemetry {
    /// The pool's shared cache counters, sampled around each query to turn
    /// cumulative hits+misses into a per-query page-touch count.
    cache: Arc<CacheStats>,
    /// Pages touched per `try_locate`/`try_find_all` ("disk.pages_per_query").
    pages_per_query: Arc<Histogram>,
    /// Extrib lookups that fell through to the spill side table
    /// ("disk.spill_lookups").
    spill_lookups: Arc<Counter>,
}

/// A SPINE index whose node table lives on a page device.
pub struct DiskSpine {
    alphabet: Alphabet,
    layout: Layout,
    records: Mutex<PagedVec>,
    /// Extribs beyond the inline slots (rare; see module docs).
    spill: Mutex<FxHashMap<u32, SpillEntry>>,
    spill_count: AtomicU64,
    len: usize,
    counters: Counters,
    telemetry: OnceLock<DiskTelemetry>,
}

impl DiskSpine {
    /// An empty disk index over `alphabet`, storing records on `device`
    /// with a pool of `pool_pages` frames and the given eviction policy.
    pub fn new(
        alphabet: Alphabet,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let layout = Layout::new(&alphabet);
        let mut records = PagedVec::new(device, pool_pages, policy, layout.record_size());
        records.push_zeroed()?; // root
        Ok(DiskSpine {
            alphabet,
            layout,
            records: Mutex::new(records),
            spill: Mutex::new(FxHashMap::default()),
            spill_count: AtomicU64::new(0),
            len: 0,
            counters: Counters::new(),
            telemetry: OnceLock::new(),
        })
    }

    /// Build from an encoded text.
    pub fn build(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let mut s = Self::new(alphabet, device, pool_pages, policy)?;
        s.extend_from(text)?;
        Ok(s)
    }

    /// Build while reporting every structural event (plus disk-only spill
    /// events) to `observer`.
    pub fn build_observed<O: BuildObserver>(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
        observer: &mut O,
    ) -> Result<Self> {
        let mut s = Self::new(alphabet, device, pool_pages, policy)?;
        s.extend_from_observed(text, observer)?;
        Ok(s)
    }

    /// Build, flush, and return the index together with a reconciled
    /// [`BuildStats`] (the final flush is accounted to the PageFlush phase).
    pub fn build_with_stats(
        alphabet: Alphabet,
        text: &[Code],
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<(Self, BuildStats)> {
        let mut stats = BuildStats::default();
        let s = Self::build_observed(alphabet, text, device, pool_pages, policy, &mut stats)?;
        let t0 = std::time::Instant::now();
        s.flush()?;
        stats.phase(BuildPhase::PageFlush, t0.elapsed().as_nanos() as u64);
        stats.mem = s.mem_breakdown();
        Ok((s, stats))
    }

    /// Observed batch append: times the whole loop as the Scan phase.
    pub fn extend_from_observed<O: BuildObserver>(
        &mut self,
        codes: &[Code],
        observer: &mut O,
    ) -> Result<()> {
        let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
        for &c in codes {
            self.push_observed(c, observer)?;
        }
        if let Some(t0) = t0 {
            observer.phase(BuildPhase::Scan, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Observed online append (same validation as [`OnlineIndex::push`]).
    pub fn push_observed<O: BuildObserver>(&mut self, code: Code, observer: &mut O) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len });
        }
        self.append_observed(code, observer)
    }

    /// Bytes split by edge kind, derived from the fixed record layout
    /// (field spans × record count) plus the spill side table. This is the
    /// *logical* on-device footprint, not buffer-pool memory.
    pub fn mem_breakdown(&self) -> MemBreakdown {
        let records = (self.len + 1) as u64; // root included
        let l = &self.layout;
        MemBreakdown {
            vertebrae: records,                           // cl: 1 byte
            links: records * 8,                           // link + lel
            ribs: records * (1 + l.rib_slots as u64 * 9), // count + slots
            extribs: records * (1 + EXTRIB_SLOTS as u64 * 12)       // count + slots
                + self.spill.lock().values().map(|v| v.len() as u64 * 12).sum::<u64>(),
        }
    }

    /// Number of indexed characters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer-pool hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.records.lock().pool().hit_rate()
    }

    /// Cumulative buffer-pool (hits, misses).
    pub fn pool_counts(&self) -> (u64, u64) {
        let r = self.records.lock();
        (r.pool().hits(), r.pool().misses())
    }

    /// (reads, writes) page counts at the device.
    pub fn io_counts(&self) -> (u64, u64) {
        let r = self.records.lock();
        (r.io_stats().reads(), r.io_stats().writes())
    }

    /// Extribs that did not fit the inline record slots.
    pub fn spill_count(&self) -> u64 {
        self.spill_count.load(Relaxed)
    }

    /// Flush dirty pages to the device.
    pub fn flush(&self) -> Result<()> {
        self.records.lock().flush()
    }

    /// Work counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Wire this index's storage accounting into `registry`: the buffer
    /// pool's hit/miss/eviction counts as `disk.pool.*` gauges, pages
    /// touched per query as the `disk.pages_per_query` histogram, and spill
    /// side-table consultations as the `disk.spill_lookups` counter.
    ///
    /// Attach once, before serving; later calls keep the first hookup.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let records = self.records.lock();
        records.pool().attach_telemetry(registry, "disk.pool");
        let _ = self.telemetry.set(DiskTelemetry {
            cache: records.pool().stats_handle(),
            pages_per_query: registry.histogram("disk.pages_per_query"),
            spill_lookups: registry.counter("disk.spill_lookups"),
        });
    }

    /// Pool accesses so far, if telemetry is attached — the before/after
    /// sample that turns cumulative counters into a per-query delta.
    /// Concurrent queries share the counters, so a query racing others may
    /// attribute their page touches to itself; per-query numbers are exact
    /// in single-query flows (the `exp disk` experiments) and an upper
    /// bound under concurrency.
    fn sample_accesses(&self) -> Option<u64> {
        self.telemetry.get().map(|t| t.cache.snapshot().accesses())
    }

    fn record_query_pages(&self, before: Option<u64>) {
        if let (Some(t), Some(b)) = (self.telemetry.get(), before) {
            let after = t.cache.snapshot().accesses();
            t.pages_per_query.record_value(after.saturating_sub(b));
        }
    }

    // ----- record access ----------------------------------------------------
    //
    // Every accessor returns `Result`: the records live behind a buffer pool
    // over a fallible device, so any hop can surface an I/O error. The
    // fallible surface ([`FallibleSpineOps`], `try_find_all`) propagates
    // these; the legacy infallible traits unwrap at their boundary.

    fn read_cl(&self, node: u32) -> Result<Code> {
        self.records.lock().read(node as usize, |r| r[0])
    }

    fn read_link(&self, node: u32) -> Result<(u32, u32)> {
        self.records.lock().read(node as usize, |r| (get_u32(r, 1), get_u32(r, 5)))
    }

    fn find_rib(&self, node: u32, c: Code) -> Result<Option<(u32, u32)>> {
        let l = &self.layout;
        self.records.lock().read(node as usize, |r| {
            let count = r[9] as usize;
            for i in 0..count {
                let off = l.rib_off(i);
                if r[off] == c {
                    return Some((get_u32(r, off + 1), get_u32(r, off + 5)));
                }
            }
            None
        })
    }

    fn find_extrib(&self, node: u32, prt: u32) -> Result<Option<(u32, u32)>> {
        let l = &self.layout;
        let inline = self.records.lock().read(node as usize, |r| {
            let count = (r[l.extrib_count_off()] as usize).min(EXTRIB_SLOTS);
            for i in 0..count {
                let off = l.extrib_off(i);
                if get_u32(r, off + 8) == prt {
                    return Some((get_u32(r, off), get_u32(r, off + 4)));
                }
            }
            None
        })?;
        Ok(inline.or_else(|| {
            if let Some(t) = self.telemetry.get() {
                t.spill_lookups.incr();
            }
            self.spill
                .lock()
                .get(&node)
                .and_then(|v| v.iter().find(|&&(p, _, _)| p == prt).map(|&(_, pt, d)| (d, pt)))
        }))
    }

    fn write_link(&self, node: u32, dest: u32, lel: u32) -> Result<()> {
        self.records.lock().write(node as usize, |r| {
            put_u32(r, 1, dest);
            put_u32(r, 5, lel);
        })
    }

    fn add_rib(&self, node: u32, c: Code, dest: u32, pt: u32) -> Result<()> {
        let l = &self.layout;
        self.records.lock().write(node as usize, |r| {
            let count = r[9] as usize;
            assert!(count < l.rib_slots, "rib slots exhausted");
            let off = l.rib_off(count);
            r[off] = c;
            put_u32(r, off + 1, dest);
            put_u32(r, off + 5, pt);
            r[9] = (count + 1) as u8;
        })
    }

    /// Returns whether the extrib spilled to the side table.
    fn add_extrib(&self, node: u32, prt: u32, dest: u32, pt: u32) -> Result<bool> {
        let l = &self.layout;
        let spilled = self.records.lock().write(node as usize, |r| {
            let co = l.extrib_count_off();
            let count = r[co] as usize;
            if count < EXTRIB_SLOTS {
                let off = l.extrib_off(count);
                put_u32(r, off, dest);
                put_u32(r, off + 4, pt);
                put_u32(r, off + 8, prt);
                r[co] = (count + 1) as u8;
                false
            } else {
                true
            }
        })?;
        if spilled {
            self.spill.lock().entry(node).or_default().push((prt, pt, dest));
            self.spill_count.fetch_add(1, Relaxed);
        }
        Ok(spilled)
    }

    // ----- construction -----------------------------------------------------

    /// The APPEND procedure over page-resident records. Any device error
    /// propagates cleanly; a retry-wrapped device absorbs transient faults
    /// before they reach here.
    fn append(&mut self, c: Code) -> Result<()> {
        self.append_observed(c, &mut crate::observe::NoBuildObserver)
    }

    /// APPEND with observer hooks; emits the same event stream as the
    /// in-memory engines, plus [`BuildEvent::ExtribSpill`] when an extrib
    /// overflows the record's inline slots.
    fn append_observed<O: BuildObserver>(&mut self, c: Code, o: &mut O) -> Result<()> {
        let idx = self.records.lock().push_zeroed()?;
        let t = idx as u32;
        self.records.lock().write(idx, |r| r[0] = c)?;
        self.len += 1;
        let prev = t - 1;
        if prev == ROOT {
            if O::ENABLED {
                o.event(BuildEvent::FirstChar);
                o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
            }
            return Ok(());
        }
        let (mut cur, mut l) = self.read_link(prev)?;
        loop {
            if self.read_cl(cur + 1)? == c {
                self.write_link(t, cur + 1, l + 1)?;
                if O::ENABLED {
                    o.event(BuildEvent::Case1);
                    o.event(BuildEvent::LinkSet { dest: cur + 1, lel: l + 1 });
                }
                return Ok(());
            }
            match self.find_rib(cur, c)? {
                Some((dest, pt)) if pt >= l => {
                    self.write_link(t, dest, l + 1)?;
                    if O::ENABLED {
                        o.event(BuildEvent::Case2);
                        o.event(BuildEvent::LinkSet { dest, lel: l + 1 });
                    }
                    return Ok(());
                }
                Some((dest, pt)) => {
                    // Extrib chain.
                    let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
                    let prt = pt;
                    let mut last_dest = dest;
                    let mut last_pt = pt;
                    loop {
                        match self.find_extrib(last_dest, prt)? {
                            Some((edest, ept)) if ept >= l => {
                                self.write_link(t, edest, l + 1)?;
                                if O::ENABLED {
                                    o.event(BuildEvent::Case4Link);
                                    o.event(BuildEvent::LinkSet { dest: edest, lel: l + 1 });
                                    if let Some(t0) = t0 {
                                        o.phase(
                                            BuildPhase::RibFixup,
                                            t0.elapsed().as_nanos() as u64,
                                        );
                                    }
                                }
                                return Ok(());
                            }
                            Some((edest, ept)) => {
                                if O::ENABLED {
                                    o.event(BuildEvent::ChainStep);
                                }
                                last_dest = edest;
                                last_pt = ept;
                            }
                            None => break,
                        }
                    }
                    let spilled = self.add_extrib(last_dest, prt, t, l)?;
                    self.write_link(t, last_dest, last_pt + 1)?;
                    if O::ENABLED {
                        o.event(BuildEvent::ExtribCreated { prt, pt: l });
                        if spilled {
                            o.event(BuildEvent::ExtribSpill);
                        }
                        o.event(BuildEvent::Case4Extrib);
                        o.event(BuildEvent::LinkSet { dest: last_dest, lel: last_pt + 1 });
                        if let Some(t0) = t0 {
                            o.phase(BuildPhase::RibFixup, t0.elapsed().as_nanos() as u64);
                        }
                    }
                    return Ok(());
                }
                None => {
                    self.add_rib(cur, c, t, l)?;
                    if O::ENABLED {
                        o.event(BuildEvent::RibCreated { pt: l });
                    }
                    if cur == ROOT {
                        self.write_link(t, ROOT, 0)?;
                        if O::ENABLED {
                            o.event(BuildEvent::Case3Root);
                            o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
                        }
                        return Ok(());
                    }
                    if O::ENABLED {
                        o.event(BuildEvent::ChainStep);
                    }
                    let (nd, nl) = self.read_link(cur)?;
                    cur = nd;
                    l = nl;
                }
            }
        }
    }

    // ----- fallible query surface -------------------------------------------

    /// Fallible [`crate::search::locate`]: the end node of `pattern`'s first
    /// occurrence, `Ok(None)` if absent, `Err` on a storage failure.
    pub fn try_locate(&self, pattern: &[Code]) -> Result<Option<NodeId>> {
        let before = self.sample_accesses();
        let r = crate::search::try_locate(self, pattern);
        self.record_query_pages(before);
        r
    }

    /// Fallible [`StringIndex::find_all`]: start offsets of every occurrence,
    /// or `Err` if the device fails mid-traversal. This is the entry point
    /// fault-tolerance harnesses use — an injected fault degrades to a clean
    /// `Err` here instead of a panic.
    pub fn try_find_all(&self, pattern: &[Code]) -> Result<Vec<usize>> {
        if pattern.is_empty() {
            return Ok(Vec::new());
        }
        let before = self.sample_accesses();
        let r = crate::occurrences::try_find_all_ends(self, pattern);
        self.record_query_pages(before);
        Ok(r?.into_iter().map(|end| end as usize - pattern.len()).collect())
    }

    /// EXPLAIN `pattern` over the page-resident index: the structural trace
    /// of [`crate::trace::explain`] plus
    /// [`crate::trace::TraceEvent::PageFetches`] events attributing buffer
    /// pool hits and device reads to individual traversal steps (sampled
    /// from the pool's cumulative counters around each step — exact in
    /// single-query flows, an upper bound while concurrent queries share
    /// the pool). A storage failure mid-traversal is captured in
    /// [`crate::trace::QueryTrace::error`] with the partial trace retained.
    pub fn explain(&self, pattern: &[Code]) -> crate::trace::QueryTrace {
        let before = self.sample_accesses();
        let t = crate::trace::explain(self, pattern);
        self.record_query_pages(before);
        t
    }
}

/// Message for the infallible-trait boundary: callers of plain [`SpineOps`]
/// opted out of error handling, so a real device error can only panic there.
/// Fault-aware callers use [`FallibleSpineOps`] / [`DiskSpine::try_find_all`].
const INFALLIBLE_BOUNDARY: &str =
    "page device error during infallible traversal (use the try_* surface for fault tolerance)";

impl SpineOps for DiskSpine {
    fn text_len(&self) -> usize {
        self.len
    }

    fn vertebra_out(&self, node: NodeId) -> Option<Code> {
        ((node as usize) < self.len).then(|| self.read_cl(node + 1).expect(INFALLIBLE_BOUNDARY))
    }

    fn link_of(&self, node: NodeId) -> (NodeId, u32) {
        self.read_link(node).expect(INFALLIBLE_BOUNDARY)
    }

    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)> {
        self.find_rib(node, c).expect(INFALLIBLE_BOUNDARY)
    }

    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)> {
        self.find_extrib(node, prt).expect(INFALLIBLE_BOUNDARY)
    }

    fn ops_counters(&self) -> &Counters {
        &self.counters
    }
}

impl FallibleSpineOps for DiskSpine {
    fn text_len(&self) -> usize {
        self.len
    }

    fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>> {
        if (node as usize) < self.len {
            Ok(Some(self.read_cl(node + 1)?))
        } else {
            Ok(None)
        }
    }

    fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)> {
        self.read_link(node)
    }

    fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>> {
        self.find_rib(node, c)
    }

    fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>> {
        self.find_extrib(node, prt)
    }

    fn ops_counters(&self) -> &Counters {
        &self.counters
    }

    fn storage_counters(&self) -> Option<(u64, u64)> {
        Some(self.pool_counts())
    }
}

impl OnlineIndex for DiskSpine {
    fn push(&mut self, code: Code) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len });
        }
        self.append(code)
    }
}

impl StringIndex for DiskSpine {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.len
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.read_cl(pos as u32 + 1).expect(INFALLIBLE_BOUNDARY)
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        crate::search::locate(self, pattern).map(|end| end as usize - pattern.len())
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        crate::occurrences::find_all_ends(self, pattern)
            .into_iter()
            .map(|end| end as usize - pattern.len())
            .collect()
    }
}

impl MatchingIndex for DiskSpine {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        crate::matching::matching_statistics(self, query)
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        crate::matching::maximal_matches(self, query, min_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Spine;
    use pagestore::{Lru, MemDevice, PrefixPriority};

    fn disk(text: &[u8], pool_pages: usize) -> (Alphabet, DiskSpine) {
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let d = DiskSpine::build(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            pool_pages,
            Box::<Lru>::default(),
        )
        .unwrap();
        (a, d)
    }

    #[test]
    fn build_with_stats_matches_memory_engine_and_counts_spills() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA";
        let a = Alphabet::dna();
        let codes = a.encode(text).unwrap();
        let (d, st) = DiskSpine::build_with_stats(
            a.clone(),
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<Lru>::default(),
        )
        .unwrap();
        let (_, mem_stats) = Spine::build_with_stats(a, &codes).unwrap();
        // The structural event stream is representation-independent.
        assert_eq!(st.counts(), mem_stats.counts());
        assert_eq!(st.extrib_spills, d.spill_count());
        // PageFlush was timed, and the logical footprint is non-trivial.
        assert!(st.phase_nanos[BuildPhase::PageFlush.index()] > 0);
        assert_eq!(st.mem.vertebrae, text.len() as u64 + 1);
        assert!(st.mem.total() > st.mem.vertebrae);
    }

    #[test]
    fn equivalent_to_reference() {
        let text = b"AACCACAACAGGTTACGACGACCAACCACAACA";
        let (a, d) = disk(text, 4);
        let r = Spine::build_from_bytes(a.clone(), text).unwrap();
        for node in 0..=r.len() as u32 {
            assert_eq!(r.vertebra_out(node), d.vertebra_out(node), "vertebra {node}");
            if node != ROOT {
                assert_eq!(r.link_of(node), d.link_of(node), "link {node}");
            }
            for code in 0..a.code_space() as Code {
                assert_eq!(r.rib_of(node, code), d.rib_of(node, code), "rib {node}/{code}");
            }
        }
    }

    #[test]
    fn queries_under_memory_pressure() {
        // A single-frame pool forces page traffic on every hop.
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = disk(&text, 1);
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&d, &p));
        }
        let q = a.encode(b"TTACGACCACAACAGGAACC").unwrap();
        assert_eq!(
            MatchingIndex::maximal_matches(&r, &q, 3),
            MatchingIndex::maximal_matches(&d, &q, 3)
        );
        let (reads, writes) = d.io_counts();
        assert!(reads > 0 && writes > 0, "pressure must cause I/O");
    }

    #[test]
    fn prefix_priority_keeps_hit_rate_healthy() {
        // With the prefix-priority policy the upstream pages stay resident;
        // the hit rate should be healthy even with a small pool.
        let text = b"ACGTACGGTACGTTTACGACGACCAACC".repeat(16);
        let a = Alphabet::dna();
        let codes = a.encode(&text).unwrap();
        let d = DiskSpine::build(
            a,
            &codes,
            Box::new(MemDevice::new()),
            4,
            Box::<PrefixPriority>::default(),
        )
        .unwrap();
        assert!(d.hit_rate() > 0.5, "hit rate {}", d.hit_rate());
    }

    #[test]
    fn flush_persists_everything() {
        let (_, d) = disk(b"ACGTACGT", 2);
        d.flush().unwrap();
        let (_, writes) = d.io_counts();
        assert!(writes > 0);
    }

    #[test]
    fn rejects_bad_code() {
        let a = Alphabet::dna();
        let mut d =
            DiskSpine::new(a, Box::new(MemDevice::new()), 2, Box::<Lru>::default()).unwrap();
        assert!(d.push(9).is_err());
    }

    #[test]
    fn disk_spine_is_send_and_sync() {
        // The query engine serves a DiskSpine from multiple workers; this
        // holds because the device, policy, and spill counter are all
        // Send/Sync-compatible now.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiskSpine>();
    }

    #[test]
    fn telemetry_accounts_pages_and_pool_state() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = disk(&text, 1); // single-frame pool: every hop touches a page
        let reg = MetricsRegistry::new();
        d.attach_telemetry(&reg);
        d.try_find_all(&a.encode(b"ACGACG").unwrap()).unwrap();
        d.try_locate(&a.encode(b"CA").unwrap()).unwrap();
        let snap = reg.snapshot();
        let pages = snap.histogram("disk.pages_per_query").unwrap();
        assert_eq!(pages.count, 2);
        assert!(pages.max > 0, "queries under pressure must touch pages");
        // Pool gauges are live views of the same pool the queries used.
        let hits = snap.gauge("disk.pool.hits").unwrap();
        let misses = snap.gauge("disk.pool.misses").unwrap();
        let (h, m) = d.pool_counts();
        assert_eq!((hits, misses), (h, m));
        assert!(snap.gauge("disk.pool.evictions").unwrap() > 0);
        // Registered at attach time (counts consultations of the side
        // table, i.e. extrib lookups the inline slots could not answer).
        assert!(snap.counter("disk.spill_lookups").is_some());
    }

    #[test]
    fn explain_attributes_page_fetches() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(8);
        let (a, d) = disk(&text, 1); // single-frame pool: every hop faults
        let codes = a.encode(&text).unwrap();
        let r = Spine::build_from_bytes(a.clone(), &text).unwrap();
        for p in [&b"CA"[..], b"ACCAA", b"TACGACG", b"TTTT"] {
            let p = a.encode(p).unwrap();
            let dt = d.explain(&p);
            dt.verify_against_text(&codes).unwrap();
            // Same logical traversal as the reference engine; pages are the
            // only physical difference.
            assert_eq!(dt.structural_events(), r.explain(&p).structural_events());
            let (hits, misses) = dt.page_fetches();
            assert!(hits + misses > 0, "a single-frame pool must show traffic");
        }
    }

    #[test]
    fn try_find_all_matches_infallible_surface() {
        let text = b"AACCACAACAGGTTACGACGACCA".repeat(4);
        let (a, d) = disk(&text, 2);
        for p in [&b"CA"[..], b"ACCAA", b"GGTT", b"TACGACG", b""] {
            let p = a.encode(p).unwrap();
            assert_eq!(d.try_find_all(&p).unwrap(), StringIndex::find_all(&d, &p));
        }
    }
}

// ---------------------------------------------------------------------------
// Durability: close and reopen a disk index.
// ---------------------------------------------------------------------------

/// Compact sidecar metadata needed to reattach a [`DiskSpine`] to its
/// device: text length plus the (rare) spilled extribs that live outside
/// the fixed-size records. Format: `SPND` magic, version, alphabet tag,
/// lengths, little-endian fields.
impl DiskSpine {
    /// Serialize the sidecar metadata (pair it with a flushed device).
    pub fn write_meta<W: std::io::Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(b"SPND")?;
        w.write_all(&1u16.to_le_bytes())?;
        let tag: u8 = match self.alphabet.kind() {
            strindex::AlphabetKind::Dna => 0,
            strindex::AlphabetKind::Protein => 1,
            strindex::AlphabetKind::Ascii => 2,
            strindex::AlphabetKind::Bytes => 3,
        };
        w.write_all(&[tag])?;
        w.write_all(&(self.len as u64).to_le_bytes())?;
        let spill = self.spill.lock();
        let mut entries: Vec<(u32, &SpillEntry)> = spill.iter().map(|(&n, v)| (n, v)).collect();
        entries.sort_by_key(|&(n, _)| n);
        let total: u64 = entries.iter().map(|(_, v)| v.len() as u64).sum();
        w.write_all(&total.to_le_bytes())?;
        for (node, v) in entries {
            for &(prt, pt, dest) in v {
                w.write_all(&node.to_le_bytes())?;
                w.write_all(&prt.to_le_bytes())?;
                w.write_all(&pt.to_le_bytes())?;
                w.write_all(&dest.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reattach to a `device` holding a previously built and flushed index,
    /// using the sidecar written by [`write_meta`](Self::write_meta).
    pub fn reopen<R: std::io::Read>(
        meta: &mut R,
        device: Box<dyn PageDevice>,
        pool_pages: usize,
        policy: Box<dyn EvictionPolicy>,
    ) -> Result<Self> {
        let mut magic = [0u8; 4];
        meta.read_exact(&mut magic)?;
        if &magic != b"SPND" {
            return Err(strindex::Error::Parse("bad DiskSpine meta magic".into()));
        }
        let mut b2 = [0u8; 2];
        meta.read_exact(&mut b2)?;
        if u16::from_le_bytes(b2) != 1 {
            return Err(strindex::Error::Parse("unsupported DiskSpine meta version".into()));
        }
        let mut b1 = [0u8; 1];
        meta.read_exact(&mut b1)?;
        let alphabet = match b1[0] {
            0 => Alphabet::dna(),
            1 => Alphabet::protein(),
            2 => Alphabet::ascii(),
            3 => Alphabet::bytes(),
            t => return Err(strindex::Error::Parse(format!("unknown alphabet tag {t}"))),
        };
        let mut b8 = [0u8; 8];
        meta.read_exact(&mut b8)?;
        let len = u64::from_le_bytes(b8) as usize;
        meta.read_exact(&mut b8)?;
        let spill_total = u64::from_le_bytes(b8);
        let mut spill: FxHashMap<u32, SpillEntry> = FxHashMap::default();
        let mut b4 = [0u8; 4];
        for _ in 0..spill_total {
            let mut next = |r: &mut R| -> Result<u32> {
                r.read_exact(&mut b4)?;
                Ok(u32::from_le_bytes(b4))
            };
            let node = next(meta)?;
            let prt = next(meta)?;
            let pt = next(meta)?;
            let dest = next(meta)?;
            spill.entry(node).or_default().push((prt, pt, dest));
        }
        let layout = Layout::new(&alphabet);
        let records = PagedVec::with_len(
            device,
            pool_pages,
            policy,
            layout.record_size(),
            len + 1, // + root record
        );
        Ok(DiskSpine {
            alphabet,
            layout,
            records: Mutex::new(records),
            spill_count: AtomicU64::new(spill_total),
            spill: Mutex::new(spill),
            len,
            counters: Counters::new(),
            telemetry: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;
    use pagestore::{FileDevice, Lru};

    #[test]
    fn build_flush_reopen_query() {
        let a = Alphabet::dna();
        let text = a.encode(&b"AACCACAACAGGTTACGACGACCA".repeat(16)).unwrap();
        let dir = std::env::temp_dir().join("spine-reopen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dev_path = dir.join(format!("dev-{}.pages", std::process::id()));
        let built = DiskSpine::build(
            a.clone(),
            &text,
            Box::new(FileDevice::create(&dev_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        built.flush().unwrap();
        let mut meta = Vec::new();
        built.write_meta(&mut meta).unwrap();
        let before: Vec<usize> = StringIndex::find_all(&built, &a.encode(b"ACGACG").unwrap());
        drop(built);

        let reopened = DiskSpine::reopen(
            &mut meta.as_slice(),
            Box::new(FileDevice::open(&dev_path, false).unwrap()),
            8,
            Box::<Lru>::default(),
        )
        .unwrap();
        assert_eq!(reopened.len(), text.len());
        assert_eq!(StringIndex::find_all(&reopened, &a.encode(b"ACGACG").unwrap()), before);
        // Full equivalence against a fresh in-memory build.
        let r = crate::Spine::build(a.clone(), &text).unwrap();
        let q = a.encode(b"TTACGACCACAACAGG").unwrap();
        assert_eq!(
            MatchingIndex::maximal_matches(&r, &q, 3),
            MatchingIndex::maximal_matches(&reopened, &q, 3)
        );
        std::fs::remove_file(&dev_path).ok();
    }

    #[test]
    fn reopen_rejects_garbage_meta() {
        let dev = Box::new(pagestore::MemDevice::new());
        assert!(DiskSpine::reopen(&mut &b"JUNKJUNK"[..], dev, 2, Box::<Lru>::default()).is_err());
    }
}
