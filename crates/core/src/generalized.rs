//! Generalized (multi-string) SPINE indexes.
//!
//! §1.1 of the paper: "a single SPINE index can be used to index multiple
//! different strings, using techniques similar to those employed in
//! Generalized Suffix Trees". As with GSTs, documents are concatenated with
//! a terminator that cannot occur in any document — here the alphabet's
//! reserved [`separator`](strindex::Alphabet::separator) code — so no query
//! pattern (which by construction contains only ordinary symbols) can match
//! across a document boundary.

use crate::build::Spine;
use crate::node::NodeId;
use crate::observe::BuildObserver;
use crate::ops::SpineOps;
use strindex::{Alphabet, Code, Counters, Error, OnlineIndex, Result, StringIndex};

/// An occurrence localized to a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DocMatch {
    /// Document index, in insertion order.
    pub doc: usize,
    /// Start offset within that document.
    pub offset: usize,
}

/// A SPINE index over any number of documents.
///
/// ```
/// use spine::GeneralizedSpine;
/// use strindex::Alphabet;
///
/// let alphabet = Alphabet::dna();
/// let mut index = GeneralizedSpine::new(alphabet.clone());
/// index.add_document_bytes(b"ACGTACGT").unwrap();
/// index.add_document_bytes(b"TTACG").unwrap();
/// let acg = alphabet.encode(b"ACG").unwrap();
/// assert_eq!(index.docs_containing(&acg), vec![0, 1]);
/// ```
pub struct GeneralizedSpine {
    spine: Spine,
    /// `starts[d]` = offset of document `d` in the concatenation
    /// (terminators included); a final sentinel entry holds the total.
    starts: Vec<usize>,
    /// Retired (tombstoned) documents, by insertion index. The SPINE itself
    /// is append-only, so retirement is logical: retired documents keep
    /// their ids and their text stays in the concatenation, but every query
    /// surface filters them out. The segment layer compacts them away.
    retired: Vec<bool>,
}

impl GeneralizedSpine {
    /// An empty multi-string index.
    pub fn new(alphabet: Alphabet) -> Self {
        GeneralizedSpine { spine: Spine::new(alphabet), starts: vec![0], retired: Vec::new() }
    }

    /// Append one encoded document (terminator added automatically).
    pub fn add_document(&mut self, doc: &[Code]) -> Result<()> {
        let sep = self.spine.alphabet_ref().separator();
        if doc.iter().any(|&c| c >= sep) {
            return Err(Error::InvalidSymbol {
                byte: *doc.iter().find(|&&c| c >= sep).unwrap(),
                pos: doc.iter().position(|&c| c >= sep).unwrap(),
            });
        }
        self.spine.extend_from(doc)?;
        self.spine.push(sep)?;
        self.starts.push(self.spine.len());
        self.retired.push(false);
        Ok(())
    }

    /// Convenience: encode raw bytes with the index alphabet and add.
    pub fn add_document_bytes(&mut self, doc: &[u8]) -> Result<()> {
        let codes = self.spine.alphabet_ref().encode(doc)?;
        self.add_document(&codes)
    }

    /// [`Self::add_document`] with build-event reporting (the terminator's
    /// insertion is observed too — it is a real backbone node).
    pub fn add_document_observed<O: BuildObserver>(
        &mut self,
        doc: &[Code],
        observer: &mut O,
    ) -> Result<()> {
        let sep = self.spine.alphabet_ref().separator();
        if doc.iter().any(|&c| c >= sep) {
            return Err(Error::InvalidSymbol {
                byte: *doc.iter().find(|&&c| c >= sep).unwrap(),
                pos: doc.iter().position(|&c| c >= sep).unwrap(),
            });
        }
        self.spine.extend_from_observed(doc, observer)?;
        self.spine.push_observed(sep, observer)?;
        self.starts.push(self.spine.len());
        self.retired.push(false);
        Ok(())
    }

    /// Logically delete document `doc`: it stops appearing in every query
    /// surface (`find_all`, `docs_containing`, `contains`) but keeps its id,
    /// so later documents do not shift. Returns `Ok(true)` when this call
    /// retired the document, `Ok(false)` when it was already retired
    /// (idempotent), and [`Error::UnknownDocument`] for an id that was never
    /// assigned — the segment layer and the per-document oracle share these
    /// semantics.
    pub fn retire_document(&mut self, doc: usize) -> Result<bool> {
        match self.retired.get_mut(doc) {
            None => Err(Error::UnknownDocument { doc: doc as u64 }),
            Some(flag) if *flag => Ok(false),
            Some(flag) => {
                *flag = true;
                Ok(true)
            }
        }
    }

    /// Is document `doc` retired? Unassigned ids are not retired.
    pub fn is_retired(&self, doc: usize) -> bool {
        self.retired.get(doc).copied().unwrap_or(false)
    }

    /// Documents added and not yet retired.
    pub fn live_doc_count(&self) -> usize {
        self.retired.iter().filter(|&&r| !r).count()
    }

    /// Heap accounting of the underlying concatenation index.
    pub fn mem_breakdown(&self) -> crate::observe::MemBreakdown {
        self.spine.mem_breakdown()
    }

    /// Number of documents indexed.
    pub fn doc_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Length of document `d`.
    pub fn doc_len(&self, d: usize) -> usize {
        self.starts[d + 1] - self.starts[d] - 1 // minus the terminator
    }

    /// The underlying single-string index over the concatenation.
    pub fn as_spine(&self) -> &Spine {
        &self.spine
    }

    /// Map a concatenation offset to `(document, in-document offset)`.
    ///
    /// Public so callers that run the low-level occurrence machinery
    /// themselves (the concurrent query engine's sharded mode) can translate
    /// concatenation positions back to documents.
    pub fn localize(&self, offset: usize) -> DocMatch {
        let doc = match self.starts.binary_search(&offset) {
            Ok(d) => d,
            Err(i) => i - 1,
        };
        DocMatch { doc, offset: offset - self.starts[doc] }
    }

    /// Does `pattern` occur in any *live* document?
    pub fn contains(&self, pattern: &[Code]) -> bool {
        if self.retired.iter().any(|&r| r) {
            !self.find_all(pattern).is_empty()
        } else {
            self.spine.contains(pattern)
        }
    }

    /// All occurrences of `pattern` across all live documents, ordered by
    /// (document, offset). Retired documents contribute nothing.
    pub fn find_all(&self, pattern: &[Code]) -> Vec<DocMatch> {
        self.spine
            .find_all(pattern)
            .into_iter()
            .map(|off| self.localize(off))
            .filter(|m| !self.retired[m.doc])
            .collect()
    }

    /// Documents containing `pattern`, deduplicated and sorted.
    pub fn docs_containing(&self, pattern: &[Code]) -> Vec<usize> {
        let mut docs: Vec<usize> = self.find_all(pattern).into_iter().map(|m| m.doc).collect();
        docs.dedup();
        docs
    }
}

// The generalized index exposes the underlying concatenation's SPINE
// structure directly, so the generic search/occurrence algorithms — and the
// concurrent query engine built on them — run over it unchanged. Because
// query patterns cannot contain the separator code (`add_document` rejects
// it in documents, and search simply finds no edge for it), valid paths
// never cross a document boundary.
impl SpineOps for GeneralizedSpine {
    fn text_len(&self) -> usize {
        SpineOps::text_len(&self.spine)
    }

    fn vertebra_out(&self, node: NodeId) -> Option<Code> {
        self.spine.vertebra_out(node)
    }

    fn link_of(&self, node: NodeId) -> (NodeId, u32) {
        self.spine.link_of(node)
    }

    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)> {
        self.spine.rib_of(node, c)
    }

    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)> {
        self.spine.extrib_of(node, prt)
    }

    fn ops_counters(&self) -> &Counters {
        self.spine.ops_counters()
    }

    fn backbone_packing(&self) -> Option<u32> {
        // A DNA concatenation self-disables (separators exceed 2 bits); a
        // protein one packs separators verbatim, which never match a
        // pattern code, so the word compare stays exact.
        self.spine.backbone_packing()
    }

    fn label_run(&self, node: NodeId, pattern: &strindex::PackedText, from: usize) -> usize {
        self.spine.label_run(node, pattern, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Alphabet, GeneralizedSpine) {
        let a = Alphabet::dna();
        let mut g = GeneralizedSpine::new(a.clone());
        g.add_document_bytes(b"ACGTACGT").unwrap();
        g.add_document_bytes(b"TTACG").unwrap();
        g.add_document_bytes(b"GGGG").unwrap();
        (a, g)
    }

    #[test]
    fn documents_are_localized() {
        let (a, g) = sample();
        assert_eq!(g.doc_count(), 3);
        assert_eq!(g.doc_len(0), 8);
        assert_eq!(g.doc_len(1), 5);
        let acg = a.encode(b"ACG").unwrap();
        assert_eq!(
            g.find_all(&acg),
            vec![
                DocMatch { doc: 0, offset: 0 },
                DocMatch { doc: 0, offset: 4 },
                DocMatch { doc: 1, offset: 2 },
            ]
        );
        assert_eq!(g.docs_containing(&acg), vec![0, 1]);
    }

    #[test]
    fn no_cross_document_matches() {
        let (a, g) = sample();
        // "GTTT" would span doc0|doc1 if the terminator didn't block it.
        assert!(!g.contains(&a.encode(b"GTTT").unwrap()));
        // "GTT" exists only inside... doc0 ends GT, doc1 starts TT — also
        // blocked.
        assert!(!g.contains(&a.encode(b"GTT").unwrap()));
    }

    #[test]
    fn rejects_separator_in_document() {
        let a = Alphabet::dna();
        let mut g = GeneralizedSpine::new(a.clone());
        let sep = a.separator();
        assert!(matches!(g.add_document(&[0, sep, 1]), Err(Error::InvalidSymbol { .. })));
    }

    #[test]
    fn single_symbol_documents() {
        let a = Alphabet::dna();
        let mut g = GeneralizedSpine::new(a.clone());
        for _ in 0..5 {
            g.add_document(&[2]).unwrap();
        }
        assert_eq!(g.doc_count(), 5);
        assert_eq!(g.docs_containing(&[2]), vec![0, 1, 2, 3, 4]);
        assert!(!g.contains(&[2, 2]));
    }

    #[test]
    fn retire_document_filters_every_query_surface() {
        let (a, mut g) = sample();
        let acg = a.encode(b"ACG").unwrap();
        assert_eq!(g.live_doc_count(), 3);
        assert!(g.retire_document(0).unwrap());
        assert!(g.is_retired(0));
        assert_eq!(g.live_doc_count(), 2);
        // doc 0's occurrences vanish; doc ids of the others are unchanged.
        assert_eq!(g.find_all(&acg), vec![DocMatch { doc: 1, offset: 2 }]);
        assert_eq!(g.docs_containing(&acg), vec![1]);
        assert!(g.contains(&acg));
        // A pattern only doc 0 held is gone from `contains` too.
        let full = a.encode(b"ACGTACGT").unwrap();
        assert!(!g.contains(&full));
        // Idempotent re-retire; unknown ids are a typed error.
        assert!(!g.retire_document(0).unwrap());
        assert!(matches!(g.retire_document(3), Err(Error::UnknownDocument { doc: 3 })));
        assert!(!g.is_retired(3));
        // doc_count still reports assigned ids, retired or not.
        assert_eq!(g.doc_count(), 3);
    }

    #[test]
    fn observed_documents_count_terminators_as_insertions() {
        let a = Alphabet::dna();
        let mut g = GeneralizedSpine::new(a.clone());
        let mut st = crate::observe::BuildStats::default();
        g.add_document_observed(&a.encode(b"ACGTACGT").unwrap(), &mut st).unwrap();
        g.add_document_observed(&a.encode(b"TTACG").unwrap(), &mut st).unwrap();
        // 8 + 5 document characters plus one terminator each.
        assert_eq!(st.insertions, 15);
        assert_eq!(st.links_set, 15);
        assert_eq!(st.dispositions(), 15);
        assert!(g.mem_breakdown().total() > 0);
        // Observed construction builds the identical structure.
        let mut plain = GeneralizedSpine::new(a.clone());
        plain.add_document_bytes(b"ACGTACGT").unwrap();
        plain.add_document_bytes(b"TTACG").unwrap();
        assert_eq!(plain.as_spine().nodes(), g.as_spine().nodes());
    }

    #[test]
    fn empty_document_is_allowed() {
        let a = Alphabet::dna();
        let mut g = GeneralizedSpine::new(a);
        g.add_document(&[]).unwrap();
        g.add_document(&[0]).unwrap();
        assert_eq!(g.doc_count(), 2);
        assert_eq!(g.doc_len(0), 0);
        assert_eq!(g.find_all(&[0]), vec![DocMatch { doc: 1, offset: 0 }]);
    }
}
