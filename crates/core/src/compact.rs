//! The space-optimized SPINE layout (Section 5 of the paper).
//!
//! A naive node stores every possible field inline and costs 48.25 bytes for
//! DNA (Table 2). The paper's optimizations, all implemented here, bring
//! the index under 12 bytes per indexed character:
//!
//! * **Implicit vertebras** — creation order equals logical order, so the
//!   vertebra destination field disappears; character labels are bit-packed
//!   (2 bits for DNA, 5 for protein) in [`PackedChars`].
//! * **Small numeric labels** — measured PT/LEL/PRT maxima stay far below
//!   2¹⁶ (Table 3), so labels are `u16`s; the rare larger value parks in an
//!   overflow table behind an in-slot sentinel, exactly the paper's
//!   flag-plus-overflow-table mechanism.
//! * **Sparse rib storage** — only ~30 % of nodes have downstream edges
//!   (Table 4), so the **Link Table** (one fixed entry per character: LEL +
//!   link-destination-or-pointer) is separated from dynamically allocated
//!   **Rib Tables**, one per fan-out class (RT1..RT4, Figure 5). A node's
//!   LT entry either holds its link destination directly or points into the
//!   RT holding its edges; when a node gains an edge it *migrates* to the
//!   next table (the free slot it leaves is recycled through a free list —
//!   the paper claims this movement cost is negligible, and the ablation
//!   bench measures it).
//!
//! Construction is online and identical in logic to [`crate::build`]; the
//! two representations are checked edge-for-edge against each other by the
//! equivalence tests. All query algorithms come from the shared
//! [`SpineOps`] implementation.

use crate::node::{NodeId, ROOT};
use crate::observe::{BuildEvent, BuildObserver, BuildPhase, BuildStats, MemBreakdown};
use crate::ops::SpineOps;
use strindex::{
    Alphabet, Code, Counters, Error, FxHashMap, MatchingIndex, MatchingStats, MaximalMatch,
    OnlineIndex, PackedText, Result, StringIndex,
};

/// In-slot sentinel meaning "the true value lives in the overflow table".
const LABEL_OVERFLOW: u16 = u16::MAX;
/// Slot-kind marker: unused slot.
const SLOT_EMPTY: u8 = 0xFF;
/// Slot-kind marker: extrib slot (PRT field valid).
const SLOT_EXTRIB: u8 = 0xFE;

/// LT pointer tag: bit 31 set ⇒ the entry points into a Rib Table.
const PTR_TAG: u32 = 1 << 31;
const CLASS_SHIFT: u32 = 29;
const IDX_MASK: u32 = (1 << CLASS_SHIFT) - 1;

/// Bit-packed character labels (the backbone's vertebra labels).
pub struct PackedChars {
    bits: u32,
    len: usize,
    words: Vec<u64>,
}

impl PackedChars {
    fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits));
        PackedChars { bits, len: 0, words: Vec::new() }
    }

    fn push(&mut self, c: Code) {
        debug_assert!((c as u64) < (1u64 << self.bits));
        let bit = self.len * self.bits as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        if w >= self.words.len() {
            self.words.push(0);
        }
        self.words[w] |= (c as u64) << off;
        let spill = off + self.bits > 64;
        if spill {
            self.words.push((c as u64) >> (64 - off));
        }
        self.len += 1;
    }

    /// Character at position `i` (0-based).
    pub fn get(&self, i: usize) -> Code {
        debug_assert!(i < self.len);
        let bit = i * self.bits as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        let mut v = self.words[w] >> off;
        if off + self.bits > 64 {
            v |= self.words[w + 1] << (64 - off);
        }
        (v & ((1u64 << self.bits) - 1)) as Code
    }

    /// Number of stored characters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// One downstream-edge slot of a Rib Table row.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Character label for ribs; [`SLOT_EXTRIB`] / [`SLOT_EMPTY`] markers.
    kind: u8,
    /// Destination node.
    rd: u32,
    /// Pathlength threshold ([`LABEL_OVERFLOW`] ⇒ overflow table).
    pt: u16,
    /// Parent-rib threshold, extrib slots only.
    prt: u16,
}

const EMPTY_SLOT: Slot = Slot { kind: SLOT_EMPTY, rd: 0, pt: 0, prt: 0 };

/// Fixed-stride Rib Table: row `i`'s slots live at `i*cap..(i+1)*cap`.
struct RtTable {
    cap: usize,
    /// Per-row: (owning node, link destination, used-slot count).
    rows: Vec<(u32, u32, u16)>,
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl RtTable {
    fn new(cap: usize) -> Self {
        RtTable { cap, rows: Vec::new(), slots: Vec::new(), free: Vec::new() }
    }

    fn alloc(&mut self, node: u32, ld: u32) -> u32 {
        if let Some(i) = self.free.pop() {
            self.rows[i as usize] = (node, ld, 0);
            self.slots[i as usize * self.cap..(i as usize + 1) * self.cap].fill(EMPTY_SLOT);
            i
        } else {
            self.rows.push((node, ld, 0));
            self.slots.resize(self.slots.len() + self.cap, EMPTY_SLOT);
            (self.rows.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) {
        self.free.push(i);
    }

    fn live_rows(&self) -> usize {
        self.rows.len() - self.free.len()
    }

    fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<(u32, u32, u16)>()
            + self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.free.capacity() * 4
    }
}

/// Instrumentation of the compact layout's dynamic behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Rows moved to a larger Rib Table (the §5.1 migration cost).
    pub migrations: u64,
    /// Labels parked in the overflow table.
    pub label_overflows: u64,
}

/// The §5-optimized SPINE index.
///
/// Functionally identical to [`crate::Spine`] (the tests check edge-for-edge
/// equality); physically a Link Table + fan-out-classed Rib Tables.
///
/// ```
/// use spine::CompactSpine;
/// use strindex::{Alphabet, StringIndex};
///
/// let alphabet = Alphabet::dna();
/// let index = CompactSpine::build_from_bytes(alphabet.clone(), b"AACCACAACA").unwrap();
/// assert_eq!(index.find_all(&alphabet.encode(b"CA").unwrap()), vec![3, 5, 8]);
/// assert_eq!(index.recover_text(), alphabet.encode(b"AACCACAACA").unwrap());
/// ```
///
/// The "< 12 bytes per indexed character" claim holds at realistic sizes —
/// see `layout_stays_under_12_bytes_per_char_for_dna` and `exp space`.
pub struct CompactSpine {
    alphabet: Alphabet,
    chars: PackedChars,
    /// Link Table, label column (entry 0 = root, unused).
    lels: Vec<u16>,
    /// Link Table, pointer column: untagged link destination, or tagged
    /// Rib-Table reference.
    ptrs: Vec<u32>,
    /// Rib tables by fan-out class (RT1..RT4; the last class is sized for
    /// the alphabet's full edge complement plus extrib slack).
    rts: Vec<RtTable>,
    /// Overflow for LEL values ≥ 2¹⁶−1, keyed by node.
    lel_overflow: FxHashMap<u32, u32>,
    /// Overflow for slot PT/PRT values, keyed by (node, slot position).
    slot_overflow: FxHashMap<(u32, u8), (u32, u32)>,
    stats: CompactStats,
    counters: Counters,
    /// Word-packed shadow of `chars` at `alphabet.pack_bits()` (2-bit DNA /
    /// 5-bit protein) for the packed search fast path; `None` for
    /// unpackable alphabets or once a code does not fit the packing.
    packed: Option<PackedText>,
}

impl CompactSpine {
    /// An empty compact index over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        // Slot kinds 0xFE/0xFF are markers, so symbol codes must stay below
        // 0xFE (every built-in alphabet except raw bytes qualifies).
        assert!(
            alphabet.code_space() < SLOT_EXTRIB as usize,
            "compact layout supports alphabets up to 253 symbols"
        );
        let bits = alphabet.label_bits();
        // RT classes 1..=3 as in the paper; the final class holds the full
        // complement: up to size−1 ribs plus room for extrib chains.
        let max_cap = (alphabet.size() - 1) + 4;
        let caps: Vec<usize> = (1..=3).chain([max_cap.max(4)]).collect();
        let alphabet_packing = alphabet.pack_bits().map(PackedText::new);
        CompactSpine {
            alphabet,
            chars: PackedChars::new(bits),
            lels: vec![0],
            ptrs: vec![ROOT],
            rts: caps.into_iter().map(RtTable::new).collect(),
            lel_overflow: FxHashMap::default(),
            slot_overflow: FxHashMap::default(),
            stats: CompactStats::default(),
            counters: Counters::new(),
            packed: alphabet_packing,
        }
    }

    /// Build from an encoded text in one call.
    pub fn build(alphabet: Alphabet, text: &[Code]) -> Result<Self> {
        let mut s = CompactSpine::new(alphabet);
        s.lels.reserve(text.len());
        s.ptrs.reserve(text.len());
        s.extend_from(text)?;
        Ok(s)
    }

    /// Convenience: encode `text` with `alphabet` and build.
    pub fn build_from_bytes(alphabet: Alphabet, text: &[u8]) -> Result<Self> {
        let codes = alphabet.encode(text)?;
        Self::build(alphabet, &codes)
    }

    /// Build while reporting every structural event to `observer`; emits the
    /// same event stream as [`crate::Spine::build_observed`] on the same
    /// text (the cross-engine property tests pin this).
    pub fn build_observed<O: BuildObserver>(
        alphabet: Alphabet,
        text: &[Code],
        observer: &mut O,
    ) -> Result<Self> {
        let mut s = CompactSpine::new(alphabet);
        s.lels.reserve(text.len());
        s.ptrs.reserve(text.len());
        s.extend_from_observed(text, observer)?;
        Ok(s)
    }

    /// Build and return the index together with a reconciled [`BuildStats`].
    pub fn build_with_stats(alphabet: Alphabet, text: &[Code]) -> Result<(Self, BuildStats)> {
        let mut stats = BuildStats::default();
        let s = Self::build_observed(alphabet, text, &mut stats)?;
        stats.mem = s.mem_breakdown();
        Ok((s, stats))
    }

    /// Observed batch append: times the whole loop as the Scan phase.
    pub fn extend_from_observed<O: BuildObserver>(
        &mut self,
        codes: &[Code],
        observer: &mut O,
    ) -> Result<()> {
        let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
        for &c in codes {
            self.push_observed(c, observer)?;
        }
        if let Some(t0) = t0 {
            observer.phase(BuildPhase::Scan, t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Observed online append (same validation as [`OnlineIndex::push`]).
    pub fn push_observed<O: BuildObserver>(&mut self, code: Code, observer: &mut O) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len() });
        }
        if self.len() as u64 >= IDX_MASK as u64 {
            return Err(Error::TooLong { len: self.len(), max: IDX_MASK as usize });
        }
        self.append_observed(code, observer);
        Ok(())
    }

    /// Heap bytes split by edge kind. Rib-Table rows are shared between
    /// rib and extrib slots, so the split prorates each row's fixed cost
    /// (LD word) to the rib column and assigns slots by their kind.
    pub fn mem_breakdown(&self) -> MemBreakdown {
        let mut ribs = 0u64;
        let mut extribs = 0u64;
        for t in &self.rts {
            // Fixed row overhead (node, LD, used) counts toward ribs.
            ribs += t.rows.capacity() as u64 * std::mem::size_of::<(u32, u32, u16)>() as u64
                + t.free.capacity() as u64 * 4;
            for (ri, row) in t.rows.iter().enumerate() {
                if t.free.contains(&(ri as u32)) {
                    continue;
                }
                let base = ri * t.cap;
                for s in &t.slots[base..base + row.2 as usize] {
                    if s.kind == SLOT_EXTRIB {
                        extribs += std::mem::size_of::<Slot>() as u64;
                    } else {
                        ribs += std::mem::size_of::<Slot>() as u64;
                    }
                }
            }
            // Unused slot capacity is rib-table slack.
            let used: u64 = t
                .rows
                .iter()
                .enumerate()
                .filter(|(ri, _)| !t.free.contains(&(*ri as u32)))
                .map(|(_, r)| r.2 as u64)
                .sum();
            let total_slots = t.slots.capacity() as u64;
            ribs += (total_slots - used.min(total_slots)) * std::mem::size_of::<Slot>() as u64;
        }
        extribs += self.slot_overflow.len() as u64 * 16;
        MemBreakdown {
            vertebrae: self.chars.heap_bytes() as u64,
            links: self.lels.capacity() as u64 * 2
                + self.ptrs.capacity() as u64 * 4
                + self.lel_overflow.len() as u64 * 16,
            ribs,
            extribs,
        }
    }

    /// Number of indexed characters.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Dynamic-behaviour statistics (migrations, overflows).
    pub fn stats(&self) -> CompactStats {
        self.stats
    }

    /// Reconstruct the indexed text from the packed vertebra labels.
    pub fn recover_text(&self) -> Vec<Code> {
        (0..self.len()).map(|i| self.chars.get(i)).collect()
    }

    // ----- label helpers ---------------------------------------------------

    fn lel_value(&self, node: u32) -> u32 {
        let raw = self.lels[node as usize];
        if raw == LABEL_OVERFLOW {
            self.lel_overflow[&node]
        } else {
            raw as u32
        }
    }

    fn store_lel(&mut self, node: u32, lel: u32) {
        if lel >= LABEL_OVERFLOW as u32 {
            self.lels[node as usize] = LABEL_OVERFLOW;
            self.lel_overflow.insert(node, lel);
            self.stats.label_overflows += 1;
        } else {
            self.lels[node as usize] = lel as u16;
        }
    }

    /// Resolve a slot's (pt, prt), consulting the overflow table.
    fn slot_labels(&self, node: u32, slot_idx: u8, s: &Slot) -> (u32, u32) {
        if s.pt == LABEL_OVERFLOW || (s.kind == SLOT_EXTRIB && s.prt == LABEL_OVERFLOW) {
            self.slot_overflow[&(node, slot_idx)]
        } else {
            (s.pt as u32, s.prt as u32)
        }
    }

    // ----- LT/RT plumbing --------------------------------------------------

    fn rt_ref(&self, node: u32) -> Option<(usize, u32)> {
        let p = self.ptrs[node as usize];
        (p & PTR_TAG != 0).then_some((((p >> CLASS_SHIFT) & 0x3) as usize, p & IDX_MASK))
    }

    fn link_dest(&self, node: u32) -> u32 {
        match self.rt_ref(node) {
            Some((class, idx)) => self.rts[class].rows[idx as usize].1,
            None => self.ptrs[node as usize],
        }
    }

    /// Iterate the used slots of `node` (if it has an RT row).
    fn slots_of(&self, node: u32) -> &[Slot] {
        match self.rt_ref(node) {
            Some((class, idx)) => {
                let t = &self.rts[class];
                let (_, _, used) = t.rows[idx as usize];
                let base = idx as usize * t.cap;
                &t.slots[base..base + used as usize]
            }
            None => &[],
        }
    }

    /// Append a downstream-edge slot to `node`, migrating its row to a
    /// larger Rib Table when full. Returns the slot's stable position.
    fn push_slot(&mut self, node: u32, slot: Slot) -> u8 {
        match self.rt_ref(node) {
            None => {
                // First edge: move the link destination into a fresh RT1 row.
                let ld = self.ptrs[node as usize];
                let idx = self.rts[0].alloc(node, ld);
                let base = idx as usize * self.rts[0].cap;
                self.rts[0].slots[base] = slot;
                self.rts[0].rows[idx as usize].2 = 1;
                self.ptrs[node as usize] = PTR_TAG | idx;
                0
            }
            Some((class, idx)) => {
                let used = self.rts[class].rows[idx as usize].2 as usize;
                if used < self.rts[class].cap {
                    let base = idx as usize * self.rts[class].cap;
                    self.rts[class].slots[base + used] = slot;
                    self.rts[class].rows[idx as usize].2 = (used + 1) as u16;
                    used as u8
                } else {
                    // Migrate to the next class (slot order preserved so the
                    // overflow-table keys stay valid).
                    let next = class + 1;
                    assert!(
                        next < self.rts.len(),
                        "node fan-out exceeded the largest rib-table class"
                    );
                    let (_, ld, _) = self.rts[class].rows[idx as usize];
                    let nidx = self.rts[next].alloc(node, ld);
                    let src = idx as usize * self.rts[class].cap;
                    let dst = nidx as usize * self.rts[next].cap;
                    for k in 0..used {
                        self.rts[next].slots[dst + k] = self.rts[class].slots[src + k];
                    }
                    self.rts[next].slots[dst + used] = slot;
                    self.rts[next].rows[nidx as usize].2 = (used + 1) as u16;
                    self.rts[class].release(idx);
                    self.ptrs[node as usize] = PTR_TAG | ((next as u32) << CLASS_SHIFT) | nidx;
                    self.stats.migrations += 1;
                    used as u8
                }
            }
        }
    }

    fn set_link(&mut self, node: u32, dest: u32, lel: u32) {
        debug_assert!(self.rt_ref(node).is_none(), "tail node cannot have edges yet");
        self.ptrs[node as usize] = dest;
        self.store_lel(node, lel);
    }

    fn add_rib(&mut self, node: u32, c: Code, dest: u32, pt: u32) {
        let stored_pt = if pt >= LABEL_OVERFLOW as u32 { LABEL_OVERFLOW } else { pt as u16 };
        let slot = Slot { kind: c, rd: dest, pt: stored_pt, prt: 0 };
        let pos = self.push_slot(node, slot);
        if stored_pt == LABEL_OVERFLOW {
            self.slot_overflow.insert((node, pos), (pt, 0));
            self.stats.label_overflows += 1;
        }
    }

    fn add_extrib(&mut self, node: u32, prt: u32, dest: u32, pt: u32) {
        let over = pt >= LABEL_OVERFLOW as u32 || prt >= LABEL_OVERFLOW as u32;
        let slot = Slot {
            kind: SLOT_EXTRIB,
            rd: dest,
            pt: if over { LABEL_OVERFLOW } else { pt as u16 },
            prt: if over { LABEL_OVERFLOW } else { prt as u16 },
        };
        let pos = self.push_slot(node, slot);
        if over {
            self.slot_overflow.insert((node, pos), (pt, prt));
            self.stats.label_overflows += 1;
        }
    }

    // ----- construction ----------------------------------------------------

    /// The APPEND procedure on the compact layout (same logic as
    /// [`crate::build`]).
    fn append(&mut self, c: Code) {
        self.append_observed(c, &mut crate::observe::NoBuildObserver);
    }

    /// APPEND with observer hooks; emits the same events as the reference
    /// engine so cross-engine [`BuildStats`] compare equal.
    fn append_observed<O: BuildObserver>(&mut self, c: Code, o: &mut O) {
        self.chars.push(c);
        if let Some(p) = &mut self.packed {
            if !p.try_push(c) {
                self.packed = None;
            }
        }
        self.lels.push(0);
        self.ptrs.push(ROOT);
        let t = self.len() as u32;
        let prev = t - 1;
        if prev == ROOT {
            if O::ENABLED {
                o.event(BuildEvent::FirstChar);
                o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
            }
            return;
        }
        let (mut cur, mut l) = self.link_of(prev);
        loop {
            if self.chars.get(cur as usize) == c {
                // Vertebra cur → cur+1 carries `c`.
                self.set_link(t, cur + 1, l + 1);
                if O::ENABLED {
                    o.event(BuildEvent::Case1);
                    o.event(BuildEvent::LinkSet { dest: cur + 1, lel: l + 1 });
                }
                return;
            }
            match self.rib_of(cur, c) {
                Some((dest, pt)) if pt >= l => {
                    self.set_link(t, dest, l + 1);
                    if O::ENABLED {
                        o.event(BuildEvent::Case2);
                        o.event(BuildEvent::LinkSet { dest, lel: l + 1 });
                    }
                    return;
                }
                Some((dest, pt)) => {
                    self.extend_via_extribs(cur, dest, pt, l, t, o);
                    return;
                }
                None => {
                    self.add_rib(cur, c, t, l);
                    if O::ENABLED {
                        o.event(BuildEvent::RibCreated { pt: l });
                    }
                    if cur == ROOT {
                        self.set_link(t, ROOT, 0);
                        if O::ENABLED {
                            o.event(BuildEvent::Case3Root);
                            o.event(BuildEvent::LinkSet { dest: ROOT, lel: 0 });
                        }
                        return;
                    }
                    if O::ENABLED {
                        o.event(BuildEvent::ChainStep);
                    }
                    let (nd, nl) = self.link_of(cur);
                    cur = nd;
                    l = nl;
                }
            }
        }
    }

    fn extend_via_extribs<O: BuildObserver>(
        &mut self,
        _node: u32,
        rib_dest: u32,
        prt: u32,
        l: u32,
        t: u32,
        o: &mut O,
    ) {
        let t0 = if O::ENABLED { Some(std::time::Instant::now()) } else { None };
        let mut last_dest = rib_dest;
        let mut last_pt = prt;
        while let Some((edest, ept)) = self.extrib_of(last_dest, prt) {
            if ept >= l {
                self.set_link(t, edest, l + 1);
                if O::ENABLED {
                    o.event(BuildEvent::Case4Link);
                    o.event(BuildEvent::LinkSet { dest: edest, lel: l + 1 });
                    if let Some(t0) = t0 {
                        o.phase(BuildPhase::RibFixup, t0.elapsed().as_nanos() as u64);
                    }
                }
                return;
            }
            if O::ENABLED {
                o.event(BuildEvent::ChainStep);
            }
            last_dest = edest;
            last_pt = ept;
        }
        self.add_extrib(last_dest, prt, t, l);
        self.set_link(t, last_dest, last_pt + 1);
        if O::ENABLED {
            o.event(BuildEvent::ExtribCreated { prt, pt: l });
            o.event(BuildEvent::Case4Extrib);
            o.event(BuildEvent::LinkSet { dest: last_dest, lel: last_pt + 1 });
            if let Some(t0) = t0 {
                o.phase(BuildPhase::RibFixup, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    // ----- space accounting -------------------------------------------------

    /// Actual heap bytes of this Rust representation.
    pub fn heap_bytes(&self) -> usize {
        self.chars.heap_bytes()
            + self.lels.capacity() * 2
            + self.ptrs.capacity() * 4
            + self.rts.iter().map(RtTable::heap_bytes).sum::<usize>()
            + (self.lel_overflow.len() + self.slot_overflow.len()) * 16
    }

    /// Bytes per indexed character of the *paper's packed layout* (LT row =
    /// 2-byte LEL + 4-byte pointer; RT row = 4-byte LD + 6 bytes per rib
    /// slot + 8 per extrib slot; packed character labels; overflow tables).
    /// This is the figure comparable to the paper's "< 12 bytes per indexed
    /// character".
    pub fn layout_bytes_per_char(&self) -> f64 {
        let n = self.len().max(1) as f64;
        let lt = self.len() as f64 * 6.0;
        let chars = self.len() as f64 * self.chars.bits as f64 / 8.0;
        let mut rt = 0f64;
        for t in &self.rts {
            for (ri, row) in t.rows.iter().enumerate() {
                if t.free.contains(&(ri as u32)) {
                    continue;
                }
                rt += 4.0; // LD
                let base = ri * t.cap;
                for s in &t.slots[base..base + row.2 as usize] {
                    rt += if s.kind == SLOT_EXTRIB { 8.0 } else { 6.0 };
                }
            }
        }
        let overflow = (self.lel_overflow.len() + self.slot_overflow.len()) as f64 * 8.0;
        (lt + chars + rt + overflow) / n
    }

    /// Live rows per Rib-Table class (diagnostics / Table 4 cross-check).
    pub fn rt_occupancy(&self) -> Vec<usize> {
        self.rts.iter().map(RtTable::live_rows).collect()
    }
}

impl SpineOps for CompactSpine {
    fn text_len(&self) -> usize {
        self.len()
    }

    #[inline]
    fn vertebra_out(&self, node: NodeId) -> Option<Code> {
        ((node as usize) < self.len()).then(|| self.chars.get(node as usize))
    }

    #[inline]
    fn link_of(&self, node: NodeId) -> (NodeId, u32) {
        (self.link_dest(node), self.lel_value(node))
    }

    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)> {
        for (i, s) in self.slots_of(node).iter().enumerate() {
            if s.kind == c {
                let (pt, _) = self.slot_labels(node, i as u8, s);
                return Some((s.rd, pt));
            }
        }
        None
    }

    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)> {
        for (i, s) in self.slots_of(node).iter().enumerate() {
            if s.kind == SLOT_EXTRIB {
                let (pt, sprt) = self.slot_labels(node, i as u8, s);
                if sprt == prt {
                    return Some((s.rd, pt));
                }
            }
        }
        None
    }

    fn ops_counters(&self) -> &Counters {
        &self.counters
    }

    fn backbone_packing(&self) -> Option<u32> {
        self.packed.as_ref().map(|p| p.bits())
    }

    #[inline]
    fn label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> usize {
        match &self.packed {
            Some(p) => p.lcp(node as usize, pattern, from, pattern.len() - from),
            None => {
                let mut k = 0;
                while from + k < pattern.len() {
                    match self.vertebra_out(node + k as NodeId) {
                        Some(c) if c == pattern.get(from + k) => k += 1,
                        _ => break,
                    }
                }
                k
            }
        }
    }
}

impl OnlineIndex for CompactSpine {
    fn push(&mut self, code: Code) -> Result<()> {
        if (code as usize) >= self.alphabet.code_space() {
            return Err(Error::InvalidSymbol { byte: code, pos: self.len() });
        }
        if self.len() as u64 >= IDX_MASK as u64 {
            return Err(Error::TooLong { len: self.len(), max: IDX_MASK as usize });
        }
        self.append(code);
        Ok(())
    }
}

impl StringIndex for CompactSpine {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn text_len(&self) -> usize {
        self.len()
    }

    fn symbol_at(&self, pos: usize) -> Code {
        self.chars.get(pos)
    }

    fn find_first(&self, pattern: &[Code]) -> Option<usize> {
        crate::search::locate(self, pattern).map(|end| end as usize - pattern.len())
    }

    fn find_all(&self, pattern: &[Code]) -> Vec<usize> {
        if pattern.is_empty() {
            return Vec::new();
        }
        crate::occurrences::find_all_ends(self, pattern)
            .into_iter()
            .map(|end| end as usize - pattern.len())
            .collect()
    }
}

impl MatchingIndex for CompactSpine {
    fn matching_statistics(&self, query: &[Code]) -> MatchingStats {
        crate::matching::matching_statistics(self, query)
    }

    fn maximal_matches(&self, query: &[Code], min_len: usize) -> Vec<MaximalMatch> {
        crate::matching::maximal_matches(self, query, min_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Spine;

    fn both(text: &[u8]) -> (Alphabet, Spine, CompactSpine) {
        let a = Alphabet::dna();
        let r = Spine::build_from_bytes(a.clone(), text).unwrap();
        let c = CompactSpine::build_from_bytes(a.clone(), text).unwrap();
        (a, r, c)
    }

    /// Edge-for-edge equality through the SpineOps surface.
    fn assert_equivalent(r: &Spine, c: &CompactSpine, a: &Alphabet) {
        assert_eq!(SpineOps::text_len(r), SpineOps::text_len(c));
        for node in 0..=r.len() as u32 {
            assert_eq!(r.vertebra_out(node), c.vertebra_out(node), "vertebra at {node}");
            if node != ROOT {
                assert_eq!(r.link_of(node), c.link_of(node), "link at {node}");
            }
            for code in 0..a.code_space() as Code {
                assert_eq!(r.rib_of(node, code), c.rib_of(node, code), "rib {code} at {node}");
            }
            for e in &r.nodes()[node as usize].extribs {
                assert_eq!(
                    c.extrib_of(node, e.prt),
                    Some((e.dest, e.pt)),
                    "extrib prt {} at {node}",
                    e.prt
                );
            }
        }
    }

    #[test]
    fn packed_chars_round_trip() {
        let mut p = PackedChars::new(5);
        let vals: Vec<Code> = (0..200).map(|i| (i * 7 % 21) as Code).collect();
        for &v in &vals {
            p.push(v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(i), v, "index {i}");
        }
        assert_eq!(p.len(), 200);
    }

    #[test]
    fn packed_chars_word_boundary() {
        // 5-bit codes cross 64-bit word boundaries at index 12/13.
        let mut p = PackedChars::new(5);
        for i in 0..30u8 {
            p.push(i % 21);
        }
        for i in 0..30usize {
            assert_eq!(p.get(i), (i % 21) as u8);
        }
    }

    #[test]
    fn equivalent_on_paper_string() {
        let (a, r, c) = both(b"AACCACAACA");
        assert_equivalent(&r, &c, &a);
        assert_eq!(c.recover_text(), r.recover_text());
    }

    #[test]
    fn equivalent_on_pathological_strings() {
        for t in [
            &b"AAAAAAAAAAAAAAAAAAAAAAAA"[..],
            b"ACACACACACACACACAC",
            b"ACGTACGTACGTACGT",
            b"AACCACAACAGGTTACGACGACCAACCACAACA",
        ] {
            let (a, r, c) = both(t);
            assert_equivalent(&r, &c, &a);
        }
    }

    #[test]
    fn queries_agree_with_reference() {
        let (a, r, c) = both(b"AACCACAACAGGTTACGACGACCA");
        for p in [&b"CA"[..], b"ACCAA", b"GG", b"AACCACAACAGGTTACGACGACCA", b"T"] {
            let p = a.encode(p).unwrap();
            assert_eq!(StringIndex::find_all(&r, &p), StringIndex::find_all(&c, &p));
            assert_eq!(r.find_first(&p), c.find_first(&p));
        }
        let q = a.encode(b"TTACGACCACAACAGG").unwrap();
        assert_eq!(
            MatchingIndex::matching_statistics(&r, &q),
            MatchingIndex::matching_statistics(&c, &q)
        );
        assert_eq!(
            MatchingIndex::maximal_matches(&r, &q, 3),
            MatchingIndex::maximal_matches(&c, &q, 3)
        );
    }

    #[test]
    fn migration_happens_and_is_counted() {
        // A string whose nodes accumulate several downstream edges forces
        // RT1→RT2 (and deeper) migrations.
        let a = Alphabet::dna();
        let text = b"ACGTAGCTTACGCATGCGTACGATCGATCGTAGCATCGATGCAGTCAGT".repeat(4);
        let c = CompactSpine::build_from_bytes(a, &text).unwrap();
        assert!(c.stats().migrations > 0);
        let occ = c.rt_occupancy();
        assert!(occ[0] > 0, "RT1 should hold single-edge nodes: {occ:?}");
    }

    #[test]
    fn layout_stays_under_12_bytes_per_char_for_dna() {
        // The paper's headline space figure, on a repetitive DNA-like text.
        let a = Alphabet::dna();
        let text = b"ACGTACGGTACGTTTACGACGACCAACC".repeat(64);
        let c = CompactSpine::build_from_bytes(a, &text).unwrap();
        let b = c.layout_bytes_per_char();
        assert!(b < 12.0, "layout bytes/char = {b}");
        assert!(b > 6.0, "accounting must include LT (6 B) + labels: {b}");
    }

    #[test]
    fn free_list_recycles_rows() {
        let a = Alphabet::dna();
        let text = b"ACGTAGCTTACGCATGCGTACGATCGATCGTAGCATCGATGCAGTCAGT".repeat(2);
        let c = CompactSpine::build_from_bytes(a, &text).unwrap();
        // After migrations, RT1 must have freed rows available or reused.
        let t = &c.rts[0];
        assert_eq!(t.live_rows() + t.free.len(), t.rows.len());
    }

    #[test]
    fn protein_alphabet_works() {
        let a = Alphabet::protein();
        let text = b"MKVLAAGGMKVLAAGGWWYHKMKVLAAGG";
        let c = CompactSpine::build_from_bytes(a.clone(), text).unwrap();
        let r = Spine::build_from_bytes(a.clone(), text).unwrap();
        assert_equivalent(&r, &c, &a);
    }

    #[test]
    fn rejects_overlong_codes() {
        let mut c = CompactSpine::new(Alphabet::dna());
        assert!(matches!(c.push(9), Err(Error::InvalidSymbol { .. })));
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

/// Binary serialization of the compact index.
///
/// The paper argues SPINE's "linearity of its structure makes it more
/// amenable for integration with database engines"; this module makes the
/// compact layout durable: a little-endian, versioned binary format that
/// round-trips every table (Link Table, Rib Tables, free lists, overflow
/// tables, packed character labels). Combined with prefix partitioning,
/// a stored index is usable for any prefix of the text it was built on.
mod persist {
    use super::*;
    use std::io::{Read, Write};
    use strindex::AlphabetKind;

    const MAGIC: &[u8; 4] = b"SPNC";
    const VERSION: u16 = 1;

    fn w_u16<W: Write>(w: &mut W, v: u16) -> Result<()> {
        w.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn w_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
        w.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn w_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
        w.write_all(&v.to_le_bytes()).map_err(Into::into)
    }
    fn r_u8<R: Read>(r: &mut R) -> Result<u8> {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn r_u16<R: Read>(r: &mut R) -> Result<u16> {
        let mut b = [0u8; 2];
        r.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }
    fn r_u32<R: Read>(r: &mut R) -> Result<u32> {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn r_u64<R: Read>(r: &mut R) -> Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn kind_tag(k: AlphabetKind) -> u8 {
        match k {
            AlphabetKind::Dna => 0,
            AlphabetKind::Protein => 1,
            AlphabetKind::Ascii => 2,
            AlphabetKind::Bytes => 3,
        }
    }

    fn alphabet_from_tag(t: u8) -> Result<Alphabet> {
        Ok(match t {
            0 => Alphabet::dna(),
            1 => Alphabet::protein(),
            2 => Alphabet::ascii(),
            3 => Alphabet::bytes(),
            other => return Err(strindex::Error::Parse(format!("unknown alphabet tag {other}"))),
        })
    }

    impl CompactSpine {
        /// Serialize the index to `w` (format `SPNC`, version 1).
        pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
            w.write_all(MAGIC)?;
            w_u16(w, VERSION)?;
            w.write_all(&[kind_tag(self.alphabet.kind())])?;
            w_u64(w, self.len() as u64)?;
            // Packed characters.
            w_u32(w, self.chars.bits)?;
            w_u64(w, self.chars.words.len() as u64)?;
            for &word in &self.chars.words {
                w_u64(w, word)?;
            }
            // Link table.
            for &lel in &self.lels {
                w_u16(w, lel)?;
            }
            for &ptr in &self.ptrs {
                w_u32(w, ptr)?;
            }
            // Rib tables.
            w_u16(w, self.rts.len() as u16)?;
            for t in &self.rts {
                w_u32(w, t.cap as u32)?;
                w_u64(w, t.rows.len() as u64)?;
                for &(node, ld, used) in &t.rows {
                    w_u32(w, node)?;
                    w_u32(w, ld)?;
                    w_u16(w, used)?;
                }
                for s in &t.slots {
                    w.write_all(&[s.kind])?;
                    w_u32(w, s.rd)?;
                    w_u16(w, s.pt)?;
                    w_u16(w, s.prt)?;
                }
                w_u64(w, t.free.len() as u64)?;
                for &f in &t.free {
                    w_u32(w, f)?;
                }
            }
            // Overflow tables (sorted for determinism).
            let mut lel_over: Vec<_> = self.lel_overflow.iter().collect();
            lel_over.sort();
            w_u64(w, lel_over.len() as u64)?;
            for (&node, &v) in lel_over {
                w_u32(w, node)?;
                w_u32(w, v)?;
            }
            let mut slot_over: Vec<_> = self.slot_overflow.iter().collect();
            slot_over.sort();
            w_u64(w, slot_over.len() as u64)?;
            for (&(node, pos), &(pt, prt)) in slot_over {
                w_u32(w, node)?;
                w.write_all(&[pos])?;
                w_u32(w, pt)?;
                w_u32(w, prt)?;
            }
            Ok(())
        }

        /// Deserialize an index previously written by
        /// [`write_to`](Self::write_to).
        pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
            let mut magic = [0u8; 4];
            r.read_exact(&mut magic)?;
            if &magic != MAGIC {
                return Err(strindex::Error::Parse("bad magic".into()));
            }
            let version = r_u16(r)?;
            if version != VERSION {
                return Err(strindex::Error::Parse(format!("unsupported version {version}")));
            }
            let alphabet = alphabet_from_tag(r_u8(r)?)?;
            let n = r_u64(r)? as usize;
            let bits = r_u32(r)?;
            if bits != alphabet.label_bits() {
                return Err(strindex::Error::Parse("label width mismatch".into()));
            }
            let words_len = r_u64(r)? as usize;
            let mut chars = PackedChars::new(bits);
            chars.words = (0..words_len).map(|_| r_u64(r)).collect::<Result<_>>()?;
            chars.len = n;
            let lels = (0..n + 1).map(|_| r_u16(r)).collect::<Result<Vec<_>>>()?;
            let ptrs = (0..n + 1).map(|_| r_u32(r)).collect::<Result<Vec<_>>>()?;
            let rt_count = r_u16(r)? as usize;
            let mut rts = Vec::with_capacity(rt_count);
            for _ in 0..rt_count {
                let cap = r_u32(r)? as usize;
                let rows_len = r_u64(r)? as usize;
                let mut t = RtTable::new(cap);
                for _ in 0..rows_len {
                    let node = r_u32(r)?;
                    let ld = r_u32(r)?;
                    let used = r_u16(r)?;
                    t.rows.push((node, ld, used));
                }
                for _ in 0..rows_len * cap {
                    let kind = r_u8(r)?;
                    let rd = r_u32(r)?;
                    let pt = r_u16(r)?;
                    let prt = r_u16(r)?;
                    t.slots.push(Slot { kind, rd, pt, prt });
                }
                let free_len = r_u64(r)? as usize;
                t.free = (0..free_len).map(|_| r_u32(r)).collect::<Result<_>>()?;
                rts.push(t);
            }
            let mut lel_overflow = FxHashMap::default();
            for _ in 0..r_u64(r)? {
                let node = r_u32(r)?;
                let v = r_u32(r)?;
                lel_overflow.insert(node, v);
            }
            let mut slot_overflow = FxHashMap::default();
            for _ in 0..r_u64(r)? {
                let node = r_u32(r)?;
                let pos = r_u8(r)?;
                let pt = r_u32(r)?;
                let prt = r_u32(r)?;
                slot_overflow.insert((node, pos), (pt, prt));
            }
            // Rebuild the word-packed shadow from the persisted labels
            // (gives up cleanly if any code exceeds the packing).
            let packed = alphabet.pack_bits().and_then(|bits| {
                let codes: Vec<Code> = (0..n).map(|i| chars.get(i)).collect();
                PackedText::from_codes(bits, &codes)
            });
            Ok(CompactSpine {
                alphabet,
                chars,
                lels,
                ptrs,
                rts,
                lel_overflow,
                slot_overflow,
                stats: CompactStats::default(),
                counters: Counters::new(),
                packed,
            })
        }

        /// Save to a file.
        pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
            let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
            self.write_to(&mut w)?;
            use std::io::Write as _;
            w.flush().map_err(Into::into)
        }

        /// Load from a file.
        pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
            let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
            Self::read_from(&mut r)
        }
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use strindex::StringIndex;

    fn round_trip(c: &CompactSpine) -> CompactSpine {
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        CompactSpine::read_from(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_paper_string() {
        let a = Alphabet::dna();
        let c = CompactSpine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        let d = round_trip(&c);
        assert_eq!(d.recover_text(), c.recover_text());
        let p = a.encode(b"CA").unwrap();
        assert_eq!(d.find_all(&p), c.find_all(&p));
        assert!(!d.contains(&a.encode(b"ACCAA").unwrap()));
    }

    #[test]
    fn round_trips_bigger_index_bytewise() {
        let a = Alphabet::dna();
        let text = b"ACGTAGCTTACGCATGCGTACGATCGATCGTAGCATCGATGCAGTCAGT".repeat(8);
        let c = CompactSpine::build_from_bytes(a, &text).unwrap();
        let d = round_trip(&c);
        // Serialization is deterministic and stable across a round trip.
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        c.write_to(&mut b1).unwrap();
        d.write_to(&mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn round_trips_protein() {
        let a = Alphabet::protein();
        let c = CompactSpine::build_from_bytes(a, b"MKVLAAGGMKVLAAGGWWYHKMKVLAAGG").unwrap();
        let d = round_trip(&c);
        assert_eq!(d.recover_text(), c.recover_text());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = CompactSpine::read_from(&mut &b"NOPE"[..]);
        assert!(err.is_err());
        let a = Alphabet::dna();
        let c = CompactSpine::build_from_bytes(a, b"ACGT").unwrap();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf[4] = 0xFF; // clobber the version
        assert!(CompactSpine::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let a = Alphabet::dna();
        let c = CompactSpine::build_from_bytes(a, b"ACGTACGT").unwrap();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(CompactSpine::read_from(&mut &buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn save_and_load_file() {
        let a = Alphabet::dna();
        let c = CompactSpine::build_from_bytes(a.clone(), b"AACCACAACAGGTT").unwrap();
        let dir = std::env::temp_dir().join("spine-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("idx-{}.spnc", std::process::id()));
        c.save(&path).unwrap();
        let d = CompactSpine::load(&path).unwrap();
        assert_eq!(d.recover_text(), c.recover_text());
        std::fs::remove_file(&path).ok();
    }
}
