//! The heatmap-driven hot set (DESIGN §13, ROADMAP item 3).
//!
//! A [`HotSet`] is the distilled output of a [`Heatmap`]: the nodes a
//! workload's traversals concentrate on, heat-ranked. Two consumers cash it
//! in at the storage layer:
//!
//! * [`crate::DiskSpine::seal_to_clustered`] duplicates the hot nodes'
//!   records onto dedicated *hot pages* appended to the sealed file, so a
//!   chain walk over the hot set stays on a handful of pages instead of
//!   striding the whole node table.
//! * [`crate::DiskSpine::pin_hot`] / [`crate::DiskSpine::pin_hot_prefix`]
//!   pin the pages holding the hot set into the buffer pool at open time,
//!   so occurrence scans (under a scan-resistant policy) can never flush
//!   them.
//!
//! Without traces there is still a principled default: the paper's Figure 8
//! shows link destinations concentrating on the *upstream* part of the
//! backbone, so [`HotSet::backbone_prefix`] declares the first nodes hot.

use crate::node::NodeId;
use crate::trace::Heatmap;

/// A heat-ranked set of hot backbone nodes.
#[derive(Debug, Clone, Default)]
pub struct HotSet {
    /// `(node, heat)`, hottest first (ties broken toward lower ids).
    ranked: Vec<(NodeId, u64)>,
}

impl HotSet {
    /// The `max_nodes` hottest nodes of `heatmap` (fewer if the workload
    /// touched fewer).
    pub fn from_heatmap(heatmap: &Heatmap, max_nodes: usize) -> Self {
        HotSet { ranked: heatmap.hottest(max_nodes) }
    }

    /// The trace-free default: the first `max_nodes` nodes of a
    /// `text_len`-character backbone, with synthetic heat decreasing along
    /// the prefix (Figure 8's link-destination skew).
    pub fn backbone_prefix(text_len: usize, max_nodes: usize) -> Self {
        let take = max_nodes.min(text_len + 1);
        HotSet { ranked: (0..take as NodeId).map(|n| (n, (take as u64) - n as u64)).collect() }
    }

    /// An explicit, pre-ranked set (tests, hand-tuned deployments).
    pub fn from_ranked(ranked: Vec<(NodeId, u64)>) -> Self {
        HotSet { ranked }
    }

    /// `(node, heat)` pairs, hottest first.
    pub fn ranked(&self) -> &[(NodeId, u64)] {
        &self.ranked
    }

    /// Hot node ids, hottest first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ranked.iter().map(|&(n, _)| n)
    }

    /// Number of hot nodes.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_prefix_is_ranked_and_bounded() {
        let h = HotSet::backbone_prefix(10, 4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.nodes().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let heats: Vec<u64> = h.ranked().iter().map(|&(_, v)| v).collect();
        assert!(heats.windows(2).all(|w| w[0] > w[1]), "heat must decrease: {heats:?}");
        // Never more nodes than the backbone has.
        assert_eq!(HotSet::backbone_prefix(2, 100).len(), 3);
    }

    #[test]
    fn from_heatmap_takes_the_hottest() {
        use crate::trace::{QueryTrace, TraceEvent};
        let mut hm = Heatmap::new(8);
        let t = QueryTrace {
            pattern: vec![],
            text_len: 8,
            events: vec![
                TraceEvent::Occurrence { node: 5, link: 0, lel: 1 },
                TraceEvent::Occurrence { node: 5, link: 0, lel: 1 },
                TraceEvent::Occurrence { node: 2, link: 0, lel: 1 },
            ],
            dropped: 0,
            first_end: None,
            ends: vec![],
            error: None,
        };
        hm.add(&t);
        let h = HotSet::from_heatmap(&hm, 2);
        assert_eq!(h.nodes().next(), Some(5));
        assert!(h.len() <= 2);
    }
}
