//! Structural invariant checker.
//!
//! [`Spine::verify`] re-derives every label from first principles (using the
//! recovered text) and cross-checks the stored structure. It is O(n²) in
//! the worst case and meant for tests and debugging, not production paths.
//! The checked invariants are the machine-checkable core of the paper's
//! correctness argument (the companion TR's theorem):
//!
//! 1. node count = text length + 1;
//! 2. every non-root node's link points to the first-occurrence end of its
//!    longest early-terminating suffix, with LEL = that suffix's length;
//! 3. every rib/extrib destination equals the first-occurrence end of the
//!    string it lets a maximal valid path spell;
//! 4. extrib chains have strictly increasing PTs and consistent PRTs.

use crate::build::Spine;
use crate::node::ROOT;
use strindex::Code;

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Node at which the violation was detected.
    pub node: u32,
    /// Human-readable description.
    pub what: String,
}

/// First-occurrence end (1-based) of `pattern` in `text`, by scan.
fn first_end(text: &[Code], pattern: &[Code]) -> Option<u32> {
    if pattern.is_empty() {
        return Some(0);
    }
    text.windows(pattern.len())
        .position(|w| w == pattern)
        .map(|start| (start + pattern.len()) as u32)
}

impl Spine {
    /// Check all structural invariants; returns every violation found
    /// (empty = sound). Quadratic — use on test-sized inputs.
    pub fn verify(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let text = self.recover_text();
        let n = text.len();
        if self.nodes().len() != n + 1 {
            out.push(Violation {
                node: 0,
                what: format!("{} nodes for {} characters", self.nodes().len(), n),
            });
        }

        for i in 1..=n {
            let node = &self.nodes()[i];
            // Invariant 2: link/LEL definition. An early-terminating suffix
            // of prefix `i` occurs ending at some position ≤ i-1, i.e. as a
            // window of text[..i-1].
            let mut want_lel = 0u32;
            let mut want_dest = ROOT;
            for k in (1..i).rev() {
                let suffix = &text[i - k..i];
                if let Some(e) = first_end(&text[..i - 1], suffix) {
                    want_lel = k as u32;
                    want_dest = e;
                    break;
                }
            }
            if (node.link, node.lel) != (want_dest, want_lel) {
                out.push(Violation {
                    node: i as u32,
                    what: format!(
                        "link is ({}, {}) but definition gives ({}, {})",
                        node.link, node.lel, want_dest, want_lel
                    ),
                });
            }
        }

        // Invariants 3 & 4: edges address first occurrences; chains ordered.
        for i in 0..=n {
            let node = &self.nodes()[i];
            for r in &node.ribs {
                // The longest suffix the rib serves has length pt and
                // terminates at node i; its extension's first end must be
                // r.dest. Reconstruct that suffix from the backbone.
                let pt = r.pt as usize;
                if pt > i {
                    out.push(Violation {
                        node: i as u32,
                        what: format!("rib PT {} exceeds node depth {}", pt, i),
                    });
                    continue;
                }
                let mut w: Vec<Code> = text[i - pt..i].to_vec();
                w.push(r.cl);
                match first_end(&text, &w) {
                    Some(e) if e == r.dest => {}
                    other => out.push(Violation {
                        node: i as u32,
                        what: format!(
                            "rib (cl {}, pt {}) dest {} but first occurrence ends at {:?}",
                            r.cl, r.pt, r.dest, other
                        ),
                    }),
                }
            }
            for e in &node.extribs {
                if e.pt <= e.prt {
                    out.push(Violation {
                        node: i as u32,
                        what: format!("extrib PT {} not above PRT {}", e.pt, e.prt),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strindex::Alphabet;

    #[test]
    fn paper_example_verifies() {
        let s = Spine::build_from_bytes(Alphabet::dna(), b"AACCACAACA").unwrap();
        assert_eq!(s.verify(), vec![]);
    }

    #[test]
    fn pathological_strings_verify() {
        let a = Alphabet::dna();
        for t in [
            &b"AAAAAAAAAAAAAAAA"[..],
            b"ACACACACACACAC",
            b"ACGTACGTACGTACGT",
            b"AABAAABAAAABC"
                .map(|c| match c {
                    b'B' => b'C',
                    b'C' => b'G',
                    x => x,
                })
                .as_slice(),
            b"A",
            b"CG",
        ] {
            let s = Spine::build_from_bytes(a.clone(), t).unwrap();
            assert_eq!(s.verify(), vec![], "text {:?}", String::from_utf8_lossy(t));
        }
    }

    #[test]
    fn corrupted_link_is_caught() {
        let mut s = Spine::build_from_bytes(Alphabet::dna(), b"AACCACAACA").unwrap();
        s.nodes[8].lel = 1; // truth is 2
        assert!(!s.verify().is_empty());
    }

    #[test]
    fn corrupted_rib_is_caught() {
        let mut s = Spine::build_from_bytes(Alphabet::dna(), b"AACCACAACA").unwrap();
        let rib = s.nodes[3].ribs[0];
        s.nodes[3].ribs[0].dest = rib.dest + 1;
        assert!(!s.verify().is_empty());
    }
}
