//! Repeat analysis straight off the link structure.
//!
//! SPINE's links make some classic suffix-structure queries answerable with
//! a single pass over the Link Table, no tree traversal at all:
//!
//! * the **longest repeated substring** is the maximum LEL — by definition
//!   LEL(i) is the length of the longest suffix of prefix `i` that occurred
//!   earlier, so the global maximum is exactly the longest string with two
//!   occurrences;
//! * the **occurrence count** of a pattern falls out of the usual backbone
//!   scan;
//! * per-position **repeat lengths** (the longest earlier-occurring suffix
//!   ending at each position) are the LEL column itself — the string-level
//!   analogue of a self-matching statistics vector.

use crate::build::Spine;
use crate::ops::SpineOps;
use strindex::{Code, Match};

impl Spine {
    /// Number of occurrences of `pattern` in the text (0 if absent).
    pub fn occurrence_count(&self, pattern: &[Code]) -> usize {
        if pattern.is_empty() {
            return 0;
        }
        crate::occurrences::find_all_ends(self, pattern).len()
    }

    /// The longest substring that occurs at least twice, as a [`Match`]
    /// locating its *second* occurrence (the first is at
    /// `link(end)` − len). `None` for texts with no repeated symbol.
    pub fn longest_repeated_substring(&self) -> Option<Match> {
        let (mut best_len, mut best_end) = (0u32, 0u32);
        for i in 1..=self.len() as u32 {
            let (_, lel) = self.link_of(i);
            if lel > best_len {
                best_len = lel;
                best_end = i;
            }
        }
        (best_len > 0)
            .then(|| Match { start: (best_end - best_len) as usize, len: best_len as usize })
    }

    /// For every text position `i` (1-based end), the length of the longest
    /// suffix of the length-`i` prefix that also occurs earlier — i.e. the
    /// LEL column. Positions with value 0 end a substring seen nowhere
    /// before.
    pub fn repeat_lengths(&self) -> Vec<u32> {
        (1..=self.len() as u32).map(|i| self.link_of(i).1).collect()
    }

    /// Length of the shortest prefix of `suffix_of_interest`… more useful
    /// form: the length of the shortest substring starting at `start` that
    /// occurs nowhere else (a *shortest unique substring* anchored at
    /// `start`), or `None` if even the full suffix repeats elsewhere.
    pub fn shortest_unique_at(&self, start: usize) -> Option<usize> {
        let text = self.recover_text();
        let mut lo = 1usize;
        let mut hi = text.len() - start;
        if self.occurrence_count(&text[start..]) > 1 {
            return None;
        }
        // Occurrence count is monotone non-increasing in the length, so
        // binary search for the first unique length.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.occurrence_count(&text[start..start + mid]) == 1 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strindex::Alphabet;

    fn build(text: &[u8]) -> (Alphabet, Spine) {
        let a = Alphabet::dna();
        (a.clone(), Spine::build_from_bytes(a, text).unwrap())
    }

    /// Longest repeated substring by brute force.
    fn naive_lrs(text: &[u8]) -> usize {
        let mut best = 0;
        for i in 0..text.len() {
            for j in i + 1..text.len() {
                let mut k = 0;
                while j + k < text.len() && text[i + k] == text[j + k] {
                    k += 1;
                }
                best = best.max(k);
            }
        }
        best
    }

    #[test]
    fn lrs_on_paper_string() {
        let (_, s) = build(b"AACCACAACA");
        let m = s.longest_repeated_substring().unwrap();
        assert_eq!(m.len, naive_lrs(b"AACCACAACA")); // "ACA" / "CA…", len 3
        assert_eq!(m.len, 3);
        // The reported occurrence really does repeat.
        let text = s.recover_text();
        let w = &text[m.start..m.start + m.len];
        assert!(s.occurrence_count(w) >= 2);
    }

    #[test]
    fn lrs_matches_naive_on_many_strings() {
        for t in [&b"ACGT"[..], b"AAAAAA", b"ACACACAC", b"ACGGTACGGTAC", b"AGGTCCGGATCCGGA", b"A"] {
            let (_, s) = build(t);
            let got = s.longest_repeated_substring().map_or(0, |m| m.len);
            assert_eq!(got, naive_lrs(t), "text {:?}", String::from_utf8_lossy(t));
        }
    }

    #[test]
    fn occurrence_counts() {
        let (a, s) = build(b"AACCACAACA");
        assert_eq!(s.occurrence_count(&a.encode(b"CA").unwrap()), 3);
        assert_eq!(s.occurrence_count(&a.encode(b"AACCACAACA").unwrap()), 1);
        assert_eq!(s.occurrence_count(&a.encode(b"G").unwrap()), 0);
        assert_eq!(s.occurrence_count(&[]), 0);
    }

    #[test]
    fn repeat_lengths_is_the_lel_column() {
        let (_, s) = build(b"AACCACAACA");
        assert_eq!(s.repeat_lengths(), vec![0, 1, 0, 1, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn shortest_unique_substrings() {
        let (_, s) = build(b"AACCACAACA");
        let text = s.recover_text();
        for start in 0..text.len() {
            match s.shortest_unique_at(start) {
                Some(len) => {
                    assert_eq!(s.occurrence_count(&text[start..start + len]), 1);
                    if len > 1 {
                        assert!(s.occurrence_count(&text[start..start + len - 1]) > 1);
                    }
                }
                None => {
                    assert!(s.occurrence_count(&text[start..]) > 1, "suffix at {start}");
                }
            }
        }
    }

    #[test]
    fn no_repeats_in_distinct_symbols() {
        let (_, s) = build(b"ACGT");
        assert!(s.longest_repeated_substring().is_none());
    }
}
