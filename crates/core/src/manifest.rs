//! The segment store's versioned manifest: the single source of truth for
//! what is durable.
//!
//! A [`crate::SegmentedSpine`] directory holds immutable sealed segment
//! files plus one `MANIFEST` file. The manifest names the live segments
//! (with their embedded per-document tables), the tombstoned document ids,
//! and the id-allocation high-water marks — everything recovery needs, in
//! one record, so one atomic file replacement commits an arbitrary state
//! transition (seal, retire, merge).
//!
//! ## Encoding
//!
//! Fixed-width little-endian binary with a magic/version prelude and a
//! trailing FNV-1a checksum over everything before it:
//!
//! ```text
//! "SPML" | version u16 | epoch u64 | next_doc u64 | next_segment u64
//! | segment count u32
//!   | per segment: id u64 | doc count u32 | per doc: (doc id u64, len u64)
//! | tombstone count u32 | tombstone ids u64...
//! | checksum u64
//! ```
//!
//! Decoding is strict: bad magic, a short buffer, trailing bytes, or a
//! checksum mismatch are [`Error::Parse`] (the bytes are garbage — a torn
//! or corrupted write); an unknown version is [`Error::FormatVersion`]
//! (the bytes are fine but this build cannot read them). The distinction
//! matters to recovery: parse failures on `MANIFEST` mean the store is
//! unrecoverable by this layer, never silently reinitialized.

use strindex::{Error, Result};

/// Version stamped into every manifest this build writes.
pub const MANIFEST_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"SPML";

/// One live segment: its file id plus the embedded document table.
///
/// Embedding the doc table here (rather than in the segment files) means a
/// single manifest commit atomically covers the segment list *and* every
/// document's identity — a half-written sidecar can never disagree with a
/// committed segment set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment file id: the data lives in `seg-<id>.pages` +
    /// `seg-<id>.meta`.
    pub id: u64,
    /// Global document ids, in concatenation order.
    pub doc_ids: Vec<u64>,
    /// Per-document lengths (symbols, excluding the separator), parallel
    /// to `doc_ids`.
    pub doc_lens: Vec<u64>,
}

impl SegmentEntry {
    /// Concatenation start offsets with a trailing sentinel (total length),
    /// assuming each document is followed by one separator symbol.
    pub fn starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.doc_lens.len() + 1);
        let mut at = 0usize;
        for &len in &self.doc_lens {
            starts.push(at);
            at += len as usize + 1;
        }
        starts.push(at);
        starts
    }
}

/// A committed snapshot of the segment store's durable state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Monotone commit counter; every successful commit is `epoch + 1` of
    /// the manifest it replaces.
    pub epoch: u64,
    /// Next global document id to assign. Memtable documents are volatile,
    /// so this advances only at seal commits — after a crash, ids handed to
    /// lost memtable documents are deliberately reissued.
    pub next_doc: u64,
    /// Next segment file id to assign.
    pub next_segment: u64,
    /// Live segments, oldest first.
    pub segments: Vec<SegmentEntry>,
    /// Retired-but-not-yet-compacted document ids (sorted, deduplicated).
    /// Only *sealed* documents appear here; memtable retirement is volatile
    /// by design (the document it hides is too).
    pub tombstones: Vec<u64>,
}

impl Manifest {
    /// Serialize to the on-disk byte layout (checksum included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.segments.len() * 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.next_doc.to_le_bytes());
        out.extend_from_slice(&self.next_segment.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.id.to_le_bytes());
            out.extend_from_slice(&(seg.doc_ids.len() as u32).to_le_bytes());
            for (&id, &len) in seg.doc_ids.iter().zip(&seg.doc_lens) {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.tombstones.len() as u32).to_le_bytes());
        for &t in &self.tombstones {
            out.extend_from_slice(&t.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and validate a manifest image.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(Error::Parse("manifest truncated".into()));
        }
        if &bytes[..4] != MAGIC {
            return Err(Error::Parse("bad manifest magic".into()));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != MANIFEST_VERSION {
            return Err(Error::FormatVersion { found: version, expected: MANIFEST_VERSION });
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(Error::Parse("manifest checksum mismatch (torn write?)".into()));
        }
        let mut r = Reader { buf: body, at: 6 };
        let epoch = r.u64()?;
        let next_doc = r.u64()?;
        let next_segment = r.u64()?;
        let nsegs = r.u32()? as usize;
        let mut segments = Vec::with_capacity(nsegs.min(1024));
        for _ in 0..nsegs {
            let id = r.u64()?;
            let ndocs = r.u32()? as usize;
            let mut doc_ids = Vec::with_capacity(ndocs.min(65536));
            let mut doc_lens = Vec::with_capacity(ndocs.min(65536));
            for _ in 0..ndocs {
                doc_ids.push(r.u64()?);
                doc_lens.push(r.u64()?);
            }
            segments.push(SegmentEntry { id, doc_ids, doc_lens });
        }
        let ntombs = r.u32()? as usize;
        let mut tombstones = Vec::with_capacity(ntombs.min(65536));
        for _ in 0..ntombs {
            tombstones.push(r.u64()?);
        }
        if r.at != body.len() {
            return Err(Error::Parse("trailing bytes after manifest body".into()));
        }
        Ok(Manifest { epoch, next_doc, next_segment, segments, tombstones })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.at + n > self.buf.len() {
            return Err(Error::Parse("manifest truncated".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, and plenty to distinguish a torn
/// write from a committed image (this guards against corruption, not an
/// adversary).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            epoch: 7,
            next_doc: 42,
            next_segment: 3,
            segments: vec![
                SegmentEntry { id: 0, doc_ids: vec![0, 1, 5], doc_lens: vec![10, 0, 3] },
                SegmentEntry { id: 2, doc_ids: vec![6], doc_lens: vec![1] },
            ],
            tombstones: vec![1, 5],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn starts_account_for_separators() {
        let seg = &sample().segments[0];
        // doc lens 10, 0, 3 → starts 0, 11, 12, sentinel 16.
        assert_eq!(seg.starts(), vec![0, 11, 12, 16]);
    }

    #[test]
    fn every_truncation_is_a_parse_error_not_a_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let e = Manifest::decode(&bytes[..cut]).unwrap_err();
            assert!(matches!(e, Error::Parse(_)), "cut at {cut}: unexpected error {e}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().encode();
        // Flip one bit mid-body: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(Manifest::decode(&bytes), Err(Error::Parse(_))));
        // Bad magic.
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Manifest::decode(&bytes), Err(Error::Parse(_))));
        // Future version: distinct, actionable error.
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert!(matches!(
            Manifest::decode(&bytes),
            Err(Error::FormatVersion { found: 99, expected: MANIFEST_VERSION })
        ));
        // Trailing garbage after a valid image.
        let mut bytes = sample().encode();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(Manifest::decode(&bytes), Err(Error::Parse(_))));
    }
}
