//! The abstract SPINE surface shared by all three physical representations.
//!
//! The reference layout ([`crate::Spine`]), the paper's §5 compact layout
//! ([`crate::CompactSpine`]) and the page-resident engine
//! ([`crate::DiskSpine`]) store the same logical structure. [`SpineOps`]
//! exposes that structure — vertebra labels, links, ribs, extrib chains —
//! and the generic algorithms in [`crate::search`], [`crate::occurrences`]
//! and [`crate::matching`] are written once against it.

use crate::node::NodeId;
use strindex::{Code, Counters};

/// Read access to a SPINE structure. Node ids are `0..=text_len()`, with 0
/// the root.
pub trait SpineOps {
    /// Number of indexed characters.
    fn text_len(&self) -> usize;

    /// Character label of the vertebra leaving `node` (text character
    /// `node + 1`), or `None` at the tail.
    fn vertebra_out(&self, node: NodeId) -> Option<Code>;

    /// `(destination, LEL)` of `node`'s upstream link. Undefined for the
    /// root (implementations may return `(0, 0)`).
    fn link_of(&self, node: NodeId) -> (NodeId, u32);

    /// `(destination, PT)` of `node`'s rib labeled `c`, if any.
    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)>;

    /// `(destination, PT)` of `node`'s extrib belonging to the chain with
    /// parent-rib threshold `prt`, if any.
    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)>;

    /// Work counters (see [`strindex::Counters`]).
    fn ops_counters(&self) -> &Counters;
}
