//! The abstract SPINE surface shared by all three physical representations.
//!
//! The reference layout ([`crate::Spine`]), the paper's §5 compact layout
//! ([`crate::CompactSpine`]) and the page-resident engine
//! ([`crate::DiskSpine`]) store the same logical structure. [`SpineOps`]
//! exposes that structure — vertebra labels, links, ribs, extrib chains —
//! and the generic algorithms in [`crate::search`], [`crate::occurrences`]
//! and [`crate::matching`] are written once against it.
//!
//! Storage-backed representations can fail mid-traversal (a page read can
//! error), so there is a second, *fallible* surface: [`FallibleSpineOps`]
//! returns `Result` from every structural accessor. The in-memory engines
//! implement it by wrapping their infallible answers in `Ok`;
//! [`crate::DiskSpine`] implements it by propagating real device errors.
//! The core traversals ([`crate::search::try_locate`],
//! [`crate::occurrences::try_find_all_ends`]) are written once against the
//! fallible surface, and the infallible entry points delegate through the
//! [`Infallible`] adapter.

use crate::node::NodeId;
use strindex::{Code, Counters, PackedText, Result};

/// Read access to a SPINE structure. Node ids are `0..=text_len()`, with 0
/// the root.
pub trait SpineOps {
    /// Number of indexed characters.
    fn text_len(&self) -> usize;

    /// Character label of the vertebra leaving `node` (text character
    /// `node + 1`), or `None` at the tail.
    fn vertebra_out(&self, node: NodeId) -> Option<Code>;

    /// `(destination, LEL)` of `node`'s upstream link. Undefined for the
    /// root (implementations may return `(0, 0)`).
    fn link_of(&self, node: NodeId) -> (NodeId, u32);

    /// `(destination, PT)` of `node`'s rib labeled `c`, if any.
    fn rib_of(&self, node: NodeId, c: Code) -> Option<(NodeId, u32)>;

    /// `(destination, PT)` of `node`'s extrib belonging to the chain with
    /// parent-rib threshold `prt`, if any.
    fn extrib_of(&self, node: NodeId, prt: u32) -> Option<(NodeId, u32)>;

    /// Work counters (see [`strindex::Counters`]).
    fn ops_counters(&self) -> &Counters;

    /// Bits per symbol of this representation's word-packed backbone
    /// labels, or `None` when only character-at-a-time comparison is
    /// available (byte alphabets, or a packing disabled by a separator
    /// code). `Some(bits)` promises [`label_run`](Self::label_run) compares
    /// word-at-a-time against a pattern packed at the same width.
    fn backbone_packing(&self) -> Option<u32> {
        None
    }

    /// Length of the common run of `pattern[from..]` and the backbone
    /// labels leaving `node` (the text suffix starting at position `node`).
    /// The default walks vertebras one character at a time; packed
    /// representations override it with a word-at-a-time compare. Does not
    /// touch the work counters — the search loop accounts for the run in
    /// bulk so totals match the scalar path exactly.
    fn label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> usize {
        let mut k = 0;
        while from + k < pattern.len() {
            match self.vertebra_out(node + k as NodeId) {
                Some(c) if c == pattern.get(from + k) => k += 1,
                _ => break,
            }
        }
        k
    }
}

/// Fallible read access to a SPINE structure: every structural accessor can
/// report a storage error instead of an answer.
///
/// This is the surface the concurrent query engine and the fault-tolerant
/// traversals are written against. In-memory representations cannot fail
/// and implement it with `Ok(...)` wrappers; [`crate::DiskSpine`] surfaces
/// buffer-pool/device errors so an injected storage fault degrades a query
/// to a clean `Err` (and, at the engine level, a `Failed` outcome) instead
/// of a panic.
pub trait FallibleSpineOps {
    /// Number of indexed characters (metadata; never touches storage).
    fn text_len(&self) -> usize;

    /// Fallible [`SpineOps::vertebra_out`].
    fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>>;

    /// Fallible [`SpineOps::link_of`].
    fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)>;

    /// Fallible [`SpineOps::rib_of`].
    fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>>;

    /// Fallible [`SpineOps::extrib_of`].
    fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>>;

    /// Work counters (see [`strindex::Counters`]).
    fn ops_counters(&self) -> &Counters;

    /// Cumulative `(hits, misses)` of the backing page cache, when this
    /// representation is page-resident; `None` for in-memory structures.
    /// The traced traversals sample this around each step to attribute
    /// buffer-pool traffic to individual traversal decisions
    /// ([`crate::trace::TraceEvent::PageFetches`]) — and only when a
    /// recording sink is attached, so the untraced paths never pay for it.
    fn storage_counters(&self) -> Option<(u64, u64)> {
        None
    }

    /// Fallible [`SpineOps::backbone_packing`] counterpart (metadata; never
    /// touches storage).
    fn backbone_packing(&self) -> Option<u32> {
        None
    }

    /// Fallible [`SpineOps::label_run`]: page-resident representations read
    /// label pages through the buffer pool, so the compare can fail.
    fn try_label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> Result<usize> {
        let mut k = 0;
        while from + k < pattern.len() {
            match self.try_vertebra_out(node + k as NodeId)? {
                Some(c) if c == pattern.get(from + k) => k += 1,
                _ => break,
            }
        }
        Ok(k)
    }

    /// The traversal is about to scan the backbone sequentially from node
    /// `from` to the tail (the occurrence scan of §4). Page-resident
    /// representations switch their buffer pool into scan mode here —
    /// scan-resistant eviction plus sequential read-ahead — and prefetch
    /// the first link pages of the range; in-memory structures ignore it.
    /// Purely advisory: never fails, never changes answers.
    fn scan_begin(&self, _from: NodeId) {}

    /// The sequential scan announced by [`scan_begin`](Self::scan_begin)
    /// ended (including by error — callers pair the two with a guard).
    fn scan_end(&self) {}
}

/// Adapter viewing any infallible [`SpineOps`] as a [`FallibleSpineOps`]
/// that never errors. Lets the fallible traversals serve as the single
/// implementation of the core algorithms.
pub struct Infallible<'a, S: ?Sized>(pub &'a S);

impl<S: SpineOps + ?Sized> FallibleSpineOps for Infallible<'_, S> {
    #[inline]
    fn text_len(&self) -> usize {
        self.0.text_len()
    }

    #[inline]
    fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>> {
        Ok(self.0.vertebra_out(node))
    }

    #[inline]
    fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)> {
        Ok(self.0.link_of(node))
    }

    #[inline]
    fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>> {
        Ok(self.0.rib_of(node, c))
    }

    #[inline]
    fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>> {
        Ok(self.0.extrib_of(node, prt))
    }

    #[inline]
    fn ops_counters(&self) -> &Counters {
        self.0.ops_counters()
    }

    #[inline]
    fn backbone_packing(&self) -> Option<u32> {
        self.0.backbone_packing()
    }

    #[inline]
    fn try_label_run(&self, node: NodeId, pattern: &PackedText, from: usize) -> Result<usize> {
        Ok(self.0.label_run(node, pattern, from))
    }
}

/// Implements [`FallibleSpineOps`] for in-memory representations whose
/// [`SpineOps`] accessors cannot fail.
macro_rules! fallible_from_spine_ops {
    ($($t:ty),* $(,)?) => {$(
        impl FallibleSpineOps for $t {
            #[inline]
            fn text_len(&self) -> usize {
                SpineOps::text_len(self)
            }

            #[inline]
            fn try_vertebra_out(&self, node: NodeId) -> Result<Option<Code>> {
                Ok(SpineOps::vertebra_out(self, node))
            }

            #[inline]
            fn try_link_of(&self, node: NodeId) -> Result<(NodeId, u32)> {
                Ok(SpineOps::link_of(self, node))
            }

            #[inline]
            fn try_rib_of(&self, node: NodeId, c: Code) -> Result<Option<(NodeId, u32)>> {
                Ok(SpineOps::rib_of(self, node, c))
            }

            #[inline]
            fn try_extrib_of(&self, node: NodeId, prt: u32) -> Result<Option<(NodeId, u32)>> {
                Ok(SpineOps::extrib_of(self, node, prt))
            }

            #[inline]
            fn ops_counters(&self) -> &Counters {
                SpineOps::ops_counters(self)
            }

            #[inline]
            fn backbone_packing(&self) -> Option<u32> {
                SpineOps::backbone_packing(self)
            }

            #[inline]
            fn try_label_run(
                &self,
                node: NodeId,
                pattern: &PackedText,
                from: usize,
            ) -> Result<usize> {
                Ok(SpineOps::label_run(self, node, pattern, from))
            }
        }
    )*};
}

fallible_from_spine_ops!(
    crate::build::Spine,
    crate::compact::CompactSpine,
    crate::generalized::GeneralizedSpine,
);
