//! Per-query EXPLAIN tracing: structured traversal events, trace recording,
//! and hot-spot aggregation.
//!
//! The paper's whole design lives in three traversal decisions — does the
//! vertebra match, does the rib's pathlength threshold admit the path, which
//! extrib element (if any) rescues a rejected rib — plus the link-driven
//! backbone scan that turns one located occurrence into all of them. This
//! module makes those decisions observable per query, Postgres
//! `EXPLAIN ANALYZE`-style:
//!
//! * [`TraceSink`] — the event consumer threaded through the core search
//!   path ([`crate::search::try_step_traced`],
//!   [`crate::occurrences::try_find_all_ends_traced`]). The no-op sink
//!   [`NoTrace`] has `ENABLED == false`, so the untraced entry points
//!   monomorphize to exactly the code they compiled to before tracing
//!   existed — zero cost when disabled.
//! * [`TraceEvent`] — one structured record per traversal decision:
//!   vertebra steps, rib checks with the PT comparison that admitted or
//!   rejected them, extrib-chain hops, the two mismatch terminations
//!   (no edge / chain exhausted), link-accepted occurrence ends, and page
//!   fetches tagged hit/miss from the buffer pool (disk engine only).
//! * [`QueryTrace`] — the `explain(pattern)` result: the event list, the
//!   outcome, and text/JSON renderings. Every engine in the crate exposes
//!   `explain` ([`crate::Spine::explain`], [`crate::CompactSpine`],
//!   [`crate::GeneralizedSpine`], [`crate::DiskSpine::explain`],
//!   [`crate::QueryEngine::submit_traced`]).
//! * [`Heatmap`] — folds traces into per-node visit counts, bucketed node
//!   ranges, and per-page counts, surfacing backbone hot spots.
//!
//! Traces double as verifiers: [`QueryTrace::verify_against_text`] replays
//! the event sequence over a naive text oracle and checks that every node
//! the traversal visited is the first-occurrence end position the SPINE
//! invariant promises — so EXPLAIN is another machine check of the
//! no-false-positives theorem, not just a debugging aid.

use crate::build::Spine;
use crate::compact::CompactSpine;
use crate::disk::PageMap;
use crate::generalized::GeneralizedSpine;
use crate::node::{NodeId, ROOT};
use crate::ops::FallibleSpineOps;
use strindex::{Alphabet, Code, FxHashMap};

/// Default cap on recorded events per trace; past it, events are counted in
/// [`QueryTrace::dropped`] instead of stored.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One structured traversal decision. Node ids double as 1-based text
/// positions (the SPINE invariant), so a trace is also a list of the
/// character positions the query visited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Took the (unconstrained) vertebra `node → node + 1` labeled `ch`.
    Vertebra {
        /// Source node.
        node: NodeId,
        /// Path length before the step (= pattern characters consumed).
        pl: u32,
        /// The character consumed.
        ch: Code,
    },
    /// Checked `node`'s rib labeled `ch` against the PT constraint
    /// `pl ≤ pt`; `admitted` records the comparison's outcome.
    Rib {
        /// Source node.
        node: NodeId,
        /// The character consumed (the rib's CL).
        ch: Code,
        /// Rib destination.
        dest: NodeId,
        /// The rib's pathlength threshold.
        pt: u32,
        /// Path length at the check.
        pl: u32,
        /// `pl <= pt`: the rib was traversed. Otherwise the extrib chain
        /// with PRT = `pt` is scanned next.
        admitted: bool,
    },
    /// Probed the extrib of chain `prt` at node `at`; `taken` records
    /// whether its PT covered the path (`pt ≥ pl`).
    Extrib {
        /// Node whose extrib slot was probed.
        at: NodeId,
        /// Parent-rib threshold identifying the chain.
        prt: u32,
        /// Extrib destination (next chain element when not taken).
        dest: NodeId,
        /// The extrib's pathlength threshold.
        pt: u32,
        /// Path length at the check.
        pl: u32,
        /// `pt >= pl`: the extrib was traversed, ending the chain scan.
        taken: bool,
    },
    /// Mismatch termination: `node` has neither a matching vertebra nor a
    /// rib labeled `ch` — the extended string is not a substring.
    NoEdge {
        /// Node where the traversal stopped.
        node: NodeId,
        /// Path length at the stop.
        pl: u32,
        /// The character that found no edge.
        ch: Code,
    },
    /// Mismatch termination: the rib labeled `ch` was rejected and its
    /// extrib chain (PRT `prt`) ran out at `at` without covering `pl`.
    ChainExhausted {
        /// Last chain node probed.
        at: NodeId,
        /// The chain's parent-rib threshold.
        prt: u32,
        /// Path length at the stop.
        pl: u32,
        /// The character whose chain was exhausted.
        ch: Code,
    },
    /// The all-occurrence backbone scan began over `from..=to` for a
    /// pattern of length `len` (first occurrence already buffered).
    ScanStart {
        /// First scanned node (first occurrence end + 1).
        from: NodeId,
        /// Last scanned node (the backbone tail).
        to: NodeId,
        /// Pattern length the scan matches against LELs.
        len: u32,
    },
    /// The scan accepted `node` as an occurrence end: its link reaches an
    /// already-buffered end (`link`) with `lel ≥` the pattern length.
    Occurrence {
        /// The accepted occurrence end.
        node: NodeId,
        /// The link destination that admitted it.
        link: NodeId,
        /// The link's LEL label.
        lel: u32,
    },
    /// Buffer-pool traffic attributed to the traversal work since the
    /// previous event: `hits` pages served from the pool, `misses` faulted
    /// from the device. Emitted only by page-resident engines.
    PageFetches {
        /// Pages found resident.
        hits: u64,
        /// Pages read from the device.
        misses: u64,
    },
}

/// Consumer of [`TraceEvent`]s, threaded through the generic traversals.
///
/// `ENABLED` is a compile-time switch: the traversal code asks for it
/// before doing any trace-only work (such as sampling buffer-pool counters
/// around a step), so a sink with `ENABLED == false` ([`NoTrace`]) makes
/// the traced code paths compile to the untraced originals.
pub trait TraceSink {
    /// Whether this sink records anything; `false` lets the optimizer
    /// delete all trace plumbing.
    const ENABLED: bool = true;

    /// Consume one event.
    fn event(&mut self, e: TraceEvent);
}

/// The disabled sink: a zero-sized no-op with `ENABLED == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _e: TraceEvent) {}
}

/// A bounded in-memory sink: keeps the first `capacity` events and counts
/// the overflow.
#[derive(Debug)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RecordingSink {
    /// A sink retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RecordingSink { events: Vec::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Consume the sink: `(events, dropped)`.
    pub fn into_parts(self) -> (Vec<TraceEvent>, u64) {
        (self.events, self.dropped)
    }
}

impl Default for RecordingSink {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceSink for RecordingSink {
    fn event(&mut self, e: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// QueryTrace.
// ---------------------------------------------------------------------------

/// The result of `explain(pattern)`: everything one query did.
///
/// Produced by [`explain`] (generic), the per-engine `explain` methods, and
/// [`crate::QueryEngine::submit_traced`]. Rendered with
/// [`to_text`](QueryTrace::to_text) (plan-style report) or
/// [`to_json`](QueryTrace::to_json).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The query pattern (encoded).
    pub pattern: Vec<Code>,
    /// Backbone length of the index answering the query.
    pub text_len: usize,
    /// Recorded events, in traversal order (capped; see `dropped`).
    pub events: Vec<TraceEvent>,
    /// Events past the recording cap (counted, not stored).
    pub dropped: u64,
    /// End node of the first occurrence, `None` when the pattern is absent.
    pub first_end: Option<NodeId>,
    /// All occurrence end nodes, ascending (empty when absent).
    pub ends: Vec<NodeId>,
    /// Storage failure that aborted the traversal, if any; the events up to
    /// the fault are retained.
    pub error: Option<String>,
}

impl QueryTrace {
    /// Occurrence start offsets (0-based), derived from `ends`.
    pub fn starts(&self) -> Vec<usize> {
        self.ends.iter().map(|&e| e as usize - self.pattern.len().min(e as usize)).collect()
    }

    /// Total page fetches recorded, as `(hits, misses)`.
    pub fn page_fetches(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for e in &self.events {
            if let TraceEvent::PageFetches { hits: h, misses: m } = e {
                hits += h;
                misses += m;
            }
        }
        (hits, misses)
    }

    /// The events excluding [`TraceEvent::PageFetches`] — the logical
    /// traversal, identical across physical representations of one index.
    pub fn structural_events(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| !matches!(e, TraceEvent::PageFetches { .. }))
            .copied()
            .collect()
    }

    /// Human-readable plan-style report; `alphabet` decodes the characters.
    pub fn to_text(&self, alphabet: &Alphabet) -> String {
        use std::fmt::Write;
        let ch = |c: Code| alphabet.decode(c) as char;
        let mut out = String::new();
        let shown: String = self.pattern.iter().map(|&c| ch(c)).collect();
        let _ = writeln!(
            out,
            "EXPLAIN pattern=\"{shown}\" (len {}) over {}-char backbone",
            self.pattern.len(),
            self.text_len
        );
        let mut step = 0u32;
        for e in &self.events {
            match *e {
                TraceEvent::Vertebra { node, pl, ch: c } => {
                    step += 1;
                    let _ = writeln!(
                        out,
                        "  step {step:<3} pl={pl:<3} '{}': vertebra {node} -> {}",
                        ch(c),
                        node + 1
                    );
                }
                TraceEvent::Rib { node, ch: c, dest, pt, pl, admitted } => {
                    if admitted {
                        step += 1;
                        let _ = writeln!(
                            out,
                            "  step {step:<3} pl={pl:<3} '{}': rib {node} -> {dest} \
                             (pl {pl} <= PT {pt}) ADMIT",
                            ch(c)
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "           pl={pl:<3} '{}': rib {node} -> {dest} \
                             (pl {pl} > PT {pt}) REJECT, scanning extrib chain PRT={pt}",
                            ch(c)
                        );
                    }
                }
                TraceEvent::Extrib { at, prt, dest, pt, pl, taken } => {
                    if taken {
                        step += 1;
                        let _ = writeln!(
                            out,
                            "  step {step:<3} pl={pl:<3}      extrib at {at} -> {dest} \
                             (PRT={prt}, PT {pt} >= pl {pl}) TAKE"
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "           pl={pl:<3}      extrib at {at} -> {dest} \
                             (PRT={prt}, PT {pt} < pl {pl}) continue chain"
                        );
                    }
                }
                TraceEvent::NoEdge { node, pl, ch: c } => {
                    let _ = writeln!(
                        out,
                        "           pl={pl:<3} '{}': no edge at node {node} — MISMATCH, \
                         pattern is not a substring",
                        ch(c)
                    );
                }
                TraceEvent::ChainExhausted { at, prt, pl, ch: c } => {
                    let _ = writeln!(
                        out,
                        "           pl={pl:<3} '{}': extrib chain PRT={prt} exhausted at \
                         node {at} — MISMATCH, pattern is not a substring",
                        ch(c)
                    );
                }
                TraceEvent::ScanStart { from, to, len } => {
                    let _ = writeln!(
                        out,
                        "  scan     backbone {from}..={to}: accept node j when \
                         LEL(j) >= {len} and link(j) hits the target buffer"
                    );
                }
                TraceEvent::Occurrence { node, link, lel } => {
                    let _ = writeln!(
                        out,
                        "           occurrence end {node} (link -> {link}, LEL {lel})"
                    );
                }
                TraceEvent::PageFetches { hits, misses } => {
                    let _ = writeln!(out, "           pages: {hits} hit, {misses} miss");
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "  ... {} further events dropped (cap reached)", self.dropped);
        }
        match (&self.error, self.first_end) {
            (Some(e), _) => {
                let _ = writeln!(out, "  ABORTED by storage failure: {e}");
            }
            (None, Some(first)) => {
                let _ = writeln!(
                    out,
                    "  located: first occurrence ends at node {first} (start {})",
                    first as usize - self.pattern.len()
                );
                let (h, m) = self.page_fetches();
                if h + m > 0 {
                    let _ = writeln!(out, "  pages:   {h} hit, {m} miss");
                }
                let _ = writeln!(
                    out,
                    "  result:  {} occurrence(s), ends {:?}",
                    self.ends.len(),
                    preview(&self.ends)
                );
            }
            (None, None) => {
                let _ = writeln!(out, "  result:  pattern does not occur");
            }
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; no external crates).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"pattern\":[");
        for (i, c) in self.pattern.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"text_len\":{},\"first_end\":", self.text_len);
        match self.first_end {
            Some(n) => {
                let _ = write!(out, "{n}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"ends\":[");
        for (i, e) in self.ends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{e}");
        }
        let _ = write!(out, "],\"dropped\":{},\"error\":", self.dropped);
        match &self.error {
            Some(e) => {
                let _ = write!(out, "\"{}\"", strindex::telemetry::json_escape(e));
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match *e {
                TraceEvent::Vertebra { node, pl, ch } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"vertebra\",\"node\":{node},\"pl\":{pl},\"ch\":{ch}}}"
                    );
                }
                TraceEvent::Rib { node, ch, dest, pt, pl, admitted } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"rib\",\"node\":{node},\"ch\":{ch},\"dest\":{dest},\
                         \"pt\":{pt},\"pl\":{pl},\"admitted\":{admitted}}}"
                    );
                }
                TraceEvent::Extrib { at, prt, dest, pt, pl, taken } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"extrib\",\"at\":{at},\"prt\":{prt},\"dest\":{dest},\
                         \"pt\":{pt},\"pl\":{pl},\"taken\":{taken}}}"
                    );
                }
                TraceEvent::NoEdge { node, pl, ch } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"no_edge\",\"node\":{node},\"pl\":{pl},\"ch\":{ch}}}"
                    );
                }
                TraceEvent::ChainExhausted { at, prt, pl, ch } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"chain_exhausted\",\"at\":{at},\"prt\":{prt},\
                         \"pl\":{pl},\"ch\":{ch}}}"
                    );
                }
                TraceEvent::ScanStart { from, to, len } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"scan_start\",\"from\":{from},\"to\":{to},\"len\":{len}}}"
                    );
                }
                TraceEvent::Occurrence { node, link, lel } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"occurrence\",\"node\":{node},\"link\":{link},\
                         \"lel\":{lel}}}"
                    );
                }
                TraceEvent::PageFetches { hits, misses } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"page_fetches\",\"hits\":{hits},\"misses\":{misses}}}"
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Replay this trace against the raw text and check every decision:
    ///
    /// * after consuming `k` characters, the traversal must sit at the
    ///   first-occurrence end of `pattern[..k]` (the SPINE invariant);
    /// * mismatch terminations must coincide with `pattern[..k+1]` not
    ///   occurring in the text;
    /// * the occurrence scan must accept exactly the end positions a naive
    ///   scan of the text finds.
    ///
    /// This is the trace/oracle differential: it holds for any correct
    /// index, so EXPLAIN output is itself machine-checkable.
    pub fn verify_against_text(&self, text: &[Code]) -> std::result::Result<(), String> {
        if self.error.is_some() {
            return Ok(()); // an aborted trace proves nothing either way
        }
        let first_end_of = |prefix: &[Code]| -> Option<NodeId> {
            if prefix.len() > text.len() {
                return None;
            }
            (0..=text.len() - prefix.len())
                .find(|&i| &text[i..i + prefix.len()] == prefix)
                .map(|i| (i + prefix.len()) as NodeId)
        };
        let mut node = ROOT;
        let mut k = 0usize; // characters consumed
        let mut scan_seen: Option<Vec<NodeId>> = None;
        let advance = |node: &mut NodeId, k: &mut usize, dest: NodeId| -> Result<(), String> {
            let prefix = &self.pattern[..*k + 1];
            match first_end_of(prefix) {
                Some(expect) if expect == dest => {
                    *node = dest;
                    *k += 1;
                    Ok(())
                }
                Some(expect) => Err(format!(
                    "after {} chars the trace sits at node {dest}, but the first \
                     occurrence of the prefix ends at {expect}",
                    *k + 1
                )),
                None => Err(format!(
                    "trace took an edge for prefix of length {} which never occurs",
                    *k + 1
                )),
            }
        };
        for e in &self.events {
            match *e {
                TraceEvent::Vertebra { node: n, pl, ch } => {
                    if n != node || pl as usize != k || self.pattern.get(k) != Some(&ch) {
                        return Err(format!("vertebra event out of sequence at k={k}: {e:?}"));
                    }
                    advance(&mut node, &mut k, n + 1)?;
                }
                TraceEvent::Rib { node: n, ch, dest, pt, pl, admitted } => {
                    if n != node || pl as usize != k || self.pattern.get(k) != Some(&ch) {
                        return Err(format!("rib event out of sequence at k={k}: {e:?}"));
                    }
                    if admitted != (pl <= pt) {
                        return Err(format!("rib admission contradicts its own PT: {e:?}"));
                    }
                    if admitted {
                        advance(&mut node, &mut k, dest)?;
                    }
                }
                TraceEvent::Extrib { dest, pt, pl, taken, .. } => {
                    if pl as usize != k {
                        return Err(format!("extrib event out of sequence at k={k}: {e:?}"));
                    }
                    if taken != (pt >= pl) {
                        return Err(format!("extrib take contradicts its own PT: {e:?}"));
                    }
                    if taken {
                        advance(&mut node, &mut k, dest)?;
                    }
                }
                TraceEvent::NoEdge { pl, ch, .. } | TraceEvent::ChainExhausted { pl, ch, .. } => {
                    if pl as usize != k || self.pattern.get(k) != Some(&ch) {
                        return Err(format!("mismatch event out of sequence at k={k}: {e:?}"));
                    }
                    if first_end_of(&self.pattern[..k + 1]).is_some() {
                        return Err(format!(
                            "trace reports a mismatch at k={k} but the prefix does occur"
                        ));
                    }
                }
                TraceEvent::ScanStart { from, len, .. } => {
                    if k != self.pattern.len() {
                        return Err(format!(
                            "scan started after {k} of {} chars",
                            self.pattern.len()
                        ));
                    }
                    if len as usize != self.pattern.len() || from != node + 1 {
                        return Err(format!("scan bounds disagree with the locate phase: {e:?}"));
                    }
                    scan_seen = Some(vec![node]);
                }
                TraceEvent::Occurrence { node: j, .. } => {
                    let seen = scan_seen
                        .as_mut()
                        .ok_or_else(|| "occurrence event before scan start".to_string())?;
                    let (start, end) = ((j as usize).checked_sub(k), j as usize);
                    let matches = start
                        .and_then(|s| text.get(s..end))
                        .is_some_and(|w| w == &self.pattern[..]);
                    if !matches {
                        return Err(format!("scan accepted node {j}, not an occurrence end"));
                    }
                    seen.push(j);
                }
                TraceEvent::PageFetches { .. } => {}
            }
        }
        // Outcome checks against a full naive scan.
        let oracle_ends: Vec<NodeId> = if self.pattern.is_empty() {
            (0..=text.len() as NodeId).collect()
        } else if self.pattern.len() > text.len() {
            Vec::new()
        } else {
            (0..=text.len() - self.pattern.len())
                .filter(|&i| text[i..i + self.pattern.len()] == self.pattern[..])
                .map(|i| (i + self.pattern.len()) as NodeId)
                .collect()
        };
        match self.first_end {
            Some(first) => {
                if k != self.pattern.len() {
                    return Err(format!("trace located after {k} of {} chars", self.pattern.len()));
                }
                if oracle_ends.first() != Some(&first) {
                    return Err(format!(
                        "first_end {first} disagrees with oracle {:?}",
                        oracle_ends.first()
                    ));
                }
            }
            None => {
                if !oracle_ends.is_empty() {
                    return Err("trace reports absent but the pattern occurs".to_string());
                }
                return Ok(()); // no scan to check
            }
        }
        if self.dropped == 0 && self.ends != oracle_ends {
            return Err(format!(
                "occurrence ends {:?} disagree with oracle {:?}",
                preview(&self.ends),
                preview(&oracle_ends)
            ));
        }
        Ok(())
    }
}

fn preview(ends: &[NodeId]) -> Vec<NodeId> {
    ends.iter().take(16).copied().collect()
}

/// Buffer-pool delta since `before` (a [`FallibleSpineOps::storage_counters`]
/// sample), as a [`TraceEvent::PageFetches`] — `None` when the structure is
/// not page-resident or nothing was fetched.
pub(crate) fn page_delta_event<S: FallibleSpineOps + ?Sized>(
    s: &S,
    before: Option<(u64, u64)>,
) -> Option<TraceEvent> {
    let (h0, m0) = before?;
    let (h1, m1) = s.storage_counters()?;
    let (hits, misses) = (h1.saturating_sub(h0), m1.saturating_sub(m0));
    if hits + misses == 0 {
        None
    } else {
        Some(TraceEvent::PageFetches { hits, misses })
    }
}

// ---------------------------------------------------------------------------
// The generic explain.
// ---------------------------------------------------------------------------

/// Run `pattern` through `s` with a bounded [`RecordingSink`] attached and
/// package the result. Storage failures are captured in
/// [`QueryTrace::error`] with the partial event list retained — an aborted
/// EXPLAIN shows exactly where the fault hit.
pub fn explain_with_capacity<S: FallibleSpineOps + ?Sized>(
    s: &S,
    pattern: &[Code],
    capacity: usize,
) -> QueryTrace {
    let mut sink = RecordingSink::new(capacity);
    let run = crate::occurrences::try_find_all_ends_traced(s, &mut sink, pattern);
    let (events, dropped) = sink.into_parts();
    let mut trace = QueryTrace {
        pattern: pattern.to_vec(),
        text_len: s.text_len(),
        events,
        dropped,
        first_end: None,
        ends: Vec::new(),
        error: None,
    };
    match run {
        Ok(ends) => {
            trace.first_end = ends.first().copied();
            trace.ends = ends;
        }
        Err(e) => trace.error = Some(e.to_string()),
    }
    trace
}

/// [`explain_with_capacity`] with the default event cap.
pub fn explain<S: FallibleSpineOps + ?Sized>(s: &S, pattern: &[Code]) -> QueryTrace {
    explain_with_capacity(s, pattern, DEFAULT_TRACE_CAPACITY)
}

impl Spine {
    /// EXPLAIN `pattern`: the traversal trace behind
    /// [`find_all`](strindex::StringIndex::find_all). See [`QueryTrace`].
    pub fn explain(&self, pattern: &[Code]) -> QueryTrace {
        explain(self, pattern)
    }
}

impl CompactSpine {
    /// EXPLAIN `pattern` over the §5 compact layout; structurally identical
    /// to the reference trace ([`QueryTrace::structural_events`]).
    pub fn explain(&self, pattern: &[Code]) -> QueryTrace {
        explain(self, pattern)
    }
}

impl GeneralizedSpine {
    /// EXPLAIN `pattern` over the document concatenation; map end nodes to
    /// documents with [`GeneralizedSpine::localize`].
    pub fn explain(&self, pattern: &[Code]) -> QueryTrace {
        explain(self, pattern)
    }
}

// ---------------------------------------------------------------------------
// Heatmap.
// ---------------------------------------------------------------------------

/// Folds traces into per-node visit counts to surface backbone hot spots:
/// which text positions the workload's traversals concentrate on, and —
/// given the records-per-page factor of a disk layout — which pages.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// `visits[i]` = times node `i` was arrived at or probed.
    visits: Vec<u64>,
    traces: u64,
    /// Touches whose node id fell outside the tracked backbone even after
    /// growing — counted, never silently lost. Non-zero means the heatmap
    /// saw traces from a larger index than anything it has folded so far
    /// claimed (e.g. a corrupt trace), so the heat ranking may be partial.
    dropped_touches: u64,
}

impl Heatmap {
    /// A cold heatmap for a backbone of `text_len` characters. The map
    /// *grows on demand* when traces from a longer backbone arrive (a
    /// multi-document [`crate::GeneralizedSpine`] concatenation is longer
    /// than any single document), so sizing here is a hint, not a cap.
    pub fn new(text_len: usize) -> Self {
        Heatmap { visits: vec![0; text_len + 1], traces: 0, dropped_touches: 0 }
    }

    /// Number of backbone nodes tracked.
    pub fn nodes(&self) -> usize {
        self.visits.len()
    }

    /// Traces folded in so far.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Touches that could not be attributed to a tracked node (see the
    /// field docs). Zero for any well-formed trace stream.
    pub fn dropped_touches(&self) -> u64 {
        self.dropped_touches
    }

    /// Per-node visit counts.
    pub fn node_visits(&self) -> &[u64] {
        &self.visits
    }

    fn touch(&mut self, n: NodeId) {
        match self.visits.get_mut(n as usize) {
            Some(v) => *v += 1,
            None => self.dropped_touches += 1,
        }
    }

    /// Fold one trace in: every node an event arrived at or probed counts
    /// one visit (rib/extrib destinations count even when rejected — their
    /// records are read to scan the chain).
    ///
    /// The node table grows to the trace's own backbone length first, so a
    /// heatmap sized for one document keeps full attribution when traces
    /// from a longer (multi-document) index arrive. Only node ids beyond
    /// the trace's *claimed* length are dropped (and counted in
    /// [`dropped_touches`](Self::dropped_touches)) — growing to an
    /// untrusted per-event id would let one corrupt trace allocate 4 GiB.
    pub fn add(&mut self, t: &QueryTrace) {
        if t.text_len + 1 > self.visits.len() {
            self.visits.resize(t.text_len + 1, 0);
        }
        self.traces += 1;
        self.touch(ROOT);
        for e in &t.events {
            match *e {
                // The vertebra leaves `node` and arrives at `node + 1`;
                // for the final backbone node that is exactly `text_len`,
                // the last tracked slot. Saturate rather than overflow on a
                // corrupt id — the saturated touch lands in the dropped
                // count, not in a wrapped-around bucket.
                TraceEvent::Vertebra { node, .. } => self.touch(node.saturating_add(1)),
                TraceEvent::Rib { dest, .. } => self.touch(dest),
                TraceEvent::Extrib { dest, .. } => self.touch(dest),
                TraceEvent::Occurrence { node, .. } => self.touch(node),
                TraceEvent::NoEdge { .. }
                | TraceEvent::ChainExhausted { .. }
                | TraceEvent::ScanStart { .. }
                | TraceEvent::PageFetches { .. } => {}
            }
        }
    }

    /// Visit counts folded into `buckets` equal node ranges:
    /// `(range_start, range_end_exclusive, visits)`.
    pub fn bucketed(&self, buckets: usize) -> Vec<(usize, usize, u64)> {
        let buckets = buckets.clamp(1, self.visits.len());
        let per = self.visits.len().div_ceil(buckets);
        self.visits
            .chunks(per)
            .enumerate()
            .map(|(i, c)| (i * per, i * per + c.len(), c.iter().sum()))
            .collect()
    }

    /// Visit counts folded per disk page, given how many node records share
    /// a page (node `i` lives on page `i / records_per_page` in the
    /// *mutable* [`crate::DiskSpine`] layout). For the sealed layout's
    /// variable-size slotted pages this uniform assumption is wrong — use
    /// [`page_visits_mapped`](Self::page_visits_mapped) with the engine's
    /// real [`PageMap`] instead.
    pub fn page_visits(&self, records_per_page: usize) -> Vec<u64> {
        let per = records_per_page.max(1);
        self.visits.chunks(per).map(|c| c.iter().sum()).collect()
    }

    /// Visit counts attributed to physical pages through the engine's real
    /// node → page mapping ([`crate::DiskSpine::page_map`]): correct for
    /// the sealed layout's variable-size slotted pages and aware of
    /// hot-tier redirects. Returns `page → visits` for every page with
    /// heat.
    pub fn page_visits_mapped(&self, map: &PageMap) -> FxHashMap<u32, u64> {
        let mut out: FxHashMap<u32, u64> = FxHashMap::default();
        for (i, &v) in self.visits.iter().enumerate() {
            if v > 0 {
                *out.entry(map.page_of(i as NodeId)).or_insert(0) += v;
            }
        }
        out
    }

    /// The `k` hottest pages under `map`, hottest first (ties: lower page
    /// id first).
    pub fn hottest_pages(&self, map: &PageMap, k: usize) -> Vec<(u32, u64)> {
        let mut all: Vec<(u32, u64)> = self.page_visits_mapped(map).into_iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// The `k` most-visited nodes, hottest first (ties: lower node first).
    pub fn hottest(&self, k: usize) -> Vec<(NodeId, u64)> {
        let mut all: Vec<(NodeId, u64)> =
            self.visits.iter().enumerate().map(|(i, &v)| (i as NodeId, v)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all.retain(|&(_, v)| v > 0);
        all
    }

    /// ASCII rendering: one bar per bucket, `width` columns at full heat.
    pub fn render(&self, buckets: usize, width: usize) -> String {
        use std::fmt::Write;
        let rows = self.bucketed(buckets);
        let max = rows.iter().map(|&(_, _, v)| v).max().unwrap_or(0).max(1);
        let mut out = String::new();
        let _ = writeln!(out, "heatmap: {} traces over {} nodes", self.traces, self.visits.len());
        for (lo, hi, v) in rows {
            let bar = "#".repeat(((v as f64 / max as f64) * width as f64).round() as usize);
            let _ = writeln!(out, "  [{lo:>8}..{hi:>8})  {v:>10}  {bar}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strindex::StringIndex;

    fn paper() -> (Alphabet, Spine) {
        let a = Alphabet::dna();
        (a.clone(), Spine::build_from_bytes(a, b"AACCACAACA").unwrap())
    }

    #[test]
    fn figure3_aca_hand_derived_path() {
        // §4's worked example on aaccacaaca: A by vertebra 0->1, C by the
        // admitted rib 1->3 (pl 1 <= PT 1), A rejected at rib 3->5
        // (pl 2 > PT 1) then rescued by node 5's extrib (PRT 1, PT 2) -> 7.
        let (a, s) = paper();
        let t = s.explain(&a.encode(b"ACA").unwrap());
        assert_eq!(t.first_end, Some(7));
        let structural = t.structural_events();
        assert_eq!(structural[0], TraceEvent::Vertebra { node: 0, pl: 0, ch: 0 });
        assert_eq!(
            structural[1],
            TraceEvent::Rib { node: 1, ch: 1, dest: 3, pt: 1, pl: 1, admitted: true }
        );
        assert_eq!(
            structural[2],
            TraceEvent::Rib { node: 3, ch: 0, dest: 5, pt: 1, pl: 2, admitted: false }
        );
        assert_eq!(
            structural[3],
            TraceEvent::Extrib { at: 5, prt: 1, dest: 7, pt: 2, pl: 2, taken: true }
        );
        assert_eq!(structural[4], TraceEvent::ScanStart { from: 8, to: 10, len: 3 });
        t.verify_against_text(&a.encode(b"AACCACAACA").unwrap()).unwrap();
    }

    #[test]
    fn false_positive_rejection_is_traced() {
        // ACCAA: the rib's PT of 2 rejects the final A and the chain is
        // empty, so the trace must end in a mismatch termination.
        let (a, s) = paper();
        let t = s.explain(&a.encode(b"ACCAA").unwrap());
        assert_eq!(t.first_end, None);
        assert!(t.ends.is_empty());
        assert!(matches!(
            t.events.last(),
            Some(TraceEvent::ChainExhausted { .. } | TraceEvent::NoEdge { .. })
        ));
        t.verify_against_text(&a.encode(b"AACCACAACA").unwrap()).unwrap();
    }

    #[test]
    fn explain_agrees_with_find_all() {
        let (a, s) = paper();
        for p in [&b"CA"[..], b"A", b"AC", b"AACCACAACA", b"GG", b"", b"ACAACA"] {
            let p = a.encode(p).unwrap();
            let t = s.explain(&p);
            if p.is_empty() {
                assert_eq!(t.ends, (0..=10).collect::<Vec<_>>());
            } else {
                assert_eq!(t.starts(), s.find_all(&p), "pattern {p:?}");
            }
            t.verify_against_text(&a.encode(b"AACCACAACA").unwrap()).unwrap();
        }
    }

    #[test]
    fn recording_sink_caps_and_counts() {
        let (a, s) = paper();
        let t = explain_with_capacity(&s, &a.encode(b"A").unwrap(), 2);
        assert_eq!(t.events.len(), 2);
        assert!(t.dropped > 0);
        // Capped traces still report the full answer.
        assert_eq!(t.starts(), s.find_all(&a.encode(b"A").unwrap()));
    }

    #[test]
    fn text_and_json_render() {
        let (a, s) = paper();
        let t = s.explain(&a.encode(b"ACA").unwrap());
        let text = t.to_text(&a);
        assert!(text.contains("vertebra 0 -> 1"));
        assert!(text.contains("ADMIT"));
        assert!(text.contains("REJECT"));
        assert!(text.contains("TAKE"));
        assert!(text.contains("first occurrence ends at node 7"));
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"type\":\"extrib\""));
        assert!(json.contains("\"first_end\":7"));
    }

    #[test]
    fn heatmap_folds_and_buckets() {
        let (a, s) = paper();
        let mut h = Heatmap::new(s.len());
        for p in [&b"ACA"[..], b"CA", b"AAC"] {
            h.add(&s.explain(&a.encode(p).unwrap()));
        }
        assert_eq!(h.traces(), 3);
        let total: u64 = h.node_visits().iter().sum();
        assert!(total > 0);
        // Bucketing and page folding conserve the total.
        assert_eq!(h.bucketed(4).iter().map(|&(_, _, v)| v).sum::<u64>(), total);
        assert_eq!(h.page_visits(3).iter().sum::<u64>(), total);
        assert_eq!(h.bucketed(4).len(), 4);
        let hottest = h.hottest(3);
        assert!(!hottest.is_empty() && hottest[0].1 >= hottest.last().unwrap().1);
        assert!(h.render(4, 20).contains('#'));
    }

    #[test]
    fn heatmap_grows_for_multi_document_traces() {
        // Regression: a heatmap sized for one document used to silently
        // drop every touch beyond `text_len + 1` when traces from a longer
        // (concatenated multi-document) backbone arrived.
        let a = Alphabet::dna();
        let long = Spine::build_from_bytes(a.clone(), &b"AACCACAACAGGTT".repeat(4)).unwrap();
        let mut h = Heatmap::new(10); // sized for a 10-char document
        for p in [&b"CA"[..], b"GGTT", b"ACAACAGG", b"TTAACC"] {
            h.add(&long.explain(&a.encode(p).unwrap()));
        }
        assert_eq!(h.nodes(), long.len() + 1, "table must grow to the trace's backbone");
        assert_eq!(h.dropped_touches(), 0, "well-formed traces lose no heat");
        let far: u64 = h.node_visits()[11..].iter().sum();
        assert!(far > 0, "visits beyond the original sizing must be attributed");
    }

    #[test]
    fn heatmap_counts_unattributable_touches() {
        // A corrupt trace claiming a short backbone but naming a huge node
        // id must not grow the table (that would let one bad trace allocate
        // gigabytes) — the touch is counted as dropped instead.
        let mut h = Heatmap::new(4);
        let t = QueryTrace {
            pattern: vec![0],
            text_len: 4,
            events: vec![
                TraceEvent::Vertebra { node: 0, pl: 0, ch: 0 },
                TraceEvent::Rib { node: 1, ch: 1, dest: u32::MAX, pt: 1, pl: 1, admitted: true },
                // Saturating `node + 1` on the corrupt sentinel must land in
                // the dropped count, not wrap to node 0.
                TraceEvent::Vertebra { node: u32::MAX, pl: 1, ch: 0 },
            ],
            dropped: 0,
            first_end: None,
            ends: vec![],
            error: None,
        };
        h.add(&t);
        assert_eq!(h.nodes(), 5, "corrupt ids must not grow the table");
        assert_eq!(h.dropped_touches(), 2);
        assert_eq!(h.node_visits()[0], 1, "no wrap-around into the root bucket");
    }

    #[test]
    fn final_vertebra_touch_stays_in_range() {
        // Walking the whole text traverses the vertebra out of node
        // `len - 1`; its arrival touch is `len`, the last tracked slot.
        let (a, s) = paper();
        let mut h = Heatmap::new(s.len());
        h.add(&s.explain(&a.encode(b"AACCACAACA").unwrap()));
        assert_eq!(h.dropped_touches(), 0);
        assert!(h.node_visits()[s.len()] > 0, "arrival at the final node is attributed");
    }

    #[test]
    fn verifier_rejects_doctored_traces() {
        let (a, s) = paper();
        let text = a.encode(b"AACCACAACA").unwrap();
        let mut t = s.explain(&a.encode(b"ACA").unwrap());
        t.first_end = Some(9); // lie about the landing position
        assert!(t.verify_against_text(&text).is_err());
        let mut t2 = s.explain(&a.encode(b"ACA").unwrap());
        t2.ends.push(4); // inject a bogus occurrence
        assert!(t2.verify_against_text(&text).is_err());
    }
}
