//! Node and edge records of the reference (explicit) SPINE representation.
//!
//! The reference representation keeps each node's edges inline in small
//! vectors — transparent and easy to verify, at the cost of per-node heap
//! overhead. The paper's space-optimized Link-Table/Rib-Table layout lives
//! in [`crate::compact`]; both representations are built by the same
//! construction algorithm and compared field-for-field by tests.

use strindex::Code;

/// A backbone node identifier. Node `i` represents the length-`i` prefix of
/// the text; ids double as 1-based end positions of first occurrences.
pub type NodeId = u32;

/// The root node (the empty prefix).
pub const ROOT: NodeId = 0;

/// A rib: a downstream edge recording the first-time extension of a set of
/// early-terminating suffixes by one character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rib {
    /// Character label (CL).
    pub cl: Code,
    /// Destination node.
    pub dest: NodeId,
    /// Pathlength Threshold: a search path of length `pl` may traverse this
    /// rib iff `pl <= pt`.
    pub pt: u32,
}

/// An extrib (extension rib): extends a rib whose PT is too small. Extribs
/// of one rib form a chain; each element covers path lengths
/// `(previous element's PT, this PT]`. The character is implicit (it is the
/// parent rib's CL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extrib {
    /// Parent Rib Threshold: the PT of the rib whose chain this extrib
    /// belongs to (identifies the chain when several pass through a node).
    pub prt: u32,
    /// Pathlength Threshold: the longest suffix length this extrib extends.
    pub pt: u32,
    /// Destination node.
    pub dest: NodeId,
}

/// One backbone node.
///
/// The outgoing vertebra is implicit: node `i`'s vertebra points to `i + 1`
/// and its character label is `nodes[i + 1].vertebra_cl` (the paper's
/// "implicit vertebra edge" optimization, valid because creation order and
/// logical order coincide).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Character label of the *incoming* vertebra — i.e. text character `i`
    /// for node `i`. Unused for the root.
    pub vertebra_cl: Code,
    /// Destination of the upstream link: the first-occurrence end of this
    /// node's longest early-terminating suffix ([`ROOT`] if none).
    pub link: NodeId,
    /// Longest Early-terminating suffix Length — the link's label.
    pub lel: u32,
    /// Outgoing ribs (unordered; at most `alphabet.size() - 1` of them,
    /// e.g. ≤ 3 for DNA).
    pub ribs: Vec<Rib>,
    /// Outgoing extribs. Usually empty or a single element; distinct PRTs
    /// when several chains pass through (see DESIGN.md on chain collisions).
    pub extribs: Vec<Extrib>,
}

impl Node {
    pub(crate) fn new(vertebra_cl: Code) -> Self {
        Node { vertebra_cl, link: ROOT, lel: 0, ribs: Vec::new(), extribs: Vec::new() }
    }

    /// Find this node's rib for character `c`, if any.
    #[inline]
    pub fn rib(&self, c: Code) -> Option<&Rib> {
        self.ribs.iter().find(|r| r.cl == c)
    }

    /// Find this node's extrib belonging to the chain of a parent rib with
    /// PT `prt`, if any.
    #[inline]
    pub fn extrib(&self, prt: u32) -> Option<&Extrib> {
        self.extribs.iter().find(|e| e.prt == prt)
    }

    /// Number of outgoing downstream edges (ribs + extribs) — the fan-out
    /// counted by Table 4 of the paper.
    pub fn fanout(&self) -> usize {
        self.ribs.len() + self.extribs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rib_lookup_by_character() {
        let mut n = Node::new(0);
        n.ribs.push(Rib { cl: 2, dest: 7, pt: 3 });
        n.ribs.push(Rib { cl: 1, dest: 9, pt: 1 });
        assert_eq!(n.rib(1).unwrap().dest, 9);
        assert_eq!(n.rib(2).unwrap().pt, 3);
        assert!(n.rib(0).is_none());
        assert_eq!(n.fanout(), 2);
    }

    #[test]
    fn extrib_lookup_by_prt() {
        let mut n = Node::new(0);
        n.extribs.push(Extrib { prt: 1, pt: 4, dest: 12 });
        assert_eq!(n.extrib(1).unwrap().pt, 4);
        assert!(n.extrib(2).is_none());
        assert_eq!(n.fanout(), 1);
    }
}
