//! All-occurrence enumeration via the backbone scan (Section 4).
//!
//! After the valid path locates the *first* occurrence of a pattern, every
//! further occurrence is found with the link property: a link from `j` to
//! `k` with LEL `v` means the length-`v` strings ending at `j` and `k` are
//! equal. So a single downstream scan suffices: node `j` ends an occurrence
//! of a length-`L` pattern iff `lel(j) ≥ L` and `link(j)` points at an
//! already-discovered occurrence end (checked by binary search in the
//! paper's *target node buffer*).
//!
//! Scanning the backbone once per pattern would be wasteful, so the batched
//! entry point ([`find_all_ends_batch`]) resolves any number of patterns in
//! one pass — exactly the deferral the paper describes for the maximal-match
//! workload.

use crate::node::NodeId;
use crate::ops::{FallibleSpineOps, Infallible, SpineOps};
use crate::search::try_locate_traced;
use crate::trace::{NoTrace, TraceEvent, TraceSink};
use strindex::{Code, FxHashMap, Result};

/// End positions (1-based) of all occurrences of `pattern`, ascending.
pub fn find_all_ends<S: SpineOps + ?Sized>(s: &S, pattern: &[Code]) -> Vec<NodeId> {
    try_find_all_ends(&Infallible(s), pattern).expect("in-memory SPINE ops are infallible")
}

/// Fallible [`find_all_ends`]: a storage failure during the valid-path walk
/// or the backbone scan surfaces as `Err` instead of a panic.
pub fn try_find_all_ends<S: FallibleSpineOps + ?Sized>(
    s: &S,
    pattern: &[Code],
) -> Result<Vec<NodeId>> {
    try_find_all_ends_traced(s, &mut NoTrace, pattern)
}

/// [`try_find_all_ends`] with a [`TraceSink`] attached: the valid-path walk
/// and the backbone scan both report their decisions. This is the traversal
/// behind `explain` ([`crate::trace::explain`]).
pub fn try_find_all_ends_traced<S: FallibleSpineOps + ?Sized, T: TraceSink + ?Sized>(
    s: &S,
    sink: &mut T,
    pattern: &[Code],
) -> Result<Vec<NodeId>> {
    let Some(first) = try_locate_traced(s, sink, pattern)? else {
        return Ok(Vec::new());
    };
    try_occurrences_from_traced(s, sink, first, pattern.len() as u32)
}

/// Single-target scan: all nodes ending an occurrence of the length-`len`
/// string whose first occurrence ends at `first`.
pub fn occurrences_from<S: SpineOps + ?Sized>(s: &S, first: NodeId, len: u32) -> Vec<NodeId> {
    try_occurrences_from(&Infallible(s), first, len).expect("in-memory SPINE ops are infallible")
}

/// Fallible [`occurrences_from`].
pub fn try_occurrences_from<S: FallibleSpineOps + ?Sized>(
    s: &S,
    first: NodeId,
    len: u32,
) -> Result<Vec<NodeId>> {
    try_occurrences_from_traced(s, &mut NoTrace, first, len)
}

/// [`try_occurrences_from`] with a [`TraceSink`] attached: emits one
/// [`TraceEvent::ScanStart`] for the backbone range, one
/// [`TraceEvent::Occurrence`] per link-accepted end, and (for page-resident
/// structures) a single [`TraceEvent::PageFetches`] aggregating the scan's
/// buffer-pool traffic.
pub fn try_occurrences_from_traced<S: FallibleSpineOps + ?Sized, T: TraceSink + ?Sized>(
    s: &S,
    sink: &mut T,
    first: NodeId,
    len: u32,
) -> Result<Vec<NodeId>> {
    let n = s.text_len() as NodeId;
    if T::ENABLED {
        sink.event(TraceEvent::ScanStart { from: first + 1, to: n, len });
    }
    let before = if T::ENABLED { s.storage_counters() } else { None };
    let _scan = ScanGuard::enter(s, first + 1);
    let mut buffer: Vec<NodeId> = vec![first];
    for j in first + 1..=n {
        let (dest, lel) = s.try_link_of(j)?;
        if lel >= len && buffer.binary_search(&dest).is_ok() {
            if T::ENABLED {
                sink.event(TraceEvent::Occurrence { node: j, link: dest, lel });
            }
            buffer.push(j); // scan order keeps the buffer sorted
        }
    }
    if let Some(e) = crate::trace::page_delta_event(s, before) {
        sink.event(e);
    }
    Ok(buffer)
}

/// Pairs [`FallibleSpineOps::scan_begin`] with a guaranteed
/// [`FallibleSpineOps::scan_end`], so an `Err` mid-scan cannot leave a
/// page-resident structure stuck in scan mode.
struct ScanGuard<'a, S: FallibleSpineOps + ?Sized>(&'a S);

impl<'a, S: FallibleSpineOps + ?Sized> ScanGuard<'a, S> {
    fn enter(s: &'a S, from: NodeId) -> Self {
        s.scan_begin(from);
        ScanGuard(s)
    }
}

impl<S: FallibleSpineOps + ?Sized> Drop for ScanGuard<'_, S> {
    fn drop(&mut self) {
        self.0.scan_end();
    }
}

/// One pattern of a batched all-occurrences request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target {
    /// End node of the pattern's first occurrence (from [`crate::search::locate`]).
    pub first_end: NodeId,
    /// Pattern length.
    pub len: u32,
}

/// Resolve many targets in a single backbone scan.
///
/// Returns, for each target (keyed by value, deduplicated), the ascending
/// list of occurrence-end nodes. The scan is O(n + total occurrences): each
/// node consults a hash map from "node already in some target buffer" to the
/// targets that buffered it.
pub fn find_all_ends_batch<S: SpineOps + ?Sized>(
    s: &S,
    targets: &[Target],
) -> FxHashMap<Target, Vec<NodeId>> {
    try_find_all_ends_batch(&Infallible(s), targets).expect("in-memory SPINE ops are infallible")
}

/// Fallible [`find_all_ends_batch`]: the scan stops at the first storage
/// failure and surfaces it as `Err` (no partial result escapes).
pub fn try_find_all_ends_batch<S: FallibleSpineOps + ?Sized>(
    s: &S,
    targets: &[Target],
) -> Result<FxHashMap<Target, Vec<NodeId>>> {
    let mut result: FxHashMap<Target, Vec<NodeId>> = FxHashMap::default();
    // node id -> indices of targets whose buffer contains that node.
    let mut buffered: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
    let mut uniq: Vec<Target> = Vec::new();
    for &t in targets {
        if result.contains_key(&t) {
            continue;
        }
        result.insert(t, vec![t.first_end]);
        buffered.entry(t.first_end).or_default().push(uniq.len() as u32);
        uniq.push(t);
    }
    if uniq.is_empty() {
        return Ok(result);
    }
    let start = uniq.iter().map(|t| t.first_end).min().unwrap() + 1;
    let n = s.text_len() as NodeId;
    let _scan = ScanGuard::enter(s, start);
    for j in start..=n {
        let (dest, lel) = s.try_link_of(j)?;
        if lel == 0 {
            continue;
        }
        let Some(hits) = buffered.get(&dest) else {
            continue;
        };
        let mut added: Vec<u32> = Vec::new();
        for &ti in hits {
            if lel >= uniq[ti as usize].len {
                added.push(ti);
            }
        }
        if added.is_empty() {
            continue;
        }
        for &ti in &added {
            result.get_mut(&uniq[ti as usize]).unwrap().push(j);
        }
        buffered.entry(j).or_default().extend(added);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Spine;
    use strindex::{Alphabet, StringIndex};

    fn paper_spine() -> (Alphabet, Spine) {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AACCACAACA").unwrap();
        (a, s)
    }

    #[test]
    fn paper_example_ac_occurrences() {
        // §4 walks this example: searching "ac" fills the target buffer with
        // nodes 3, 6, 9 (ends of the three occurrences).
        let (a, s) = paper_spine();
        let ends = find_all_ends(&s, &a.encode(b"AC").unwrap());
        assert_eq!(ends, vec![3, 6, 9]);
        // Converted to start offsets by find_all:
        assert_eq!(s.find_all(&a.encode(b"AC").unwrap()), vec![1, 4, 7]);
    }

    #[test]
    fn overlapping_occurrences() {
        let a = Alphabet::dna();
        let s = Spine::build_from_bytes(a.clone(), b"AAAAA").unwrap();
        assert_eq!(s.find_all(&a.encode(b"AA").unwrap()), vec![0, 1, 2, 3]);
        assert_eq!(s.find_all(&a.encode(b"AAAAA").unwrap()), vec![0]);
    }

    #[test]
    fn absent_pattern_yields_nothing() {
        let (a, s) = paper_spine();
        assert!(find_all_ends(&s, &a.encode(b"GG").unwrap()).is_empty());
        assert!(s.find_all(&a.encode(b"T").unwrap()).is_empty());
    }

    #[test]
    fn batch_matches_single_scans() {
        let (a, s) = paper_spine();
        let pats: Vec<Vec<Code>> = [&b"A"[..], b"CA", b"AC", b"AACCACAACA", b"CAACA", b"C"]
            .iter()
            .map(|p| a.encode(p).unwrap())
            .collect();
        let targets: Vec<Target> = pats
            .iter()
            .map(|p| Target { first_end: s.locate(p).unwrap(), len: p.len() as u32 })
            .collect();
        let batch = find_all_ends_batch(&s, &targets);
        for (p, t) in pats.iter().zip(&targets) {
            assert_eq!(batch[t], find_all_ends(&s, p), "pattern {p:?}");
        }
    }

    #[test]
    fn batch_deduplicates_targets() {
        let (a, s) = paper_spine();
        let p = a.encode(b"CA").unwrap();
        let t = Target { first_end: s.locate(&p).unwrap(), len: 2 };
        let batch = find_all_ends_batch(&s, &[t, t, t]);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[&t], vec![5, 7, 10]);
    }

    #[test]
    fn empty_batch() {
        let (_, s) = paper_spine();
        assert!(find_all_ends_batch(&s, &[]).is_empty());
    }
}
