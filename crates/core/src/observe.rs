//! Build-phase observability: a zero-cost observer for the APPEND procedure.
//!
//! Mirrors the [`crate::trace::TraceSink`] pattern from the query path: a
//! trait with a `const ENABLED` flag, so the disabled observer monomorphizes
//! to exactly the pre-instrumentation construction code (the optimizer
//! deletes every `if O::ENABLED` block). The enabled observers receive one
//! [`BuildEvent`] per structural action — which of the paper's CASE 1–4 an
//! insertion took, every rib/extrib/link created — plus coarse phase timings
//! ([`BuildPhase`]), and can be composed with [`Tee`].
//!
//! [`BuildStats`] is the standard accumulator: its counts reconcile exactly
//! with the structural counts in [`crate::stats`] (ribs created == ribs
//! present, links set == insertions, CASE dispositions sum to insertions),
//! which the property tests in `tests/build_observer.rs` pin down.

use std::time::Instant;

/// Observer of SPINE construction. Implementors with `ENABLED == false`
/// cost nothing: all instrumentation is guarded by `if O::ENABLED`, a
/// compile-time constant.
pub trait BuildObserver {
    /// Whether this observer records anything; `false` lets the optimizer
    /// delete all build-event plumbing.
    const ENABLED: bool = true;

    /// Consume one structural event.
    fn event(&mut self, e: BuildEvent);

    /// Account `nanos` of wall time to phase `p`.
    fn phase(&mut self, p: BuildPhase, nanos: u64);
}

/// The disabled observer: a zero-sized no-op with `ENABLED == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoBuildObserver;

impl BuildObserver for NoBuildObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _e: BuildEvent) {}

    #[inline(always)]
    fn phase(&mut self, _p: BuildPhase, _nanos: u64) {}
}

impl<O: BuildObserver> BuildObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    #[inline(always)]
    fn event(&mut self, e: BuildEvent) {
        (**self).event(e);
    }

    #[inline(always)]
    fn phase(&mut self, p: BuildPhase, nanos: u64) {
        (**self).phase(p, nanos);
    }
}

/// One structural action during APPEND.
///
/// The first six variants are *terminal dispositions*: every insertion emits
/// exactly one of them, so their counts sum to the number of characters
/// appended. The remaining variants are per-edge bookkeeping and may fire
/// zero or more times per insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildEvent {
    /// The first character of the text: links to the root by definition,
    /// no chain walk happens.
    FirstChar,
    /// CASE 1 — the chain node's vertebra already carries the character.
    Case1,
    /// CASE 2 — a rib with sufficient PT already carries it.
    Case2,
    /// CASE 3 terminated at the root (rib created there, link to root).
    Case3Root,
    /// CASE 4 — an existing extrib in the chain had sufficient PT.
    Case4Link,
    /// CASE 4 — the extrib chain was exhausted and a new extrib was created.
    Case4Extrib,
    /// A rib was created (one per non-matching chain node in CASE 3).
    RibCreated {
        /// The rib's pathlength threshold.
        pt: u32,
    },
    /// An extrib was appended to a chain.
    ExtribCreated {
        /// Parent rib threshold identifying the chain.
        prt: u32,
        /// The new element's pathlength threshold.
        pt: u32,
    },
    /// Disk layout only: an extrib did not fit its node's fixed slots and
    /// spilled to the side table.
    ExtribSpill,
    /// The new node's upstream link was set (exactly once per insertion).
    LinkSet {
        /// Link destination node.
        dest: u32,
        /// Longest Early-terminating suffix Length (the link label).
        lel: u32,
    },
    /// One chain-node (or extrib-chain element) was visited without
    /// terminating the insertion — the APPEND work metric.
    ChainStep,
}

/// Coarse construction phases for wall-time accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPhase {
    /// The main append loop over the input characters.
    Scan,
    /// CASE 4 handling: walking and extending extrib chains.
    RibFixup,
    /// Disk layout only: flushing dirty pages through the pool.
    PageFlush,
}

impl BuildPhase {
    /// Number of phases (array dimension for accumulators).
    pub const COUNT: usize = 3;

    /// Dense index for accumulator arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            BuildPhase::Scan => 0,
            BuildPhase::RibFixup => 1,
            BuildPhase::PageFlush => 2,
        }
    }

    /// Stable lowercase name for exports.
    pub fn name(self) -> &'static str {
        match self {
            BuildPhase::Scan => "scan",
            BuildPhase::RibFixup => "rib_fixup",
            BuildPhase::PageFlush => "page_flush",
        }
    }

    /// All phases in index order.
    pub fn all() -> [BuildPhase; Self::COUNT] {
        [BuildPhase::Scan, BuildPhase::RibFixup, BuildPhase::PageFlush]
    }
}

/// Heap bytes of the finished index, split by edge kind. Filled in by each
/// engine's `build_with_stats` constructor (the split is
/// representation-specific; see each engine's `mem_breakdown`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemBreakdown {
    /// Bytes holding vertebra character labels.
    pub vertebrae: u64,
    /// Bytes holding upstream links and their LELs.
    pub links: u64,
    /// Bytes holding ribs.
    pub ribs: u64,
    /// Bytes holding extribs (including any spill/side tables).
    pub extribs: u64,
}

impl MemBreakdown {
    /// Total accounted bytes.
    pub fn total(&self) -> u64 {
        self.vertebrae + self.links + self.ribs + self.extribs
    }

    /// Bytes per indexed character (the paper's space metric).
    pub fn bytes_per_node(&self, nodes: u64) -> f64 {
        if nodes == 0 {
            0.0
        } else {
            self.total() as f64 / nodes as f64
        }
    }
}

/// The standard accumulating observer: counts every event kind, tracks the
/// maximum LEL, and sums per-phase wall time.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BuildStats {
    /// Characters appended (== terminal dispositions == links set).
    pub insertions: u64,
    /// [`BuildEvent::FirstChar`] count (0 or 1 per text).
    pub first_char: u64,
    /// CASE 1 dispositions.
    pub case1: u64,
    /// CASE 2 dispositions.
    pub case2: u64,
    /// CASE 3-at-root dispositions.
    pub case3_root: u64,
    /// CASE 4 dispositions resolved by an existing extrib.
    pub case4_link: u64,
    /// CASE 4 dispositions that created a new extrib.
    pub case4_extrib: u64,
    /// Ribs created. SPINE never deletes ribs, so this equals the finished
    /// index's rib count (`ribs_absorbed` stays 0 and documents that).
    pub ribs_created: u64,
    /// Ribs removed or merged away — structurally impossible in APPEND;
    /// kept so the invariant `created - absorbed == present` is explicit.
    pub ribs_absorbed: u64,
    /// Extribs created (== finished index's extrib count).
    pub extribs_created: u64,
    /// Disk-layout extribs that spilled to the side table (subset of
    /// `extribs_created`).
    pub extrib_spills: u64,
    /// Links set (exactly one per insertion).
    pub links_set: u64,
    /// Links with LEL > 0 (the root-link default is LEL 0).
    pub links_with_positive_lel: u64,
    /// Largest LEL ever assigned.
    pub max_lel: u32,
    /// Chain nodes / extrib elements visited without terminating.
    pub chain_steps: u64,
    /// Wall nanoseconds per [`BuildPhase`], indexed by [`BuildPhase::index`].
    pub phase_nanos: [u64; BuildPhase::COUNT],
    /// Final heap accounting, filled by the engine after the build.
    pub mem: MemBreakdown,
}

impl BuildStats {
    /// Sum of the six terminal-disposition counters; equals `insertions`.
    pub fn dispositions(&self) -> u64 {
        self.first_char
            + self.case1
            + self.case2
            + self.case3_root
            + self.case4_link
            + self.case4_extrib
    }

    /// Build throughput from the Scan phase timing, if it was recorded.
    pub fn nodes_per_sec(&self) -> Option<f64> {
        let nanos = self.phase_nanos[BuildPhase::Scan.index()];
        if nanos == 0 {
            None
        } else {
            Some(self.insertions as f64 * 1e9 / nanos as f64)
        }
    }

    /// All representation-independent event counters, for cross-engine
    /// equality checks that must ignore wall timings, memory layout, and
    /// disk-only spill counts.
    pub fn counts(&self) -> [u64; 14] {
        [
            self.insertions,
            self.first_char,
            self.case1,
            self.case2,
            self.case3_root,
            self.case4_link,
            self.case4_extrib,
            self.ribs_created,
            self.ribs_absorbed,
            self.extribs_created,
            self.links_set,
            self.links_with_positive_lel,
            self.max_lel as u64,
            self.chain_steps,
        ]
    }

    /// One-line human summary (used by the bench CLI's progress transcript).
    pub fn summary(&self) -> String {
        format!(
            "{} insertions (case1 {} case2 {} case3root {} case4link {} case4extrib {}), \
             {} ribs, {} extribs ({} spilled), max LEL {}, {} chain steps, {:.0} bytes total",
            self.insertions,
            self.case1,
            self.case2,
            self.case3_root,
            self.case4_link,
            self.case4_extrib,
            self.ribs_created,
            self.extribs_created,
            self.extrib_spills,
            self.max_lel,
            self.chain_steps,
            self.mem.total() as f64,
        )
    }
}

impl BuildObserver for BuildStats {
    fn event(&mut self, e: BuildEvent) {
        match e {
            BuildEvent::FirstChar => {
                self.first_char += 1;
                self.insertions += 1;
            }
            BuildEvent::Case1 => {
                self.case1 += 1;
                self.insertions += 1;
            }
            BuildEvent::Case2 => {
                self.case2 += 1;
                self.insertions += 1;
            }
            BuildEvent::Case3Root => {
                self.case3_root += 1;
                self.insertions += 1;
            }
            BuildEvent::Case4Link => {
                self.case4_link += 1;
                self.insertions += 1;
            }
            BuildEvent::Case4Extrib => {
                self.case4_extrib += 1;
                self.insertions += 1;
            }
            BuildEvent::RibCreated { .. } => self.ribs_created += 1,
            BuildEvent::ExtribCreated { .. } => self.extribs_created += 1,
            BuildEvent::ExtribSpill => self.extrib_spills += 1,
            BuildEvent::LinkSet { lel, .. } => {
                self.links_set += 1;
                if lel > 0 {
                    self.links_with_positive_lel += 1;
                }
                self.max_lel = self.max_lel.max(lel);
            }
            BuildEvent::ChainStep => self.chain_steps += 1,
        }
    }

    fn phase(&mut self, p: BuildPhase, nanos: u64) {
        self.phase_nanos[p.index()] += nanos;
    }
}

/// Fan one event stream out to two observers. `ENABLED` is the OR of the
/// parts, so teeing a live observer with [`NoBuildObserver`] still records.
#[derive(Debug, Default, Clone)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: BuildObserver, B: BuildObserver> BuildObserver for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, e: BuildEvent) {
        if A::ENABLED {
            self.0.event(e);
        }
        if B::ENABLED {
            self.1.event(e);
        }
    }

    #[inline]
    fn phase(&mut self, p: BuildPhase, nanos: u64) {
        if A::ENABLED {
            self.0.phase(p, nanos);
        }
        if B::ENABLED {
            self.1.phase(p, nanos);
        }
    }
}

/// A progress report handed to [`BuildProgress`] callbacks.
#[derive(Debug, Clone, Copy)]
pub struct ProgressReport {
    /// Characters inserted so far.
    pub nodes: u64,
    /// Throughput since the observer was created.
    pub nodes_per_sec: f64,
    /// Estimated seconds remaining, when a total was hinted.
    pub eta_secs: Option<f64>,
}

/// Observer that invokes a callback every `every` insertions with running
/// throughput and (if the total length is known up front) an ETA. Tee it
/// with [`BuildStats`] to get both a transcript and a summary.
pub struct BuildProgress<F: FnMut(ProgressReport)> {
    total_hint: Option<u64>,
    every: u64,
    seen: u64,
    started: Instant,
    callback: F,
}

impl<F: FnMut(ProgressReport)> BuildProgress<F> {
    /// `total_hint` enables ETA; `every` is the callback cadence in
    /// insertions (clamped to ≥ 1).
    pub fn new(total_hint: Option<u64>, every: u64, callback: F) -> Self {
        BuildProgress {
            total_hint,
            every: every.max(1),
            seen: 0,
            started: Instant::now(),
            callback,
        }
    }

    fn report(&mut self) {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = self.seen as f64 / elapsed;
        let eta = self.total_hint.map(|total| {
            let left = total.saturating_sub(self.seen) as f64;
            if rate > 0.0 {
                left / rate
            } else {
                f64::INFINITY
            }
        });
        (self.callback)(ProgressReport { nodes: self.seen, nodes_per_sec: rate, eta_secs: eta });
    }
}

impl<F: FnMut(ProgressReport)> BuildObserver for BuildProgress<F> {
    #[inline]
    fn event(&mut self, e: BuildEvent) {
        // LinkSet fires exactly once per insertion — the progress heartbeat.
        if let BuildEvent::LinkSet { .. } = e {
            self.seen += 1;
            if self.seen.is_multiple_of(self.every) {
                self.report();
            }
        }
    }

    #[inline]
    fn phase(&mut self, _p: BuildPhase, _nanos: u64) {}
}

// ---------------------------------------------------------------------------
// Segment-lifecycle observability: seal and merge phases.
// ---------------------------------------------------------------------------

/// Coarse phases of a segment-store seal or merge, for wall-time
/// accounting. The same vocabulary serves both operations (a seal simply
/// never spends time in [`MergePhase::Collect`] reading old segments), so
/// the lifecycle journal can carry one fixed-width timing record per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePhase {
    /// Reading the live documents out of the input segments (merge only).
    Collect,
    /// Building the replacement segment's pages and sidecar.
    Build,
    /// The atomic manifest commit (tmp write, fsyncs, rename).
    Commit,
    /// Deleting superseded input files after the commit (merge only).
    Cleanup,
}

impl MergePhase {
    /// Number of phases (array dimension for accumulators and the journal's
    /// fixed-width timing record).
    pub const COUNT: usize = 4;

    /// Dense index for accumulator arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MergePhase::Collect => 0,
            MergePhase::Build => 1,
            MergePhase::Commit => 2,
            MergePhase::Cleanup => 3,
        }
    }

    /// Stable lowercase name for exports.
    pub fn name(self) -> &'static str {
        match self {
            MergePhase::Collect => "collect",
            MergePhase::Build => "build",
            MergePhase::Commit => "commit",
            MergePhase::Cleanup => "cleanup",
        }
    }

    /// All phases in index order.
    pub fn all() -> [MergePhase; Self::COUNT] {
        [MergePhase::Collect, MergePhase::Build, MergePhase::Commit, MergePhase::Cleanup]
    }
}

/// Observer of segment seal/merge operations — [`BuildObserver`]'s sibling
/// for the LSM lifecycle, with the same monomorphization contract: all
/// instrumentation sits behind `if O::ENABLED`, a compile-time constant, so
/// an `ENABLED == false` observer costs exactly nothing (no `Instant::now`
/// calls, no accumulator writes).
pub trait MergeObserver {
    /// Whether this observer records anything.
    const ENABLED: bool = true;

    /// Account `nanos` of wall time to phase `p`.
    fn phase(&mut self, p: MergePhase, nanos: u64);
}

/// The disabled observer: a zero-sized no-op with `ENABLED == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoMergeObserver;

impl MergeObserver for NoMergeObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn phase(&mut self, _p: MergePhase, _nanos: u64) {}
}

impl<O: MergeObserver> MergeObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    #[inline(always)]
    fn phase(&mut self, p: MergePhase, nanos: u64) {
        (**self).phase(p, nanos);
    }
}

/// The standard accumulator: per-phase wall nanoseconds, indexed by
/// [`MergePhase::index`]. This is what the segment store feeds into its
/// lifecycle journal records and the `segments.merge_duration` histogram.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MergeTimes {
    /// Wall nanoseconds per [`MergePhase`].
    pub phase_nanos: [u64; MergePhase::COUNT],
}

impl MergeTimes {
    /// Total wall nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }
}

impl MergeObserver for MergeTimes {
    #[inline]
    fn phase(&mut self, p: MergePhase, nanos: u64) {
        self.phase_nanos[p.index()] += nanos;
    }
}

/// Fan phase timings out to two [`MergeObserver`]s; `ENABLED` is the OR of
/// the parts (mirrors [`Tee`] for [`BuildObserver`]).
#[derive(Debug, Default, Clone)]
pub struct MergeTee<A, B>(pub A, pub B);

impl<A: MergeObserver, B: MergeObserver> MergeObserver for MergeTee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn phase(&mut self, p: MergePhase, nanos: u64) {
        if A::ENABLED {
            self.0.phase(p, nanos);
        }
        if B::ENABLED {
            self.1.phase(p, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoBuildObserver>(), 0);
        assert_eq!([NoBuildObserver::ENABLED, BuildStats::ENABLED], [false, true]);
    }

    #[test]
    fn merge_observer_mirrors_build_observer_contract() {
        assert_eq!(std::mem::size_of::<NoMergeObserver>(), 0);
        assert_eq!([NoMergeObserver::ENABLED, MergeTimes::ENABLED], [false, true]);
        assert_eq!(
            [
                <MergeTee<MergeTimes, NoMergeObserver> as MergeObserver>::ENABLED,
                <MergeTee<NoMergeObserver, NoMergeObserver> as MergeObserver>::ENABLED,
            ],
            [true, false]
        );
        let mut t = MergeTee(MergeTimes::default(), MergeTimes::default());
        t.phase(MergePhase::Build, 40);
        t.phase(MergePhase::Build, 2);
        t.phase(MergePhase::Commit, 8);
        for side in [&t.0, &t.1] {
            assert_eq!(side.phase_nanos[MergePhase::Build.index()], 42);
            assert_eq!(side.phase_nanos[MergePhase::Collect.index()], 0);
            assert_eq!(side.total_nanos(), 50);
        }
        // Phase vocabulary is dense and stably named.
        for (i, p) in MergePhase::all().into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(MergePhase::Cleanup.name(), "cleanup");
    }

    #[test]
    fn stats_accumulate_dispositions_and_links() {
        let mut s = BuildStats::default();
        s.event(BuildEvent::FirstChar);
        s.event(BuildEvent::LinkSet { dest: 0, lel: 0 });
        s.event(BuildEvent::Case1);
        s.event(BuildEvent::LinkSet { dest: 1, lel: 1 });
        s.event(BuildEvent::RibCreated { pt: 0 });
        s.event(BuildEvent::Case3Root);
        s.event(BuildEvent::LinkSet { dest: 0, lel: 0 });
        s.event(BuildEvent::ChainStep);
        s.event(BuildEvent::ExtribCreated { prt: 1, pt: 3 });
        s.event(BuildEvent::Case4Extrib);
        s.event(BuildEvent::LinkSet { dest: 5, lel: 4 });
        assert_eq!(s.insertions, 4);
        assert_eq!(s.dispositions(), 4);
        assert_eq!(s.links_set, 4);
        assert_eq!(s.links_with_positive_lel, 2);
        assert_eq!(s.max_lel, 4);
        assert_eq!(s.ribs_created, 1);
        assert_eq!(s.extribs_created, 1);
        assert_eq!(s.chain_steps, 1);
    }

    #[test]
    fn phase_nanos_accumulate_per_phase() {
        let mut s = BuildStats::default();
        s.phase(BuildPhase::Scan, 100);
        s.phase(BuildPhase::Scan, 50);
        s.phase(BuildPhase::RibFixup, 7);
        assert_eq!(s.phase_nanos[BuildPhase::Scan.index()], 150);
        assert_eq!(s.phase_nanos[BuildPhase::RibFixup.index()], 7);
        assert_eq!(s.phase_nanos[BuildPhase::PageFlush.index()], 0);
        let nps = s.nodes_per_sec().unwrap();
        assert!(nps >= 0.0);
    }

    #[test]
    fn tee_enabled_is_or_of_parts() {
        assert_eq!(
            [
                <Tee<BuildStats, NoBuildObserver> as BuildObserver>::ENABLED,
                <Tee<NoBuildObserver, NoBuildObserver> as BuildObserver>::ENABLED,
            ],
            [true, false]
        );
        let mut t = Tee(BuildStats::default(), BuildStats::default());
        t.event(BuildEvent::Case1);
        assert_eq!(t.0.case1, 1);
        assert_eq!(t.1.case1, 1);
    }

    #[test]
    fn progress_fires_on_cadence_with_eta() {
        let mut reports = Vec::new();
        {
            let mut p = BuildProgress::new(Some(10), 3, |r| reports.push(r));
            for i in 0..10u32 {
                p.event(BuildEvent::LinkSet { dest: i, lel: 0 });
            }
        }
        assert_eq!(reports.len(), 3); // after 3, 6, 9 insertions
        assert_eq!(reports[2].nodes, 9);
        assert!(reports[2].eta_secs.unwrap() >= 0.0);
    }

    #[test]
    fn mem_breakdown_totals() {
        let m = MemBreakdown { vertebrae: 10, links: 80, ribs: 36, extribs: 24 };
        assert_eq!(m.total(), 150);
        assert!((m.bytes_per_node(10) - 15.0).abs() < 1e-9);
        assert_eq!(MemBreakdown::default().bytes_per_node(0), 0.0);
    }
}
